"""Figure 1: AOSP-count vs additional-count scatter per manufacturer/version.

Paper: 39 % of sessions carry additional certificates; only 5 handsets
miss any; >10 % of 4.1/4.2 sessions (HTC, Motorola, LG, plus Samsung
4.4) add more than 40 certificates; Motorola 4.3/4.4, Huawei, Sony and
Asus stay within 10 additions of stock.
"""

from _util import emit

from repro.analysis.figures import figure1_scatter
from repro.analysis.sessions import extended_fraction, handsets_missing_certificates


def test_figure1_scatter(benchmark, diffs):
    points = benchmark(figure1_scatter, diffs)

    total_sessions = sum(p.session_count for p in points)
    extended = extended_fraction(diffs)
    missing = handsets_missing_certificates(diffs)
    old = [p for p in points if p.os_version in ("4.1", "4.2")]
    old_heavy = sum(p.session_count for p in old if p.additional_count > 40)
    old_total = sum(p.session_count for p in old)

    per_group: dict[tuple[str, str], int] = {}
    for point in points:
        key = (point.manufacturer, point.os_version)
        per_group[key] = max(per_group.get(key, 0), point.additional_count)

    lines = [
        f"scatter markers: {len(points)} over {total_sessions:,} sessions",
        f"extended sessions: {extended:.1%} (paper 39%)",
        f"handsets missing certs: {missing} (paper 5)",
        f">40 additions on 4.1/4.2: {old_heavy / old_total:.1%} (paper >10%)",
        "max additions per (manufacturer, version):",
    ]
    for (manufacturer, version), peak in sorted(per_group.items()):
        if manufacturer in ("HTC", "SAMSUNG", "MOTOROLA", "SONY", "LG", "ASUS", "HUAWEI"):
            lines.append(f"  {manufacturer:<10} {version}: +{peak}")
    emit("Figure 1: AOSP vs additional certificates", lines)

    assert 0.35 <= extended <= 0.43
    assert missing == 5
    assert old_heavy / old_total > 0.10
    # Near-stock vendors stay small (paper: fewer than 10 additions).
    assert per_group.get(("HUAWEI", "4.4"), 0) <= 10
    assert per_group.get(("MOTOROLA", "4.4"), 0) <= 10
    # Heavy extenders exceed 40.
    assert per_group[("HTC", "4.1")] > 40
    assert per_group[("SAMSUNG", "4.4")] > 40
