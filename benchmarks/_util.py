"""Helpers shared by the benchmark modules."""


def emit(title: str, lines: list[str]) -> None:
    """Print a reproduced table/figure block (shown with pytest -s)."""
    banner = f"== {title} =="
    print(f"\n{banner}")
    for line in lines:
        print(line)
