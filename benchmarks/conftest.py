"""Shared full-fidelity fixtures for the benchmark harness.

Benchmarks run against the *full-scale* study (15,970-session
population, full Notary traffic) so the printed rows are directly
comparable to the paper's. The expensive universe is built once per
benchmark session.
"""

import pytest

from repro.analysis.classify import PresenceClassifier
from repro.analysis.sessions import SessionDiffer
from repro.android.population import PopulationConfig, PopulationGenerator
from repro.netalyzr.collector import collect_dataset
from repro.notary import build_notary
from repro.rootstore import CertificateFactory, build_platform_stores
from repro.rootstore.catalog import default_catalog
from repro.x509.fingerprint import identity_key


@pytest.fixture(scope="session")
def factory():
    return CertificateFactory(seed="bench-universe")


@pytest.fixture(scope="session")
def catalog():
    return default_catalog()


@pytest.fixture(scope="session")
def platform_stores(factory, catalog):
    return build_platform_stores(factory, catalog)


@pytest.fixture(scope="session")
def population(factory, catalog):
    config = PopulationConfig(seed="bench-universe", scale=1.0)
    return PopulationGenerator(config, factory, catalog).generate()


@pytest.fixture(scope="session")
def dataset(population, factory, catalog):
    return collect_dataset(population, factory, catalog)


@pytest.fixture(scope="session")
def notary(factory, catalog):
    return build_notary(factory, catalog, scale=1.0)


@pytest.fixture(scope="session")
def diffs(platform_stores, dataset):
    return SessionDiffer(platform_stores.aosp).diff_all(dataset)


@pytest.fixture(scope="session")
def classifier(platform_stores, notary):
    return PresenceClassifier(
        platform_stores.mozilla, platform_stores.ios7, notary
    )


@pytest.fixture(scope="session")
def extra_certificates(diffs):
    """Deduplicated non-AOSP additions from non-rooted sessions."""
    extras = {}
    for diff in diffs:
        if diff.session.rooted:
            continue
        for certificate in diff.additional:
            extras.setdefault(identity_key(certificate), certificate)
    return list(extras.values())
