"""Figure 2: additional-certificate frequencies per manufacturer/operator.

Paper: presence-class mix over the additions is 6.7 % Mozilla+iOS7,
16.2 % iOS7-only, 37.1 % Android-only, 40.0 % unrecorded; CertiSign and
ptt-post.nl sit on 60-70 % of Motorola 4.1 (Verizon) devices; HTC and
Samsung share the AddTrust/Deutsche Telekom/Sonera/DoD block; groups
with fewer than 10 modified sessions are dropped.
"""

from _util import emit

from repro.analysis.figures import figure2_matrix
from repro.rootstore.catalog import StorePresence

PAPER_CLASSES = {
    StorePresence.MOZILLA_AND_IOS7: 0.067,
    StorePresence.IOS7_ONLY: 0.162,
    StorePresence.ANDROID_ONLY: 0.371,
    StorePresence.NOT_RECORDED: 0.400,
}


def test_figure2_matrix(benchmark, diffs, classifier):
    matrix = benchmark(figure2_matrix, diffs, classifier)

    lines = ["presence classes over distinct additional certs:"]
    for presence, paper in PAPER_CLASSES.items():
        measured = matrix.class_fractions[presence]
        lines.append(f"  {presence.value:<18} measured={measured:.1%} paper={paper:.1%}")
    lines.append(f"groups plotted: {len(matrix.groups())}")
    certisign = [
        cell
        for cell in matrix.cells
        if cell.group == "MOTOROLA 4.1" and cell.cert_label.startswith("Certisign")
    ]
    for cell in certisign:
        lines.append(
            f"  Certisign on MOTOROLA 4.1: freq={cell.frequency:.0%} (paper 60-70%)"
        )
    emit("Figure 2: certificate x manufacturer/operator matrix", lines)

    # Shape: class ordering and rough levels.
    fractions = matrix.class_fractions
    assert (
        fractions[StorePresence.NOT_RECORDED]
        > fractions[StorePresence.ANDROID_ONLY]
        > fractions[StorePresence.IOS7_ONLY]
        > fractions[StorePresence.MOZILLA_AND_IOS7]
    )
    for presence, paper in PAPER_CLASSES.items():
        assert abs(fractions[presence] - paper) < 0.07

    # §5.1's anchor observations.
    assert certisign, "CertiSign must appear on the Motorola 4.1 row"
    assert all(0.3 <= cell.frequency <= 0.95 for cell in certisign)
    shared = {"HTC", "SAMSUNG"}
    for label in ("AddTrust Class 1 CA Root", "Deutsche Telekom Root CA 1"):
        carriers = {
            cell.group.split(" ")[0]
            for cell in matrix.cells
            if cell.cert_label == label and cell.group_kind == "manufacturer"
        }
        assert shared <= carriers
