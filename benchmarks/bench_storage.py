#!/usr/bin/env python
"""Storage benchmark: build a large notary universe under a hard RSS gate.

The point of the disk backend is a memory bound: peak RSS must grow
far slower than the notary scale does, because certificates and leaf
records live in sharded segment files behind bounded caches instead of
in process memory. This benchmark proves it the only way that counts —
by building the universe at the target scale inside a *child process*
and reading that child's own ``ru_maxrss`` (the parent's high-water
mark would be contaminated by its own build machinery):

* **disk** — build at ``--scale`` with the storage backend; peak RSS
  must come in under ``--rss-ceiling-mb`` or the benchmark exits 1.
* **memory probe** — build in-memory at two small probe scales, fit
  the (empirically very linear) RSS-vs-scale line through them, and
  project it to the target scale. If the projection clears the ceiling
  the in-memory build runs for real at the target scale; otherwise it
  is *gated out* — recorded as infeasible under the ceiling, which at
  scale 16 it decisively is (~84 MB of RSS per unit of scale).
* **cross-check** — a disk-backed build at the probe scale must report
  the exact same certificate/session counts as the in-memory probe
  (the byte-identity story, spot-checked from the bench).

Results land in ``BENCH_storage.json``. Run standalone::

    python benchmarks/bench_storage.py --scale 16

"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SEED = "bench-storage"

#: Default hard ceiling, in MB, for the disk-backed build's peak RSS.
#: Deliberately far below what an in-memory build needs at scale >= 4.
DEFAULT_RSS_CEILING_MB = 512


def _child(scale: float, storage_dir: str) -> int:
    """Build one notary in this process and report our own peak RSS."""
    import resource

    from repro.notary.database import build_notary
    from repro.rootstore.factory import CertificateFactory
    from repro.storage.backend import DiskBackend

    backend = DiskBackend(storage_dir) if storage_dir else None
    factory = CertificateFactory(seed=SEED)
    started = time.perf_counter()
    notary = build_notary(factory, scale=scale, backend=backend)
    build_seconds = time.perf_counter() - started

    # Touch the read path too: summary statistics walk the compact
    # arrays, and a per-root count rehydrates records from the shards.
    checks = {
        "total_certificates": notary.total_certificates,
        "current_certificates": notary.current_certificates,
        "total_sessions": notary.total_sessions,
    }
    if backend is not None:
        backend.flush()

    maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(
        json.dumps(
            {
                "mode": "disk" if storage_dir else "memory",
                "scale": scale,
                "build_s": round(build_seconds, 3),
                "peak_rss_mb": round(maxrss_kb / 1024, 1),
                "checks": checks,
                "storage": backend.stats() if backend else {},
            }
        )
    )
    return 0


def _run_child(scale: float, storage_dir: str) -> dict:
    """One measured build in a fresh interpreter; returns its report."""
    command = [
        sys.executable, str(Path(__file__).resolve()),
        "--child", "--scale", str(scale),
    ]
    if storage_dir:
        command += ["--storage", storage_dir]
    completed = subprocess.run(
        command, check=True, capture_output=True, text=True
    )
    return json.loads(completed.stdout.splitlines()[-1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=16.0,
        help="notary scale of the gated disk-backed build",
    )
    parser.add_argument(
        "--probe-scale", type=float, default=1.0,
        help="larger of the two in-memory probe scales the RSS "
        "projection line is fitted through (the other is half of it)",
    )
    parser.add_argument(
        "--rss-ceiling-mb", type=float, default=DEFAULT_RSS_CEILING_MB,
        help="hard peak-RSS gate for the disk-backed build",
    )
    parser.add_argument("--out", default="BENCH_storage.json", help="output JSON path")
    parser.add_argument(
        "--storage", default="",
        help=argparse.SUPPRESS,  # child-mode plumbing
    )
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return _child(args.scale, args.storage)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-storage-") as workdir:
        print(f"disk-backed build at scale {args.scale} ...")
        disk = _run_child(args.scale, str(Path(workdir) / "target"))
        print(
            f"  disk  : {disk['peak_rss_mb']:>7} MB peak RSS, "
            f"{disk['build_s']}s, {disk['checks']['total_certificates']:,} leaves"
        )

        half_scale = args.probe_scale / 2
        print(f"in-memory probes at scales {half_scale} and {args.probe_scale} ...")
        half_probe = _run_child(half_scale, "")
        probe = _run_child(args.probe_scale, "")
        # Fit rss(scale) = base + slope * scale through the two probes;
        # a naive single-point ratio would charge the interpreter/factory
        # baseline to every unit of scale and overstate the projection.
        slope = (probe["peak_rss_mb"] - half_probe["peak_rss_mb"]) / (
            args.probe_scale - half_scale
        )
        base = probe["peak_rss_mb"] - slope * args.probe_scale
        projected_mb = round(base + slope * args.scale, 1)
        print(
            f"  probe : {half_probe['peak_rss_mb']} / {probe['peak_rss_mb']} MB "
            f"peak RSS -> ~{projected_mb} MB projected at scale {args.scale} "
            f"({round(slope, 1)} MB per unit of scale)"
        )

        memory = None
        gated_out = projected_mb > args.rss_ceiling_mb
        if gated_out:
            print(
                f"  memory: GATED OUT (projected {projected_mb} MB > "
                f"ceiling {args.rss_ceiling_mb} MB)"
            )
        else:
            print(f"in-memory build at scale {args.scale} ...")
            memory = _run_child(args.scale, "")
            print(f"  memory: {memory['peak_rss_mb']:>7} MB peak RSS")

        print(f"disk-backed cross-check at probe scale {args.probe_scale} ...")
        disk_probe = _run_child(
            args.probe_scale, str(Path(workdir) / "probe")
        )
        checks_match = disk_probe["checks"] == probe["checks"]
        print(f"  check : disk == memory at probe scale: {checks_match}")

    under_ceiling = disk["peak_rss_mb"] <= args.rss_ceiling_mb
    payload = {
        "benchmark": "storage",
        "seed": SEED,
        "scale": args.scale,
        "rss_ceiling_mb": args.rss_ceiling_mb,
        "disk": disk,
        "memory_probes": [half_probe, probe],
        "memory_mb_per_scale": round(slope, 2),
        "memory_projected_mb": projected_mb,
        "memory_gated_out": gated_out,
        "memory": memory,
        "probe_checks_match": checks_match,
        "disk_under_ceiling": under_ceiling,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    failures = []
    if not under_ceiling:
        failures.append(
            f"disk-backed peak RSS {disk['peak_rss_mb']} MB "
            f"exceeds the {args.rss_ceiling_mb} MB ceiling"
        )
    if not checks_match:
        failures.append("disk and in-memory probe builds disagree")
    if memory is not None and memory["checks"] != disk["checks"]:
        failures.append("disk and in-memory target builds disagree")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
