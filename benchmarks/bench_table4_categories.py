"""Table 4: per-category root counts and validate-nothing fractions.

Paper: non-AOSP/non-Mozilla 85 roots, 72 %; non-AOSP-in-Mozilla 16,
38 %; AOSP4.4∩Mozilla 130, 15 %; AOSP 4.1 139, 22 %; AOSP 4.4 150,
23 %; aggregated Android 235, 40 %; Mozilla 153, 22 %; iOS7 227, 41 %.
"""

from _util import emit

from repro.analysis.figures import store_categories
from repro.analysis.tables import table4_category_offsets

PAPER = {
    "Non AOSP and non Mozilla Android certs": (85, 0.72),
    "Non AOSP root certs found on Mozilla's": (16, 0.38),
    "AOSP 4.4 and Mozilla root certs": (130, 0.15),
    "AOSP 4.1": (139, 0.22),
    "AOSP 4.4": (150, 0.23),
    "Aggregated Android root certs": (235, 0.40),
    "Mozilla": (153, 0.22),
    "iOS7": (227, 0.41),
}


def test_table4_category_offsets(
    benchmark, platform_stores, notary, extra_certificates
):
    def run():
        categories = store_categories(
            platform_stores.aosp,
            platform_stores.mozilla,
            platform_stores.ios7,
            extra_certificates,
        )
        return table4_category_offsets(categories, notary)

    rows = benchmark(run)

    emit(
        "Table 4: root certs per category / fraction validating nothing",
        [
            f"{row.category:<42} measured={row.total_roots:>4} "
            f"{row.fraction_validating_nothing:>4.0%}  "
            f"paper={PAPER[row.category][0]:>4} {PAPER[row.category][1]:.0%}"
            for row in rows
        ],
    )

    for row in rows:
        paper_total, paper_fraction = PAPER[row.category]
        assert abs(row.total_roots - paper_total) <= max(4, paper_total * 0.05)
        assert abs(row.fraction_validating_nothing - paper_fraction) < 0.07
