"""Figure 3: ECDFs of per-root Notary-validation counts per category.

Paper: the y-offsets (fraction of roots validating nothing) are 23 %
for AOSP 4.4 and 72 % for the extra Android certs outside AOSP and
Mozilla; the AOSP∩Mozilla subset validates most TLS sessions; the
aggregated Android set behaves like iOS7 (the largest store).
"""

from _util import emit

from repro.analysis.ecdf import cumulative_coverage, knee_index
from repro.analysis.figures import figure3_ecdf, store_categories
from repro.notary.validation import validation_counts_by_root

PAPER_OFFSETS = {
    "Non AOSP and non Mozilla Android certs": 0.72,
    "Non AOSP root certs found on Mozilla's": 0.38,
    "AOSP 4.4 and Mozilla root certs": 0.15,
    "AOSP 4.1": 0.22,
    "AOSP 4.4": 0.23,
    "Aggregated Android root certs": 0.40,
    "Mozilla": 0.22,
    "iOS7": 0.41,
}


def test_figure3_ecdf(benchmark, platform_stores, notary, extra_certificates):
    categories = store_categories(
        platform_stores.aosp,
        platform_stores.mozilla,
        platform_stores.ios7,
        extra_certificates,
    )
    series = benchmark(figure3_ecdf, categories, notary)
    by_label = {s.label: s for s in series}

    lines = []
    for label, paper in PAPER_OFFSETS.items():
        measured = by_label[label].zero_fraction
        maximum = by_label[label].points[-1][0]
        lines.append(
            f"{label:<42} offset={measured:.0%} (paper {paper:.0%}) "
            f"max-per-root={maximum:,}"
        )
    core_counts = validation_counts_by_root(
        notary, categories["AOSP 4.4 and Mozilla root certs"]
    )
    knee = knee_index(cumulative_coverage(core_counts), threshold=0.95)
    lines.append(
        f"95% of core-validated traffic covered by top {knee} roots "
        f"of {len(core_counts)}"
    )
    emit("Figure 3: per-root validation-count ECDFs", lines)

    for label, paper in PAPER_OFFSETS.items():
        assert abs(by_label[label].zero_fraction - paper) < 0.07, label
    # §5.3: the aggregated Android set behaves like iOS7.
    assert (
        abs(
            by_label["Aggregated Android root certs"].zero_fraction
            - by_label["iOS7"].zero_fraction
        )
        < 0.05
    )
    # The curves are valid ECDFs.
    for s in series:
        ys = [y for _, y in s.points]
        assert ys == sorted(ys) and ys[-1] == 1.0
