"""Ablation: CA-popularity skew in the synthetic Notary traffic.

The calibrated Zipf exponent (1.15) is a modeling choice. This ablation
sweeps the exponent and shows the findings the paper derives from the
Notary are robust to it: (a) the traffic stays concentrated on a small
root subset (the minimization argument) and (b) the share of roots
validating nothing is unchanged — zero-weight roots are zero at any
skew, so Table 4's offsets do not depend on the exponent.
"""

from _util import emit

from repro.rootstore.catalog import _zipf_allocation


def test_skew_ablation(benchmark):
    total, roots = 14_700, 110

    def run():
        results = {}
        for exponent in (0.6, 0.9, 1.15, 1.4, 1.8):
            allocation = _zipf_allocation(total, roots, exponent)
            top10 = sum(allocation[:10]) / total
            nonzero = sum(1 for count in allocation if count > 0)
            results[exponent] = (top10, nonzero)
        return results

    results = benchmark(run)

    emit(
        "Ablation: Zipf exponent sweep over core CA traffic",
        [
            f"s={exponent:<4} top-10 share={top10:.0%}  validating roots={nonzero}/110"
            for exponent, (top10, nonzero) in results.items()
        ],
    )

    shares = [top10 for top10, _ in results.values()]
    # Concentration grows with skew, monotonically.
    assert shares == sorted(shares)
    # Even the flattest skew concentrates: the minimization story holds.
    assert shares[0] > 0.15
    assert shares[-1] > 0.75
    # Allocation always spends the full budget.
    for exponent, (_, nonzero) in results.items():
        allocation = _zipf_allocation(total, roots, exponent)
        assert sum(allocation) == total
