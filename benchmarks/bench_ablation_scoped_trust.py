"""Ablation: Mozilla-style scoped trust vs Android's trust-everything.

§2/§8: Android "does not support specifying trust levels for different
CA certificates: they can be used for any operation from TLS server
verification to code signing". This ablation quantifies the attack
surface that scoping removes: under Mozilla's policy, how many roots
can vouch for each usage, versus all of them under Android's.
"""

from _util import emit

from repro.rootstore.store import TrustFlags


def test_scoped_trust_ablation(benchmark, platform_stores):
    mozilla = platform_stores.mozilla
    aosp = platform_stores.aosp["4.4"]

    def run():
        usable = {"server_auth": 0, "email": 0, "code_signing": 0}
        for entry in mozilla.entries():
            for usage in usable:
                if getattr(entry.trust, usage):
                    usable[usage] += 1
        android = {
            usage: sum(
                1 for _ in aosp.certificates(include_disabled=True)
            )
            for usage in usable
        }
        return usable, android

    mozilla_usable, android_usable = benchmark(run)

    emit(
        "Ablation: roots usable per purpose under each trust policy",
        [
            f"{usage:<14} Mozilla(scoped)={mozilla_usable[usage]:>4}   "
            f"Android(flat)={android_usable[usage]:>4}"
            for usage in mozilla_usable
        ]
        + [
            "code-signing surface reduction under scoping: "
            f"{1 - mozilla_usable['code_signing'] / android_usable['code_signing']:.0%}"
        ],
    )

    # Every root is a server-auth root either way...
    assert mozilla_usable["server_auth"] == len(mozilla)
    # ...but scoping strips code-signing from the public TLS CAs.
    assert mozilla_usable["code_signing"] < len(mozilla) * 0.25
    # Android's flat policy leaves the full store usable for everything.
    assert android_usable["code_signing"] == len(aosp)
