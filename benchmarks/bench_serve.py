#!/usr/bin/env python
"""Serve benchmark: transports × worker counts under a pipelined load.

Builds a reduced-scale study once, snapshots it, then measures each
requested *mode* — ``transport:processes`` — by forking a real
:class:`repro.serve.Supervisor` fleet (one process is just a fleet of
one) and hammering it over real sockets. The load generator is raw
``socket`` + HTTP/1.1 keep-alive with pipelining: each client writes a
batch of GETs in one syscall and reads the batch back, which is what it
takes for a pure-python client to keep a five-figure-req/s server busy.
No third-party load tool — same zero-dependency constraint as the
server.

Per mode:

* **cold** — a fresh fleet's first pass over the endpoint mix (every
  body pays its full canonical-JSON render);
* **warm** — timed pipelined rounds against hot response LRUs, with
  per-request latency accumulated into a log-spaced histogram
  (p50/p95/p99 are read from the histogram, not a sorted list);
* **per-worker** — ``/v1/metrics`` sampled over fresh connections
  until every worker pid has answered, so the JSON records how the
  kernel spread the load across the fleet;
* **parity** — every mode must serve byte-identical ETags for the
  same endpoints (same snapshot ⇒ same bytes, on any transport at any
  worker count), and the fleet must exit 0 on SIGTERM.

The deterministic 503 shedding check runs in-process, same as before.
Results land in ``BENCH_serve.json`` as one section per mode. Run::

    python benchmarks/bench_serve.py --modes threaded:1,evloop:1,evloop:4

``--fail-below MODE=RPS[,MODE=RPS...]`` gates warm throughput per
mode; ``--min-evloop-ratio R`` additionally requires the best evloop
mode to beat ``threaded:1`` by a factor of R on the same run.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import signal
import socket
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import StudyConfig, run_study
from repro.serve import ServeApp, SnapshotHolder, StudySnapshot, Supervisor

SEED = "bench-serve"

#: The endpoint mix each client cycles through (tables dominate, as
#: they would for a notebook polling the API).
ENDPOINTS = [
    "/v1/tables/1",
    "/v1/tables/2",
    "/v1/tables/3",
    "/v1/tables/4",
    "/v1/tables/5",
    "/v1/tables/6",
    "/v1/figures/1",
    "/v1/figures/2",
    "/v1/figures/3",
    "/v1/roots",
    "/v1/health",
]

#: Log-spaced latency histogram boundaries: 50µs … ~52s, factor 1.25.
LATENCY_BUCKETS = tuple(50e-6 * (1.25 ** i) for i in range(62))


class LatencyHistogram:
    """Fixed log-spaced buckets; percentiles read off the upper edges."""

    def __init__(self):
        self.counts = [0] * (len(LATENCY_BUCKETS) + 1)
        self.total = 0

    def observe(self, seconds: float, weight: int = 1) -> None:
        lo, hi = 0, len(LATENCY_BUCKETS)
        while lo < hi:
            mid = (lo + hi) // 2
            if seconds <= LATENCY_BUCKETS[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += weight
        self.total += weight

    def merge(self, other: "LatencyHistogram") -> None:
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total

    def percentile(self, fraction: float) -> float:
        """The upper bucket edge at *fraction* (conservative)."""
        if self.total == 0:
            return 0.0
        threshold = fraction * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= threshold:
                return LATENCY_BUCKETS[min(i, len(LATENCY_BUCKETS) - 1)]
        return LATENCY_BUCKETS[-1]

    def summary_ms(self) -> dict:
        return {
            "p50": round(self.percentile(0.50) * 1e3, 3),
            "p95": round(self.percentile(0.95) * 1e3, 3),
            "p99": round(self.percentile(0.99) * 1e3, 3),
        }


def _count_responses(buffer: bytes) -> tuple[int, int]:
    """(complete responses, bytes consumed) off the front of *buffer*."""
    responses = 0
    offset = 0
    while True:
        head_end = buffer.find(b"\r\n\r\n", offset)
        if head_end < 0:
            return responses, offset
        head = buffer[offset:head_end]
        marker = head.lower().find(b"content-length:")
        length = 0
        if marker >= 0:
            line_end = head.find(b"\r\n", marker)
            if line_end < 0:
                line_end = len(head)
            length = int(head[marker + 15 : line_end])
        end = head_end + 4 + length
        if len(buffer) < end:
            return responses, offset
        responses += 1
        offset = end


class _PipelinedClient(threading.Thread):
    """One keep-alive connection writing batches of pipelined GETs."""

    def __init__(self, host: str, port: int, batch_paths: list[str], batches: int):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.batch_paths = batch_paths
        self.batches = batches
        self.request_bytes = b"".join(
            f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode("ascii")
            for path in batch_paths
        )
        self.histogram = LatencyHistogram()
        self.ok = 0
        self.errors = 0
        self.expected = 0  # exact response bytes per batch, learned priming

    def _read_batch(self, sock: socket.socket, count: int) -> bytes:
        """Read exactly *count* responses (the priming / slow path)."""
        received = bytearray()
        while True:
            responses, _ = _count_responses(bytes(received))
            if responses >= count:
                return bytes(received)
            chunk = sock.recv(1 << 20)
            if not chunk:
                raise ConnectionError("server closed mid-batch")
            received += chunk

    def prime(self, sock: socket.socket) -> bytes:
        """One un-timed batch: warms this connection's worker, learns sizes."""
        sock.sendall(self.request_bytes)
        body = self._read_batch(sock, len(self.batch_paths))
        self.expected = len(body)
        return body

    def run(self) -> None:
        pipe = len(self.batch_paths)
        try:
            sock = socket.create_connection((self.host, self.port), timeout=30)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.prime(sock)
            self.prime(sock)  # second pass: everything cached now
            buffer = bytearray(self.expected)
            view = memoryview(buffer)
            for _ in range(self.batches):
                started = time.perf_counter()
                sock.sendall(self.request_bytes)
                need = self.expected
                while need:
                    received = sock.recv_into(view[self.expected - need :], need)
                    if not received:
                        raise ConnectionError("server closed mid-batch")
                    need -= received
                elapsed = time.perf_counter() - started
                good = buffer.count(b"HTTP/1.1 200")
                self.ok += good
                self.errors += pipe - good
                # every request in the batch experienced the batch RTT.
                self.histogram.observe(elapsed / 1.0, weight=pipe)
            sock.close()
        except OSError as error:
            print(f"client error: {error}", file=sys.stderr)
            self.errors += pipe * self.batches


def _http_get(host: str, port: int, path: str) -> tuple[int, dict, bytes]:
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def _fork_fleet(app_seed_snapshot, transport: str, processes: int, capacity: int):
    """Fork a supervisor fleet over a fresh app; returns (pid, port)."""
    app = ServeApp(SnapshotHolder(app_seed_snapshot), capacity=capacity)
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        status = 1
        try:
            supervisor = Supervisor(
                app,
                processes=processes,
                transport=transport,
                notify_fd=write_fd,
            )
            status = supervisor.run_forever()
        finally:
            os._exit(status)
    os.close(write_fd)
    line = b""
    while not line.endswith(b"\n"):
        chunk = os.read(read_fd, 64)
        if not chunk:
            raise RuntimeError("supervisor died before reporting its port")
        line += chunk
    os.close(read_fd)
    return pid, int(line.split()[1])


def _sample_workers(host: str, port: int, processes: int) -> list[dict]:
    """Sample /v1/metrics over fresh connections until every pid answered."""
    seen: dict[int, dict] = {}
    for _ in range(processes * 16):
        if len(seen) == processes:
            break
        status, _, body = _http_get(host, port, "/v1/metrics")
        if status != 200:
            continue
        metrics = json.loads(body)
        pid = int(metrics["gauges"].get("serve.worker.pid", 0))
        seen[pid] = {
            "pid": pid,
            "index": int(metrics["gauges"].get("serve.worker.index", 0)),
            "requests": metrics["counters"].get("serve.requests", 0),
            "cache_hits": metrics["counters"].get("serve.cache.hits", 0),
        }
    return [seen[pid] for pid in sorted(seen)]


def _run_mode(
    snapshot: StudySnapshot,
    transport: str,
    processes: int,
    *,
    clients: int,
    pipeline: int,
    requests: int,
) -> dict:
    """Fork, measure cold + warm + per-worker, drain; one JSON section."""
    effective_clients = max(clients, processes)
    capacity = effective_clients * pipeline + 16
    pid, port = _fork_fleet(snapshot, transport, processes, capacity)
    host = "127.0.0.1"
    try:
        # cold: a fresh fleet's first pass over the endpoint mix.
        etags: dict[str, str] = {}
        cold_started = time.perf_counter()
        for path in ENDPOINTS:
            status, headers, body = _http_get(host, port, path)
            assert status == 200, f"{transport}:{processes} {path} -> {status}"
            assert body, f"{transport}:{processes} {path} served empty body"
            if "ETag" in headers:
                etags[path] = headers["ETag"]
        cold_seconds = time.perf_counter() - cold_started
        cold = {
            "requests": len(ENDPOINTS),
            "seconds": round(cold_seconds, 4),
            "throughput_rps": round(len(ENDPOINTS) / cold_seconds, 1),
        }

        # warm: timed pipelined rounds split across clients.
        batch_paths = [ENDPOINTS[i % len(ENDPOINTS)] for i in range(pipeline)]
        per_client = max(1, requests // (effective_clients * pipeline))
        workers = [
            _PipelinedClient(host, port, batch_paths, per_client)
            for _ in range(effective_clients)
        ]
        warm_started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        warm_seconds = time.perf_counter() - warm_started
        histogram = LatencyHistogram()
        ok = errors = 0
        for worker in workers:
            histogram.merge(worker.histogram)
            ok += worker.ok
            errors += worker.errors
        if ok == 0:
            raise RuntimeError(f"{transport}:{processes}: warm round all-errors")
        warm = {
            "requests": ok,
            "errors": errors,
            "seconds": round(warm_seconds, 3),
            "clients": effective_clients,
            "pipeline": pipeline,
            "throughput_rps": round(ok / warm_seconds, 1),
            "latency_ms": histogram.summary_ms(),
        }

        per_worker = _sample_workers(host, port, processes)
    finally:
        os.kill(pid, signal.SIGTERM)
        _, status = os.waitpid(pid, 0)
    exit_code = os.waitstatus_to_exitcode(status)
    assert exit_code == 0, f"{transport}:{processes} fleet drained with {exit_code}"
    return {
        "transport": transport,
        "processes": processes,
        "cold": cold,
        "warm": warm,
        "per_worker": per_worker,
        "drain_exit_code": exit_code,
        "etags": etags,
    }


def _check_shedding(snapshot: StudySnapshot) -> dict:
    """Deterministic saturation, in-process: hold every slot, probe once."""
    from repro.serve import Request

    app = ServeApp(SnapshotHolder(snapshot), capacity=4)
    held = 0
    while app._slots.acquire(blocking=False):  # noqa: SLF001 (own app)
        held += 1
    try:
        response = app.handle(Request("GET", "/v1/health"))
    finally:
        for _ in range(held):
            app._slots.release()
    record = {
        "held_slots": held,
        "status": response.status,
        "retry_after": dict(response.headers).get("Retry-After"),
    }
    assert response.status == 503, f"saturated probe got {response.status}"
    assert record["retry_after"], "503 without Retry-After"
    assert b"error" in response.body, "503 without a JSON error body"
    return record


def _parse_modes(text: str) -> list[tuple[str, int]]:
    modes = []
    for token in text.split(","):
        transport, _, count = token.strip().partition(":")
        modes.append((transport, int(count or 1)))
    return modes


def _parse_gates(text: str | None) -> dict[str, float]:
    if not text:
        return {}
    gates = {}
    for token in text.split(","):
        mode, _, rps = token.strip().partition("=")
        gates[mode] = float(rps)
    return gates


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--modes", default="threaded:1,evloop:1,evloop:4",
        help="comma-separated transport:processes modes to measure",
    )
    parser.add_argument(
        "--transport", default=None, choices=("threaded", "evloop"),
        help="measure a single transport (overrides --modes)",
    )
    parser.add_argument(
        "--processes", type=int, default=1,
        help="worker count for --transport",
    )
    parser.add_argument(
        "--requests", type=int, default=30000,
        help="target warm requests per mode (split across clients)",
    )
    parser.add_argument(
        "--clients", type=int, default=2,
        help="load-generator threads (raised to the worker count if lower)",
    )
    parser.add_argument(
        "--pipeline", type=int, default=16,
        help="pipelined requests per batch on each connection",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="population scale of the served study",
    )
    parser.add_argument("--notary-scale", type=float, default=0.2)
    parser.add_argument(
        "--build-cache", metavar="DIR", default="",
        help="persistent build cache for the study build",
    )
    parser.add_argument("--out", default="BENCH_serve.json", help="output JSON path")
    parser.add_argument(
        "--fail-below", default=None, metavar="MODE=RPS,...",
        help="per-mode warm throughput gates, e.g. threaded:1=500,evloop:4=10000",
    )
    parser.add_argument(
        "--min-evloop-ratio", type=float, default=None, metavar="R",
        help="fail unless best evloop warm ≥ R × threaded:1 warm",
    )
    args = parser.parse_args(argv)
    if args.transport is not None:
        modes = [(args.transport, args.processes)]
    else:
        modes = _parse_modes(args.modes)
    gates = _parse_gates(args.fail_below)

    print(f"building study (scale={args.scale}, notary={args.notary_scale}) ...")
    build_started = time.perf_counter()
    result = run_study(
        StudyConfig(
            seed=SEED,
            population_scale=args.scale,
            notary_scale=args.notary_scale,
            build_cache_dir=args.build_cache,
        )
    )
    snapshot = StudySnapshot.from_result(result, generation=0)
    build_seconds = time.perf_counter() - build_started

    sections: dict[str, dict] = {}
    for transport, processes in modes:
        key = f"{transport}:{processes}"
        print(f"mode {key}: forking fleet ...")
        sections[key] = _run_mode(
            snapshot,
            transport,
            processes,
            clients=args.clients,
            pipeline=args.pipeline,
            requests=args.requests,
        )
        warm = sections[key]["warm"]
        print(
            f"  {key:>12}: cold {sections[key]['cold']['throughput_rps']:>8} "
            f"warm {warm['throughput_rps']:>9} req/s "
            f"p50={warm['latency_ms']['p50']}ms p99={warm['latency_ms']['p99']}ms "
            f"({len(sections[key]['per_worker'])} worker(s))"
        )

    # parity: identical endpoints must carry identical ETags everywhere.
    reference_key = next(iter(sections))
    reference = sections[reference_key]["etags"]
    parity = all(section["etags"] == reference for section in sections.values())
    assert parity, "ETag mismatch across modes — transports serve different bytes"
    print(f"  parity: ETags identical across {len(sections)} mode(s)")

    shed = _check_shedding(snapshot)
    print(f"  shed : 503 with Retry-After={shed['retry_after']}")

    payload = {
        "benchmark": "serve",
        "seed": SEED,
        "scale": args.scale,
        "pipeline": args.pipeline,
        "study_build_s": round(build_seconds, 3),
        "snapshot_meta": snapshot.meta,
        "modes": sections,
        "etag_parity": parity,
        "shedding": shed,
    }
    if "threaded:1" in sections:
        threaded_warm = sections["threaded:1"]["warm"]["throughput_rps"]
        evloop_best = max(
            (
                section["warm"]["throughput_rps"]
                for key, section in sections.items()
                if key.startswith("evloop:")
            ),
            default=None,
        )
        if evloop_best is not None:
            payload["evloop_over_threaded"] = round(evloop_best / threaded_warm, 2)

    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    failed = False
    for mode, floor in gates.items():
        if mode not in sections:
            print(f"FAIL: gated mode {mode} was not measured", file=sys.stderr)
            failed = True
            continue
        measured = sections[mode]["warm"]["throughput_rps"]
        if measured < floor:
            print(
                f"FAIL: {mode} warm {measured} req/s < {floor}", file=sys.stderr
            )
            failed = True
    if args.min_evloop_ratio is not None:
        ratio = payload.get("evloop_over_threaded")
        if ratio is None or ratio < args.min_evloop_ratio:
            print(
                f"FAIL: evloop/threaded ratio {ratio} < {args.min_evloop_ratio}",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
