#!/usr/bin/env python
"""Serve benchmark: a threaded stdlib load generator over a real server.

Builds a reduced-scale study, serves it with :class:`repro.serve.StudyServer`
on an ephemeral port, and hammers it with ``http.client`` connections on
plain threads — no third-party load tool, same constraint as the server
itself. Three phases:

* **cold** — the response LRU is cleared before every round, so every
  request pays the full render (canonical JSON serialization);
* **warm** — the cache is primed once and every request is an LRU hit;
* **shed** — the admission semaphore is saturated deterministically
  (the benchmark holds every slot itself) and one probe request must
  come back ``503`` with a ``Retry-After`` header.

Each timed phase reports throughput and p50/p95/p99 latency; results
land in ``BENCH_serve.json``. Run standalone::

    python benchmarks/bench_serve.py --requests 2000 --clients 4

``--fail-below R`` exits non-zero when warm throughput drops below R
requests/second (CI uses 500 per the serve acceptance bar).
"""

from __future__ import annotations

import argparse
import http.client
import json
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import StudyConfig, run_study
from repro.serve import ServeApp, SnapshotHolder, StudySnapshot, StudyServer

SEED = "bench-serve"

#: The endpoint mix each client cycles through (tables dominate, as
#: they would for a notebook polling the API).
ENDPOINTS = [
    "/v1/tables/1",
    "/v1/tables/2",
    "/v1/tables/3",
    "/v1/tables/4",
    "/v1/tables/5",
    "/v1/tables/6",
    "/v1/figures/1",
    "/v1/figures/2",
    "/v1/figures/3",
    "/v1/roots",
    "/v1/health",
]


class _Client(threading.Thread):
    """One load-generator thread with a persistent keep-alive connection."""

    def __init__(self, host: str, port: int, requests: int, offset: int):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.requests = requests
        self.offset = offset
        self.latencies: list[float] = []
        self.errors = 0

    def run(self) -> None:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            for i in range(self.requests):
                path = ENDPOINTS[(self.offset + i) % len(ENDPOINTS)]
                started = time.perf_counter()
                try:
                    connection.request("GET", path)
                    response = connection.getresponse()
                    body = response.read()
                    if response.status != 200 or not body:
                        self.errors += 1
                except (http.client.HTTPException, OSError):
                    self.errors += 1
                    connection.close()
                    connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=30
                    )
                    continue
                self.latencies.append(time.perf_counter() - started)
        finally:
            connection.close()


def _run_load(server: StudyServer, clients: int, requests_per_client: int) -> dict:
    """One timed round; returns throughput + latency percentiles."""
    threads = [
        _Client(server.host, server.port, requests_per_client, offset)
        for offset in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    latencies = sorted(x for thread in threads for x in thread.latencies)
    errors = sum(thread.errors for thread in threads)
    if not latencies:
        raise RuntimeError("load round produced no successful requests")

    def percentile(fraction: float) -> float:
        return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]

    return {
        "requests": len(latencies),
        "errors": errors,
        "seconds": round(elapsed, 3),
        "throughput_rps": round(len(latencies) / elapsed, 1),
        "latency_ms": {
            "p50": round(statistics.median(latencies) * 1e3, 3),
            "p95": round(percentile(0.95) * 1e3, 3),
            "p99": round(percentile(0.99) * 1e3, 3),
            "max": round(latencies[-1] * 1e3, 3),
        },
    }


def _check_shedding(app: ServeApp, server: StudyServer) -> dict:
    """Deterministic saturation: hold every admission slot, probe once."""
    held = 0
    while app._slots.acquire(blocking=False):  # noqa: SLF001 (own app)
        held += 1
    try:
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        connection.request("GET", "/v1/health")
        response = connection.getresponse()
        body = response.read()
        retry_after = response.getheader("Retry-After")
        connection.close()
    finally:
        for _ in range(held):
            app._slots.release()
    record = {
        "held_slots": held,
        "status": response.status,
        "retry_after": retry_after,
    }
    assert response.status == 503, f"saturated probe got {response.status}"
    assert retry_after, "503 without Retry-After"
    assert b"error" in body, "503 without a JSON error body"
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests", type=int, default=2000,
        help="total requests per timed round (split across clients)",
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="load-generator threads"
    )
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="population scale of the served study",
    )
    parser.add_argument("--notary-scale", type=float, default=0.2)
    parser.add_argument(
        "--cold-rounds", type=int, default=5,
        help="cache-cleared rounds over the endpoint mix for the cold number",
    )
    parser.add_argument(
        "--build-cache", metavar="DIR", default="",
        help="persistent build cache for the study build",
    )
    parser.add_argument("--out", default="BENCH_serve.json", help="output JSON path")
    parser.add_argument(
        "--fail-below", type=float, default=None, metavar="RPS",
        help="exit 1 if warm-cache throughput is below RPS requests/second",
    )
    args = parser.parse_args(argv)
    per_client = max(1, args.requests // args.clients)

    print(f"building study (scale={args.scale}, notary={args.notary_scale}) ...")
    build_start = time.perf_counter()
    result = run_study(
        StudyConfig(
            seed=SEED,
            population_scale=args.scale,
            notary_scale=args.notary_scale,
            build_cache_dir=args.build_cache,
        )
    )
    snapshot = StudySnapshot.from_result(result, generation=0)
    build_seconds = time.perf_counter() - build_start

    app = ServeApp(SnapshotHolder(snapshot), capacity=args.clients * 2 + 8)
    server = StudyServer(app, port=0).start()
    try:
        # cold: every round starts with an empty LRU, so each of the
        # distinct endpoints pays one full render per round.
        cold_start = time.perf_counter()
        cold_requests = 0
        for _ in range(args.cold_rounds):
            app.cache.clear()
            round_stats = _run_load(server, 1, len(ENDPOINTS))
            cold_requests += round_stats["requests"]
        cold_seconds = time.perf_counter() - cold_start
        cold = {
            "requests": cold_requests,
            "seconds": round(cold_seconds, 3),
            "throughput_rps": round(cold_requests / cold_seconds, 1),
        }
        print(f"  cold : {cold['throughput_rps']:>8} req/s ({cold_requests} requests)")

        # warm: prime once, then the timed multi-client round is all hits.
        app.cache.clear()
        _run_load(server, 1, len(ENDPOINTS))
        warm = _run_load(server, args.clients, per_client)
        print(
            f"  warm : {warm['throughput_rps']:>8} req/s "
            f"p50={warm['latency_ms']['p50']}ms p99={warm['latency_ms']['p99']}ms"
        )

        shed = _check_shedding(app, server)
        print(
            f"  shed : 503 with Retry-After={shed['retry_after']} "
            f"(held {shed['held_slots']} slots)"
        )

        # One locked snapshot; covers the era since the last clear()
        # (the warm prime + the timed warm round).
        cache_stats = app.cache.stats()
    finally:
        server.stop()

    payload = {
        "benchmark": "serve",
        "seed": SEED,
        "scale": args.scale,
        "clients": args.clients,
        "study_build_s": round(build_seconds, 3),
        "snapshot_meta": snapshot.meta,
        "cold_cache": cold,
        "warm_cache": warm,
        "warm_over_cold": round(
            warm["throughput_rps"] / cold["throughput_rps"], 2
        ),
        "cache": cache_stats,
        "shedding": shed,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if args.fail_below is not None and warm["throughput_rps"] < args.fail_below:
        print(
            f"FAIL: warm throughput {warm['throughput_rps']} req/s "
            f"< {args.fail_below}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
