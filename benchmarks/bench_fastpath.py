#!/usr/bin/env python
"""Fast-path benchmark: serial vs. cached vs. cached+parallel.

Times the study's two hottest artifacts — Table 3 (per-store validation
counts) and Figure 3 (per-root validation ECDFs) — against the same
Notary in three configurations:

* **serial** — fast path disabled: every RSA signature check runs from
  first principles, as the pre-fast-path engine did;
* **cached** — the verification cache and the Notary's derived indexes
  on, single process (caches start cold);
* **parallel** — caches on (cold) plus the chunked process-pool
  executor for the per-root sweeps.

Every phase must produce identical tables/figures; the harness asserts
this before reporting a single number. One CertificateFactory is shared
across scale entries (CA keys generate once per sweep), and
``--build-cache DIR`` persists each built notary so later sweeps load
it instead of rebuilding; ``build_phases`` records the cold build's
keygen/signing/serialization split. Results land in
``BENCH_fastpath.json``. Run standalone::

    python benchmarks/bench_fastpath.py --scales 1 4 --workers 4

``--fail-below R`` exits non-zero when the cached+parallel speedup over
serial drops below R (CI uses 1.0: the fast path must never lose).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs
from repro.analysis.figures import figure3_ecdf, store_categories
from repro.analysis.tables import table3_validated_counts
from repro.buildcache import BuildCache
from repro.crypto.cache import default_verification_cache, fastpath_disabled
from repro.notary import build_notary
from repro.parallel import ParallelExecutor, resolve_workers
from repro.rootstore import CertificateFactory, build_platform_stores
from repro.rootstore.catalog import default_catalog
from repro.tlssim.traffic import TlsTrafficGenerator

SEED = "bench-universe"


def _workload(stores, categories, notary, executor=None):
    """Table 3 + Figure 3 — the paper's Notary-bound artifacts."""
    table3 = table3_validated_counts(stores, notary)
    figure3 = figure3_ecdf(categories, notary, executor=executor)
    return table3, figure3


def _cold_start(notary) -> None:
    """Reset every memo layer so a phase starts from scratch."""
    default_verification_cache().clear()
    notary.reset_fastpath()


def _timed_build(factory, catalog, scale: float, cache: BuildCache | None) -> tuple:
    """Build (or cache-load) one notary, timing the build phases.

    The factory is shared across scale entries, so CA keys generate
    once for the whole sweep; with a ``cache``, the built notary is
    persisted per scale and later sweeps load instead of rebuilding.
    Returns ``(notary, phases_dict)``.
    """
    params = {"seed": SEED, "key_bits": factory.key_bits, "scale": scale}
    if cache is not None:
        load_start = time.perf_counter()
        notary = cache.get("bench-notary", params)
        if notary is not None:
            return notary, {
                "cache": "hit",
                "load_s": round(time.perf_counter() - load_start, 3),
            }
    generator = TlsTrafficGenerator(factory, catalog, scale=scale)
    executor = ParallelExecutor()
    keygen_start = time.perf_counter()
    generator.warm(executor)
    keygen_seconds = time.perf_counter() - keygen_start
    signing_start = time.perf_counter()
    notary = build_notary(generator=generator, executor=executor)
    signing_seconds = time.perf_counter() - signing_start
    serialization_seconds = 0.0
    if cache is not None:
        serialization_start = time.perf_counter()
        cache.put("bench-notary", params, notary)
        serialization_seconds = time.perf_counter() - serialization_start
    return notary, {
        "cache": "miss" if cache is not None else "off",
        "keygen_s": round(keygen_seconds, 3),
        "signing_s": round(signing_seconds, 3),
        "serialization_s": round(serialization_seconds, 3),
    }


def bench_scale(
    scale: float,
    workers: int,
    factory: CertificateFactory,
    cache: BuildCache | None,
) -> dict:
    """Benchmark one notary scale; returns the result record."""
    catalog = default_catalog()
    stores = build_platform_stores(factory, catalog)

    build_start = time.perf_counter()
    notary, build_phases = _timed_build(factory, catalog, scale, cache)
    build_seconds = time.perf_counter() - build_start
    # Store-only categories: without session extras the "additional
    # certs" buckets are empty and carry no ECDF — drop them.
    categories = {
        label: roots
        for label, roots in store_categories(
            stores.aosp, stores.mozilla, stores.ios7, []
        ).items()
        if roots
    }

    with fastpath_disabled():
        serial_start = time.perf_counter()
        serial_result = _workload(stores, categories, notary)
        serial_seconds = time.perf_counter() - serial_start

    # The cached phase reports the run's *delta* via ``since()`` — a
    # fresh absolute snapshot here would silently fold in whatever the
    # process had already accumulated (the old harness bug).
    _cold_start(notary)
    cache_baseline = default_verification_cache().stats()
    cached_start = time.perf_counter()
    cached_result = _workload(stores, categories, notary)
    cached_seconds = time.perf_counter() - cached_start
    cache_stats = default_verification_cache().stats().since(cache_baseline)

    # The parallel phase runs in its own telemetry capture window so
    # the record can carry the executor's fan-out counters.
    _cold_start(notary)
    executor = ParallelExecutor(workers=workers)
    with obs.capture() as (registry, _tracer):
        parallel_start = time.perf_counter()
        parallel_result = _workload(stores, categories, notary, executor=executor)
        parallel_seconds = time.perf_counter() - parallel_start
    parallel_counters = registry.to_dict()["counters"]

    assert cached_result == serial_result, "cached phase changed the results"
    assert parallel_result == serial_result, "parallel phase changed the results"

    return {
        "scale": scale,
        "leaves": notary.total_certificates,
        "build_s": round(build_seconds, 3),
        "build_phases": build_phases,
        "serial_s": round(serial_seconds, 3),
        "cached_s": round(cached_seconds, 3),
        "parallel_s": round(parallel_seconds, 3),
        "speedup_cached": round(serial_seconds / cached_seconds, 2),
        "speedup_parallel": round(serial_seconds / parallel_seconds, 2),
        "cache": cache_stats.to_dict(),
        "notary_indexes": notary.fastpath_index_sizes(),
        "parallel_counters": parallel_counters,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", type=float, nargs="+", default=[1.0, 4.0],
        help="notary traffic scales to benchmark (default: 1 4)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="workers for the parallel phase (0 = one per CPU)",
    )
    parser.add_argument(
        "--out", default="BENCH_fastpath.json", help="output JSON path"
    )
    parser.add_argument(
        "--build-cache", metavar="DIR", default=None,
        help="persistent build cache shared across scales and runs "
        "(built notaries load instead of rebuilding)",
    )
    parser.add_argument(
        "--fail-below", type=float, default=None, metavar="RATIO",
        help="exit 1 if any scale's cached+parallel speedup over serial "
        "is below RATIO",
    )
    args = parser.parse_args(argv)
    workers = resolve_workers(args.workers)

    factory = CertificateFactory(seed=SEED)
    cache = BuildCache(args.build_cache) if args.build_cache else None
    records = []
    for scale in args.scales:
        print(f"benchmarking notary_scale={scale} (workers={workers}) ...")
        record = bench_scale(scale, workers, factory, cache)
        records.append(record)
        print(
            f"  leaves={record['leaves']:,} "
            f"serial={record['serial_s']}s "
            f"cached={record['cached_s']}s (x{record['speedup_cached']}) "
            f"parallel={record['parallel_s']}s (x{record['speedup_parallel']})"
        )

    payload = {
        "benchmark": "fastpath",
        "seed": SEED,
        "workers": workers,
        "workload": "table3_validated_counts + figure3_ecdf",
        "scales": records,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if args.fail_below is not None:
        slow = [
            record for record in records
            if record["speedup_parallel"] < args.fail_below
        ]
        if slow:
            for record in slow:
                print(
                    f"FAIL: scale {record['scale']}: cached+parallel speedup "
                    f"{record['speedup_parallel']} < {args.fail_below}",
                    file=sys.stderr,
                )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
