"""Ablation: the cost side of root-store bloat.

The paper's security argument is about attack surface; this ablation
quantifies the *operational* side: client-side handshake-validation
throughput as the trust-anchor set grows from a minimized store to the
full aggregated-Android set (setup is per-connection, as in a
measurement client that rebuilds its verifier per session).
"""

from _util import emit

from repro.tlssim.handshake import TlsClient, TlsServer
from repro.tlssim.traffic import TlsTrafficGenerator
from repro.rootstore.store import RootStore


def _subject_store(platform_stores, extra_certificates, size):
    certs = platform_stores.aosp["4.4"].certificates() + extra_certificates
    return RootStore(f"store-{size}", certs[:size])


def test_store_size_validation_cost(
    benchmark, platform_stores, extra_certificates, factory, catalog
):
    traffic = TlsTrafficGenerator(factory, catalog)
    identity = traffic.server_identity("www.example.com", "VeriSign Class 3 Root")
    server = TlsServer("www.example.com", 443, identity)
    sizes = (10, 50, 150, 235)
    stores = {
        size: _subject_store(platform_stores, extra_certificates, size)
        for size in sizes
    }
    # The anchor must be present in every configuration for a fair
    # comparison of the happy path.
    anchor = identity.chain[-1]
    for store in stores.values():
        store.add(anchor)

    import time

    def run():
        timings = {}
        for size, store in stores.items():
            start = time.perf_counter()
            rounds = 30
            for _ in range(rounds):
                result = TlsClient(store).connect(server)
                assert result.trusted
            timings[size] = (time.perf_counter() - start) / rounds
        return timings

    timings = benchmark.pedantic(run, rounds=3, iterations=1)

    emit(
        "Ablation: per-connection validation cost vs store size",
        [
            f"{size:>4} anchors: {seconds * 1e3:.2f} ms/handshake"
            for size, seconds in timings.items()
        ],
    )

    # Cost grows with store size (verifier indexing is per-connection),
    # but stays sub-linear thanks to subject indexing.
    assert timings[235] > timings[10]
    assert timings[235] < timings[10] * 40
