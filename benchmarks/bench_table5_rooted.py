"""Table 5: CAs found exclusively on rooted devices.

Paper: CRAZY HOUSE on 70 devices; MIND OVERFLOW, USER_X,
CDA/EMAILADDRESS and CIRRUS, PRIVATE on one device each; 24 % of
sessions rooted, ~6 % of rooted sessions carrying such certs
(~1.5 % of all).
"""

from _util import emit

from repro.analysis.rooted import RootedDeviceAnalysis
from repro.analysis.tables import table5_rooted_cas

PAPER_TOP = {"CRAZY HOUSE": 70, "MIND OVERFLOW": 1, "USER_X": 1,
             "CDA/EMAILADDRESS": 1, "CIRRUS, PRIVATE": 1}


def test_table5_rooted_cas(benchmark, diffs, notary):
    analysis = benchmark(RootedDeviceAnalysis.run, diffs, notary)
    rows = table5_rooted_cas(analysis, limit=8)

    emit(
        "Table 5: CAs found exclusively on rooted devices",
        [
            f"{label:<32} measured={count:>3} devices"
            + (f"  paper={PAPER_TOP[label]}" if label in PAPER_TOP else "")
            for label, count in rows
        ]
        + [
            f"rooted sessions: {analysis.rooted_session_fraction:.0%} (paper 24%)",
            f"rooted-exclusive: {analysis.exclusive_session_fraction_of_rooted:.1%} "
            "of rooted (paper ~6%), "
            f"{analysis.exclusive_session_fraction_of_all:.1%} of all (paper ~1.5%)",
        ],
    )

    assert rows[0][0] == "CRAZY HOUSE"
    assert 40 <= rows[0][1] <= 80  # paper: 70 devices
    labels = {label for label, _ in rows}
    assert {"MIND OVERFLOW", "CDA/EMAILADDRESS", "CIRRUS, PRIVATE"} <= labels
    assert 0.20 <= analysis.rooted_session_fraction <= 0.28
    assert 0.03 <= analysis.exclusive_session_fraction_of_rooted <= 0.10
    assert 0.008 <= analysis.exclusive_session_fraction_of_all <= 0.025
