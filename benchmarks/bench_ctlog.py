"""Extension bench: Certificate-Transparency substrate throughput.

Measures the Merkle-tree operations (append, inclusion proof,
verification) and monitor polling over a log of real certificates — the
operational cost of §8-grade auditability.
"""

from _util import emit

from repro.ctlog import CertificateLog, MerkleTree, verify_inclusion


def test_merkle_throughput(benchmark):
    leaves = [index.to_bytes(8, "big") for index in range(2_000)]

    def run():
        tree = MerkleTree()
        for leaf in leaves:
            tree.append(leaf)
        root = tree.root_hash()
        verified = 0
        for index in range(0, len(leaves), 50):
            proof = tree.inclusion_proof(index)
            assert verify_inclusion(leaves[index], index, len(leaves), proof, root)
            verified += 1
        return verified

    verified = benchmark(run)
    emit(
        "Extension: Merkle tree throughput",
        [f"appended {len(leaves):,} leaves; verified {verified} inclusion proofs"],
    )
    assert verified == 40


def test_log_submission_and_sth(benchmark, factory, catalog):
    certificates = [factory.root_certificate(p) for p in catalog.core[:40]]

    def run():
        log = CertificateLog("bench-log", seed="bench-ct")
        for certificate in certificates:
            log.submit(certificate)
        sth = log.signed_tree_head()
        sth.verify(log.public_key)
        return sth.tree_size

    size = benchmark(run)
    emit(
        "Extension: log submission + signed tree head",
        [f"logged {size} certificates and issued a verified STH"],
    )
    assert size == 40
