"""Ablation: the certificate-identity function (§4.1/§4.2 design choice).

The paper identifies certificates by (RSA modulus, signature) and
compares across stores by (subject, modulus) equivalence. This ablation
contrasts three identity notions on the AOSP4.4-vs-Mozilla overlap:

* byte-exact DER equality        -> misses the 13 re-issued twins (117);
* the paper's equivalence        -> finds all 130;
* subject-string-only identity   -> over-merges (vulnerable to subject
  collisions, which rooted-device attackers control).
"""

from _util import emit

from repro.rootstore.diff import overlap_count
from repro.x509.fingerprint import equivalence_key, fingerprint, identity_key


def _overlap_by(key_fn, a, b):
    b_keys = {key_fn(c) for c in b.certificates(include_disabled=True)}
    return sum(
        1 for c in a.certificates(include_disabled=True) if key_fn(c) in b_keys
    )


def test_identity_function_ablation(benchmark, platform_stores):
    aosp44 = platform_stores.aosp["4.4"]
    mozilla = platform_stores.mozilla

    def run():
        return {
            "byte-exact (DER)": _overlap_by(lambda c: c.encoded, aosp44, mozilla),
            "sha256 fingerprint": _overlap_by(fingerprint, aosp44, mozilla),
            "modulus+signature (paper id)": overlap_count(aosp44, mozilla),
            "subject+modulus (paper equivalence)": overlap_count(
                aosp44, mozilla, use_equivalence=True
            ),
            "subject only": _overlap_by(
                lambda c: c.subject.normalized(), aosp44, mozilla
            ),
        }

    overlaps = benchmark(run)

    emit(
        "Ablation: AOSP 4.4 ∩ Mozilla under different identity functions",
        [f"{name:<38} overlap={count}" for name, count in overlaps.items()]
        + ["paper: 117 identical (§2), 130 equivalent (Table 4)"],
    )

    assert overlaps["byte-exact (DER)"] == 117
    assert overlaps["sha256 fingerprint"] == 117
    assert overlaps["modulus+signature (paper id)"] == 117
    assert overlaps["subject+modulus (paper equivalence)"] == 130
    # Subject-only matches at least as much as the sound equivalence --
    # anything beyond it would be a spurious (collision) merge.
    assert overlaps["subject only"] >= 130


def test_identity_stability_under_reissue(benchmark, factory, catalog):
    """A re-issued root keeps its equivalence key but changes every
    stricter identity."""
    profile = next(p for p in catalog.core if p.reissued_in_mozilla)

    def run():
        canonical = factory.root_certificate(profile)
        twin = factory.reissued_certificate(profile)
        return canonical, twin

    canonical, twin = benchmark(run)
    assert canonical.encoded != twin.encoded
    assert identity_key(canonical) != identity_key(twin)
    assert equivalence_key(canonical) == equivalence_key(twin)
