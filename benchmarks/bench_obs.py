#!/usr/bin/env python
"""Telemetry overhead benchmark: instrumented vs. zero-instrumentation.

Times a full study run twice — once with the observability layer
recording normally (spans, counters, histograms) and once inside
:func:`repro.obs.disabled`, where every helper is a no-op — and reports
the relative overhead the telemetry spine adds. Both runs must render
the byte-identical study report (report neutrality is the layer's
design invariant), and the instrumented run's trace/metrics exports
must pass the :mod:`repro.obs.schema` validators; the harness asserts
both before reporting a single number.

Runs are interleaved (plain, instrumented, plain, …) and each
configuration keeps its best time, which damps machine noise without
hiding a systematic slowdown. The process-wide verification cache is
cleared before every run so neither configuration inherits the other's
warm entries. Results land in ``BENCH_obs.json``. Run standalone::

    python benchmarks/bench_obs.py --scale 0.1 --notary-scale 0.1

``--max-overhead R`` exits non-zero when the relative overhead exceeds
R (CI uses 0.05: telemetry must stay within 5% of a plain run).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs
from repro.analysis.report import render_study_report
from repro.analysis.study import StudyConfig, run_study
from repro.crypto.cache import default_verification_cache
from repro.obs.schema import validate_metrics, validate_trace


def _timed_run(config: StudyConfig, instrumented: bool) -> tuple[float, object]:
    """One cold study run; returns ``(seconds, result)``."""
    default_verification_cache().clear()
    guard = obs.disabled() if not instrumented else None
    start = time.perf_counter()
    if guard is not None:
        with guard:
            result = run_study(config)
    else:
        result = run_study(config)
    return time.perf_counter() - start, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1,
                        help="population scale of the timed study")
    parser.add_argument("--notary-scale", type=float, default=0.1,
                        help="notary traffic scale of the timed study")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the timed study")
    parser.add_argument("--repeats", type=int, default=2,
                        help="interleaved repeats per configuration "
                        "(best time wins)")
    parser.add_argument("--out", default="BENCH_obs.json",
                        help="output JSON path")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="also write the instrumented run's trace here")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="also write the instrumented run's metrics here")
    parser.add_argument("--max-overhead", type=float, default=None,
                        metavar="RATIO",
                        help="exit 1 if (instrumented - plain) / plain "
                        "exceeds RATIO")
    args = parser.parse_args(argv)

    config = StudyConfig(
        population_scale=args.scale,
        notary_scale=args.notary_scale,
        workers=args.workers,
    )

    plain_seconds = []
    instrumented_seconds = []
    plain_report = instrumented_report = None
    telemetry = None
    for repeat in range(max(args.repeats, 1)):
        print(f"repeat {repeat + 1}/{max(args.repeats, 1)}: plain ...")
        seconds, result = _timed_run(config, instrumented=False)
        plain_seconds.append(seconds)
        plain_report = render_study_report(result)
        print(f"  plain        {seconds:.3f}s")
        print(f"repeat {repeat + 1}/{max(args.repeats, 1)}: instrumented ...")
        seconds, result = _timed_run(config, instrumented=True)
        instrumented_seconds.append(seconds)
        instrumented_report = render_study_report(result)
        telemetry = result.telemetry
        print(f"  instrumented {seconds:.3f}s")

    assert instrumented_report == plain_report, (
        "telemetry changed the study report"
    )
    assert telemetry is not None, "instrumented run captured no telemetry"
    validate_trace(telemetry.trace)
    validate_metrics(telemetry.metrics)
    if args.trace_out:
        telemetry.write_trace(args.trace_out)
        print(f"wrote {args.trace_out}")
    if args.metrics_out:
        telemetry.write_metrics(args.metrics_out)
        print(f"wrote {args.metrics_out}")

    best_plain = min(plain_seconds)
    best_instrumented = min(instrumented_seconds)
    overhead = (best_instrumented - best_plain) / best_plain
    span_count = len(telemetry.trace["spans"])
    counter_count = len(telemetry.metrics["counters"])

    payload = {
        "benchmark": "obs",
        "workload": "run_study (full pipeline)",
        "scale": args.scale,
        "notary_scale": args.notary_scale,
        "workers": args.workers,
        "repeats": max(args.repeats, 1),
        "plain_s": round(best_plain, 3),
        "instrumented_s": round(best_instrumented, 3),
        "overhead": round(overhead, 4),
        "report_identical": True,
        "trace_root_spans": span_count,
        "metrics_counters": counter_count,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"plain={best_plain:.3f}s instrumented={best_instrumented:.3f}s "
        f"overhead={overhead:+.2%}"
    )
    print(f"wrote {out}")

    if args.max_overhead is not None and overhead > args.max_overhead:
        print(
            f"FAIL: telemetry overhead {overhead:.2%} exceeds "
            f"{args.max_overhead:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
