"""Ablation: root ordering in the cumulative-coverage view of Figure 3.

The paper orders roots most-validating-first. Greedy ordering reaches
95 % coverage with a handful of roots; a random (arrival) order needs
most of the store — the knee is an artifact of the ordering, which is
exactly why greedy ordering is the right lens for the removal argument.
"""

import random

from _util import emit

from repro.analysis.ecdf import cumulative_coverage, knee_index
from repro.notary.validation import validation_counts_by_root


def test_ecdf_ordering_ablation(benchmark, platform_stores, notary):
    roots = platform_stores.aosp["4.4"].certificates()
    counts = validation_counts_by_root(notary, roots)

    def run():
        greedy = cumulative_coverage(counts, greedy=True)
        shuffled = list(counts)
        random.Random(42).shuffle(shuffled)
        arrival = cumulative_coverage(shuffled, greedy=False)
        return greedy, arrival

    greedy, arrival = benchmark(run)
    lines = []
    knees = {}
    for threshold in (0.80, 0.95):
        greedy_knee = knee_index(greedy, threshold)
        arrival_knee = knee_index(arrival, threshold)
        knees[threshold] = (greedy_knee, arrival_knee)
        lines.append(
            f"{threshold:.0%} coverage: greedy top {greedy_knee}, "
            f"random top {arrival_knee} of {len(counts)} roots "
            f"({arrival_knee / greedy_knee:.1f}x)"
        )
    emit("Ablation: greedy vs random root ordering (AOSP 4.4)", lines)

    assert greedy[-1][1] == arrival[-1][1]  # total coverage identical
    for greedy_knee, arrival_knee in knees.values():
        assert greedy_knee < arrival_knee
    # At 80% the greedy knee is early; random ordering needs most roots.
    assert knees[0.80][0] <= len(counts) * 0.35
    assert knees[0.95][1] >= len(counts) * 0.5
