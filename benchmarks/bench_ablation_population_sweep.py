"""Ablation: population-parameter sweeps (finding robustness).

Varies the rooting rate and the corpus size, re-running the measurement
pipeline at each point. The paper's findings must be qualitative
invariants: the extended-store fraction stays near 39 % regardless of
corpus size, and rooted-exclusive certificates remain detectable across
rooting rates.
"""

from _util import emit

from repro.analysis.sweep import (
    PopulationSweep,
    rooted_fraction_sweep,
    scale_sweep,
)
from repro.android.population import PopulationConfig


def test_population_sweeps(benchmark, factory, catalog, platform_stores):
    sweep = PopulationSweep(
        factory,
        catalog,
        platform_stores,
        base_config=PopulationConfig(seed="sweep-bench", scale=0.06),
    )

    def run():
        return (
            rooted_fraction_sweep(sweep, values=(0.10, 0.24, 0.40)),
            scale_sweep(sweep, values=(0.04, 0.08)),
        )

    rooted_points, scale_points = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["rooted-fraction sweep:"]
    for point in rooted_points:
        lines.append(
            f"  rooted={point.value:.2f}: measured rooted "
            f"{point.metrics['rooted_fraction']:.2f}, exclusive "
            f"{point.metrics['exclusive_of_rooted']:.1%} of rooted"
        )
    lines.append("corpus-scale sweep:")
    for point in scale_points:
        lines.append(
            f"  scale={point.value:.2f}: {point.metrics['sessions']:.0f} sessions, "
            f"extended {point.metrics['extended_fraction']:.1%}"
        )
    emit("Ablation: population-parameter sweeps", lines)

    # Measured rooted fraction tracks the parameter across the sweep.
    for point in rooted_points:
        assert abs(point.metrics["rooted_fraction"] - point.value) < 0.08
        # Exclusive certs stay detectable whenever rooting exists.
        assert point.metrics["exclusive_of_rooted"] > 0
    # The §5 headline is a property of the firmware model, not the
    # corpus size: stable within a few points across scales.
    fractions = [p.metrics["extended_fraction"] for p in scale_points]
    assert max(fractions) - min(fractions) < 0.06
    for fraction in fractions:
        assert 0.30 <= fraction <= 0.48
