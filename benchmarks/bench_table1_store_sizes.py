"""Table 1: root-store sizes per platform.

Paper: AOSP 4.1/4.2/4.3/4.4 = 139/140/146/150, iOS7 = 227, Mozilla = 153.
The benchmark measures full store construction from the catalog.
"""

from _util import emit

from repro.analysis.tables import table1_store_sizes
from repro.rootstore import build_platform_stores

PAPER = {
    "AOSP 4.1": 139,
    "AOSP 4.2": 140,
    "AOSP 4.3": 146,
    "AOSP 4.4": 150,
    "iOS7": 227,
    "Mozilla": 153,
}


def test_table1_store_sizes(benchmark, factory, catalog):
    def build_and_size():
        # Re-build from the warm factory: measures store assembly from
        # cached certificates, not RSA key generation.
        stores = build_platform_stores(factory, catalog)
        return table1_store_sizes(stores)

    rows = benchmark(build_and_size)

    emit(
        "Table 1: Number of certificates in different root stores",
        [f"{name:<10} measured={size:>4}  paper={PAPER[name]:>4}" for name, size in rows],
    )
    assert dict(rows) == PAPER  # sizes are structural: must match exactly
