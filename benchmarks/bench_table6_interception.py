"""Table 6: the TLS-interception case study's domain lists.

Paper: exactly one proxied session (a Nexus 7 on 4.4); 12 intercepted
domains, 9 whitelisted; the proxy whitelists pinned apps (Facebook,
Twitter, Google) and the SUPL/MQTT special ports.
"""

from _util import emit

from repro.analysis.interception import detect_interception
from repro.analysis.tables import table6_interception_domains

PAPER_INTERCEPTED = [
    "gmail.com:443", "mail.google.com:443", "mail.yahoo.com:443",
    "orcart.facebook.com:443", "www.bankofamerica.com:443",
    "www.chase.com:443", "www.hsbc.com:443", "www.icsi.berkeley.edu:443",
    "www.outlook.com:443", "www.skype.com:443", "www.viber.com:443",
    "www.yahoo.com:443",
]
PAPER_WHITELISTED = [
    "google-analytics.com:443", "maps.google.com:443",
    "orcart.facebook.com:8883", "play.google.com:443",
    "supl.google.com:7275", "www.facebook.com:443",
    "www.google.co.uk:443", "www.google.com:443", "www.twitter.com:443",
]


def test_table6_interception(benchmark, dataset, classifier):
    findings = benchmark(detect_interception, dataset.sessions, classifier)
    table = table6_interception_domains(findings)

    emit(
        "Table 6: domains intercepted / whitelisted by the HTTPS proxy",
        [f"interceptor: {table.interceptor}", "intercepted:"]
        + [f"  {domain}" for domain in table.intercepted]
        + ["whitelisted:"]
        + [f"  {domain}" for domain in table.whitelisted],
    )

    assert len(findings) == 1
    assert findings[0].session.model == "Nexus 7"
    assert table.interceptor == "Reality Mine"
    assert table.intercepted == PAPER_INTERCEPTED
    assert table.whitelisted == PAPER_WHITELISTED
