"""Table 3: Notary certificates validated by each root store.

Paper (over ~1M non-expired Notary certs): Mozilla 744,069;
iOS 7 745,736; AOSP 4.1/4.2 744,350; 4.3 744,384; 4.4 744,398.
Our Notary runs at 1/50 of the paper's leaf volume; the invariants are
the *ordering* (iOS7 > AOSP 4.4 > 4.3 > 4.2 = 4.1 > Mozilla), the
4.1/4.2 tie, and the "practically equivalent" <1 % spread.
"""

from _util import emit

from repro.analysis.tables import table3_validated_counts

PAPER = {
    "Mozilla": 744_069,
    "iOS 7": 745_736,
    "AOSP 4.1": 744_350,
    "AOSP 4.2": 744_350,
    "AOSP 4.3": 744_384,
    "AOSP 4.4": 744_398,
}


def test_table3_validated_counts(benchmark, platform_stores, notary):
    rows = benchmark(table3_validated_counts, platform_stores, notary)

    emit(
        "Table 3: Number of certificates validated by each root store",
        [
            f"{name:<10} measured={count:>7,}  paper={PAPER[name]:>8,} "
            f"(coverage {count / notary.current_certificates:.1%} vs paper 74.4%)"
            for name, count in rows
        ],
    )

    counts = dict(rows)
    assert counts["iOS 7"] > counts["AOSP 4.4"]
    assert counts["AOSP 4.4"] > counts["AOSP 4.3"]
    assert counts["AOSP 4.3"] > counts["AOSP 4.2"]
    assert counts["AOSP 4.2"] == counts["AOSP 4.1"]
    assert counts["AOSP 4.1"] > counts["Mozilla"]
    spread = max(counts.values()) - min(counts.values())
    assert spread / max(counts.values()) < 0.01  # "few practical differences"
    coverage = counts["Mozilla"] / notary.current_certificates
    assert abs(coverage - 0.744) < 0.03
