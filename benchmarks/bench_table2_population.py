"""Table 2: top-5 devices and manufacturers by session count.

Paper: Galaxy SIV 2,762 / Galaxy SIII 2,108 / Nexus 4 1,331 /
Nexus 5 1,010 / Nexus 7 832; Samsung 7,709 / LG 2,908 / ASUS 1,876 /
HTC 963 / Motorola 837. The benchmark measures the Table 2 aggregation
over the full 16k-session dataset.
"""

from _util import emit

from repro.analysis.tables import table2_top_devices

PAPER_DEVICES = [
    ("SAMSUNG Galaxy SIV", 2762),
    ("SAMSUNG Galaxy SIII", 2108),
    ("LG Nexus 4", 1331),
    ("LG Nexus 5", 1010),
    ("ASUS Nexus 7", 832),
]
PAPER_MANUFACTURERS = [
    ("SAMSUNG", 7709),
    ("LG", 2908),
    ("ASUS", 1876),
    ("HTC", 963),
    ("MOTOROLA", 837),
]


def test_table2_top_devices(benchmark, dataset):
    table = benchmark(table2_top_devices, dataset)

    lines = ["Devices:"]
    for (name, count), (paper_name, paper_count) in zip(
        table.top_devices, PAPER_DEVICES
    ):
        lines.append(
            f"  {name:<24} measured={count:>6,}  paper[{paper_name}]={paper_count:,}"
        )
    lines.append("Manufacturers:")
    for (name, count), (paper_name, paper_count) in zip(
        table.top_manufacturers, PAPER_MANUFACTURERS
    ):
        lines.append(
            f"  {name:<24} measured={count:>6,}  paper[{paper_name}]={paper_count:,}"
        )
    emit("Table 2: Top 5 mobile devices and manufacturers", lines)

    # Shape: same top-5 sets and same leaders, counts within ~20%.
    assert [name for name, _ in table.top_manufacturers] == [
        name for name, _ in PAPER_MANUFACTURERS
    ]
    assert {name for name, _ in table.top_devices} == {
        name for name, _ in PAPER_DEVICES
    }
    for (name, count), (_, paper_count) in zip(table.top_devices, PAPER_DEVICES):
        assert abs(count - paper_count) / paper_count < 0.25
