#!/usr/bin/env python
"""Scenario benchmark: injected-campaign throughput + detection quality.

The scenario engine's promise is twofold: injecting abuse campaigns
must not change *how* the pipeline runs (same bytes from the batch
study at any worker count and from the live stream engine), and the
attribution pass must actually find what was injected (ground-truth
precision/recall over the malicious campaigns, with the benign
enterprise-proxy control group left unaccused).

Three measured runs happen in child processes (fresh interpreters, so
each reports honest wall-clock): a batch study at ``--workers 1``, the
same at ``--workers 4``, and a headless stream run. Each child prints
the SHA-256 of its structured JSON export plus the attribution score;
the parent gates on:

* all three export digests identical (determinism across execution
  modes and worker counts);
* precision and recall >= ``--quality-floor`` (default 0.9);
* batch sessions/s >= ``--min-sessions-per-s``.

Results land in ``BENCH_scenarios.json``. Run standalone::

    python benchmarks/bench_scenarios.py

"""

from __future__ import annotations

import argparse
import hashlib
import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SEED = "bench-scenarios"
SCENARIO_SEED = "bench-scenarios/campaigns"

DEFAULT_SCALE = 0.5
DEFAULT_NOTARY_SCALE = 0.5
DEFAULT_QUALITY_FLOOR = 0.9
DEFAULT_MIN_SESSIONS_PER_S = 50.0


def _child(args) -> int:
    """One measured run in this process; prints a JSON report line."""
    from repro.analysis.report import to_json, to_json_bytes
    from repro.scenarios import default_scenarios

    started = time.perf_counter()
    if args.mode == "stream":
        from repro.stream import StreamConfig, StreamEngine

        engine = StreamEngine(
            StreamConfig(
                seed=SEED,
                population_scale=args.scale,
                notary_scale=args.notary_scale,
                workers=args.workers,
                scenarios=default_scenarios(),
                scenario_seed=SCENARIO_SEED,
            )
        )
        while not engine.exhausted:
            engine.pump(4096)
        result = engine.result()
    else:
        from repro.analysis.study import StudyConfig, run_study

        result = run_study(
            StudyConfig(
                seed=SEED,
                population_scale=args.scale,
                notary_scale=args.notary_scale,
                workers=args.workers,
                scenarios=default_scenarios(),
                scenario_seed=SCENARIO_SEED,
            )
        )
    elapsed = time.perf_counter() - started

    export = to_json_bytes(to_json(result))
    score = to_json(result)["scenarios"]["score"]
    print(
        json.dumps(
            {
                "mode": args.mode,
                "workers": args.workers,
                "sessions": result.dataset.session_count,
                "elapsed_s": round(elapsed, 1),
                "sessions_per_s": round(
                    result.dataset.session_count / elapsed, 1
                ),
                "export_sha256": hashlib.sha256(export).hexdigest(),
                "export_bytes": len(export),
                "score": score,
            }
        )
    )
    return 0


def _run_child(args, mode: str, workers: int) -> dict:
    """One measured run in a fresh interpreter; returns its report."""
    command = [
        sys.executable, str(Path(__file__).resolve()),
        "--child", "--mode", mode,
        "--scale", str(args.scale),
        "--notary-scale", str(args.notary_scale),
        "--workers", str(workers),
    ]
    completed = subprocess.run(
        command, check=True, capture_output=True, text=True
    )
    return json.loads(completed.stdout.splitlines()[-1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE,
        help="population scale of each measured run",
    )
    parser.add_argument(
        "--notary-scale", type=float, default=DEFAULT_NOTARY_SCALE,
    )
    parser.add_argument(
        "--quality-floor", type=float, default=DEFAULT_QUALITY_FLOOR,
        help="hard gate on attribution precision AND recall",
    )
    parser.add_argument(
        "--min-sessions-per-s", type=float, default=DEFAULT_MIN_SESSIONS_PER_S,
        help="hard gate on the 1-worker batch run's session throughput",
    )
    parser.add_argument("--out", default="BENCH_scenarios.json", help="output JSON path")
    parser.add_argument("--mode", choices=("batch", "stream"), default="batch",
                        help=argparse.SUPPRESS)
    parser.add_argument("--workers", type=int, default=1, help=argparse.SUPPRESS)
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return _child(args)

    print(f"batch run (workers=1, scale={args.scale}) ...")
    batch1 = _run_child(args, "batch", 1)
    print(
        f"  {batch1['sessions']:,} sessions in {batch1['elapsed_s']}s "
        f"({batch1['sessions_per_s']}/s), export {batch1['export_sha256'][:16]}"
    )
    print("batch run (workers=4) ...")
    batch4 = _run_child(args, "batch", 4)
    print(f"  export {batch4['export_sha256'][:16]}")
    print("stream run (workers=1) ...")
    stream = _run_child(args, "stream", 1)
    print(f"  export {stream['export_sha256'][:16]}")

    digests = {batch1["export_sha256"], batch4["export_sha256"], stream["export_sha256"]}
    deterministic = len(digests) == 1
    score = batch1["score"]
    precision = score["precision"]
    recall = score["recall"]
    quality_ok = (
        precision >= args.quality_floor and recall >= args.quality_floor
    )
    fast_enough = batch1["sessions_per_s"] >= args.min_sessions_per_s

    payload = {
        "benchmark": "scenarios",
        "seed": SEED,
        "scenario_seed": SCENARIO_SEED,
        "scale": args.scale,
        "quality_floor": args.quality_floor,
        "min_sessions_per_s": args.min_sessions_per_s,
        "runs": {"batch_w1": batch1, "batch_w4": batch4, "stream": stream},
        "score": score,
        "deterministic": deterministic,
        "quality_ok": quality_ok,
        "fast_enough": fast_enough,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    failures = []
    if not deterministic:
        failures.append(
            "export digests diverge across batch-w1/batch-w4/stream: "
            + ", ".join(sorted(digests))
        )
    if not quality_ok:
        failures.append(
            f"attribution precision {precision}/recall {recall} "
            f"below the {args.quality_floor} floor"
        )
    if not fast_enough:
        failures.append(
            f"batch throughput {batch1['sessions_per_s']}/s "
            f"below the {args.min_sessions_per_s}/s floor"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
