#!/usr/bin/env python
"""Build-path benchmark: legacy serial vs. fast lane vs. warm cache.

Times the expensive half of a study run — building the Notary's
certificate universe (RSA key generation plus tens of thousands of leaf
signatures) — in three configurations:

* **legacy** — the fast lane off: CRT-free signing and unsieved prime
  generation, serial build (the pre-fast-lane engine);
* **fast** — CRT signing, the sieved prime window, memoized builder
  encodings, and the parallel plan/materialize build path, starting
  cold;
* **warm** — the same universe loaded back from the persistent
  build-artifact cache (:mod:`repro.buildcache`).

All three must produce the byte-identical set of leaf certificates; the
harness asserts this before reporting a single number. The fast cold
build also records its keygen/signing/serialization phase split.
Results land in ``BENCH_buildpath.json``. Run standalone::

    python benchmarks/bench_buildpath.py --scales 1 --workers 0

``--fail-below-cold R`` exits non-zero when the fast cold build's
speedup over legacy drops below R; ``--fail-below-warm R`` does the
same for the warm load's speedup over the fast cold build (CI uses
2.0 / 5.0 per the build-path acceptance bars).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs
from repro.buildcache import BuildCache
from repro.crypto.fastlane import fastlane_disabled
from repro.notary import build_notary
from repro.parallel import ParallelExecutor, resolve_workers
from repro.rootstore import CertificateFactory
from repro.rootstore.catalog import default_catalog
from repro.tlssim.traffic import TlsTrafficGenerator

SEED = "bench-buildpath"


def _leaf_bytes(notary) -> list[bytes]:
    """The identity-bearing bytes of a built notary, in ingest order."""
    return [leaf.certificate.encoded for leaf in notary.leaves]


def bench_scale(scale: float, workers: int, cache_dir: str) -> dict:
    """Benchmark one build scale; returns the result record."""
    catalog = default_catalog()
    cache = BuildCache(cache_dir)
    params = {"seed": SEED, "scale": scale}

    # legacy: fast lane off, fully serial (the pre-fast-lane engine).
    with fastlane_disabled():
        legacy_start = time.perf_counter()
        legacy = build_notary(CertificateFactory(seed=SEED), catalog, scale=scale)
        legacy_seconds = time.perf_counter() - legacy_start

    # fast cold: CRT + sieve + memoized builder + parallel plan build.
    # The phase runs in its own telemetry capture window so the record
    # can carry the executor fan-out and build-cache counters.
    executor = ParallelExecutor(workers=workers)
    generator = TlsTrafficGenerator(
        CertificateFactory(seed=SEED), catalog, scale=scale
    )
    with obs.capture() as (registry, _tracer):
        fast_start = time.perf_counter()
        generator.warm(executor)
        keygen_seconds = time.perf_counter() - fast_start
        signing_start = time.perf_counter()
        fast = build_notary(generator=generator, executor=executor)
        signing_seconds = time.perf_counter() - signing_start
        serialization_start = time.perf_counter()
        cache.put("buildpath-notary", params, fast)
        serialization_seconds = time.perf_counter() - serialization_start
        fast_seconds = time.perf_counter() - fast_start
    fast_counters = registry.to_dict()["counters"]

    # warm: load the persisted universe back.
    warm_start = time.perf_counter()
    warm = cache.get("buildpath-notary", params)
    warm_seconds = time.perf_counter() - warm_start

    assert warm is not None, "warm load missed the entry it just wrote"
    legacy_bytes = _leaf_bytes(legacy)
    assert _leaf_bytes(fast) == legacy_bytes, "fast build changed the universe"
    assert _leaf_bytes(warm) == legacy_bytes, "warm load changed the universe"

    cold_build_seconds = keygen_seconds + signing_seconds
    return {
        "scale": scale,
        "leaves": fast.total_certificates,
        "legacy_s": round(legacy_seconds, 3),
        "fast_s": round(fast_seconds, 3),
        "fast_phases": {
            "keygen_s": round(keygen_seconds, 3),
            "signing_s": round(signing_seconds, 3),
            "serialization_s": round(serialization_seconds, 3),
        },
        "warm_s": round(warm_seconds, 3),
        # cache serialization is excluded from the cold-build number:
        # it is the warm path's one-time investment, not build work.
        "speedup_cold": round(legacy_seconds / cold_build_seconds, 2),
        "speedup_warm": round(cold_build_seconds / warm_seconds, 2),
        "fast_counters": fast_counters,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", type=float, nargs="+", default=[1.0],
        help="notary traffic scales to benchmark (default: 1)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="workers for the fast build (0 = one per CPU)",
    )
    parser.add_argument(
        "--out", default="BENCH_buildpath.json", help="output JSON path"
    )
    parser.add_argument(
        "--build-cache", metavar="DIR", default=None,
        help="cache directory for the warm phase (default: temp dir)",
    )
    parser.add_argument(
        "--fail-below-cold", type=float, default=None, metavar="RATIO",
        help="exit 1 if any scale's fast-cold speedup over legacy is "
        "below RATIO",
    )
    parser.add_argument(
        "--fail-below-warm", type=float, default=None, metavar="RATIO",
        help="exit 1 if any scale's warm-load speedup over the fast "
        "cold build is below RATIO",
    )
    args = parser.parse_args(argv)
    workers = resolve_workers(args.workers)

    records = []
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = args.build_cache or tmp
        for scale in args.scales:
            print(f"benchmarking scale={scale} (workers={workers}) ...")
            record = bench_scale(scale, workers, cache_dir)
            records.append(record)
            print(
                f"  leaves={record['leaves']:,} "
                f"legacy={record['legacy_s']}s "
                f"fast={record['fast_s']}s (x{record['speedup_cold']}) "
                f"warm={record['warm_s']}s (x{record['speedup_warm']})"
            )

    payload = {
        "benchmark": "buildpath",
        "seed": SEED,
        "workers": workers,
        "workload": "build_notary (keygen + leaf signing + ingest)",
        "scales": records,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    failures = []
    if args.fail_below_cold is not None:
        failures += [
            f"scale {r['scale']}: fast-cold speedup {r['speedup_cold']} "
            f"< {args.fail_below_cold}"
            for r in records if r["speedup_cold"] < args.fail_below_cold
        ]
    if args.fail_below_warm is not None:
        failures += [
            f"scale {r['scale']}: warm-load speedup {r['speedup_warm']} "
            f"< {args.fail_below_warm}"
            for r in records if r["speedup_warm"] < args.fail_below_warm
        ]
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
