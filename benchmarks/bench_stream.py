#!/usr/bin/env python
"""Stream benchmark: ingest a million-session live study under an RSS
gate, with a measured snapshot-freshness bound.

The live engine's promise is that a study can *keep running*: sessions
arrive continuously, indexes update incrementally, and republished
snapshots stay fresh — without the resident set growing past what the
incremental indexes (plus the diff list the aggregation tail reads)
actually need. This benchmark proves all three claims at once, the same
way ``bench_storage.py`` does — the measured run happens inside a child
process that reports its *own* ``ru_maxrss``:

* **probes** — two small runs fit the (linear) RSS-vs-sessions line and
  project it to the target, so a regression shows up as a slope change
  even when the target run itself still fits;
* **target** — one gated run that must ingest ``--min-sessions``
  sessions (default 1,000,000), stay under ``--rss-ceiling-mb`` peak
  RSS, and republish on cadence with a p99 freshness no worse than
  ``--freshness-p99-ceiling-s`` (freshness: how long the oldest
  unpublished ingest waited for a snapshot containing it).

Results land in ``BENCH_stream.json``. Run standalone::

    python benchmarks/bench_stream.py

"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SEED = "bench-stream"

#: Population scale that clears one million sessions (~16,100/unit).
DEFAULT_SCALE = 63.0

#: Hard ceiling for the target run's peak RSS. An in-memory *batch*
#: build at this scale would hold every session, upload and leaf record
#: resident at once; the stream engine's incremental indexes must not.
DEFAULT_RSS_CEILING_MB = 4096

#: p99 bound on snapshot staleness at the default cadence.
DEFAULT_FRESHNESS_CEILING_S = 900.0


def _child(args) -> int:
    """Run one live study in this process and report our own peak RSS."""
    import resource

    from repro.stream import Republisher, StreamConfig, StreamEngine

    config = StreamConfig(
        seed=SEED,
        population_scale=args.scale,
        notary_scale=args.notary_scale,
        workers=args.workers,
        storage_dir=args.storage,
        index_sessions=False,  # a million rendered payloads is a cache, not an index
    )
    started = time.perf_counter()
    engine = StreamEngine(config)
    built = time.perf_counter()
    republisher = Republisher(engine, every_sessions=args.cadence_sessions)
    while not engine.exhausted:
        if engine.pump(4096):
            republisher.note_ingest()
            republisher.maybe_publish()
    if republisher.pending_events:
        republisher.publish()
    finished = time.perf_counter()

    ingest_seconds = finished - built
    maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(
        json.dumps(
            {
                "scale": args.scale,
                "sessions": engine.ingested_sessions,
                "leaves": engine.ingested_leaves,
                "generations": republisher.generation,
                "build_s": round(built - started, 1),
                "ingest_s": round(ingest_seconds, 1),
                "sessions_per_s": round(
                    engine.ingested_sessions / ingest_seconds, 1
                ),
                "freshness": republisher.freshness(),
                "peak_rss_mb": round(maxrss_kb / 1024, 1),
            }
        )
    )
    return 0


def _run_child(args, scale: float, cadence_sessions: int) -> dict:
    """One measured run in a fresh interpreter; returns its report."""
    command = [
        sys.executable, str(Path(__file__).resolve()),
        "--child", "--scale", str(scale),
        "--notary-scale", str(args.notary_scale),
        "--cadence-sessions", str(cadence_sessions),
        "--workers", str(args.workers),
    ]
    if args.storage:
        command += ["--storage", args.storage]
    completed = subprocess.run(
        command, check=True, capture_output=True, text=True
    )
    return json.loads(completed.stdout.splitlines()[-1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE,
        help="population scale of the gated target run",
    )
    parser.add_argument(
        "--notary-scale", type=float, default=2.0,
        help="notary traffic scale (leaf events interleaved with sessions)",
    )
    parser.add_argument(
        "--min-sessions", type=int, default=1_000_000,
        help="the target run must ingest at least this many sessions",
    )
    parser.add_argument(
        "--cadence-sessions", type=int, default=200_000,
        help="republish every N ingested sessions during the target run",
    )
    parser.add_argument(
        "--rss-ceiling-mb", type=float, default=DEFAULT_RSS_CEILING_MB,
        help="hard peak-RSS gate for the target run",
    )
    parser.add_argument(
        "--freshness-p99-ceiling-s", type=float,
        default=DEFAULT_FRESHNESS_CEILING_S,
        help="hard gate on the target run's p99 snapshot freshness",
    )
    parser.add_argument(
        "--probe-scale", type=float, default=2.0,
        help="larger of the two probe scales the RSS line is fitted through",
    )
    parser.add_argument("--workers", type=int, default=4, help="executor workers")
    parser.add_argument("--out", default="BENCH_stream.json", help="output JSON path")
    parser.add_argument("--storage", default="", help=argparse.SUPPRESS)
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return _child(args)

    half_scale = args.probe_scale / 2
    print(f"probe runs at scales {half_scale} and {args.probe_scale} ...")
    # probes republish on a proportionally scaled cadence so their
    # snapshot builds exercise the same code the target's do.
    half_probe = _run_child(
        args, half_scale, max(1, int(args.cadence_sessions * half_scale / args.scale))
    )
    probe = _run_child(
        args, args.probe_scale,
        max(1, int(args.cadence_sessions * args.probe_scale / args.scale)),
    )
    slope_mb_per_session = (
        probe["peak_rss_mb"] - half_probe["peak_rss_mb"]
    ) / (probe["sessions"] - half_probe["sessions"])
    base_mb = probe["peak_rss_mb"] - slope_mb_per_session * probe["sessions"]
    sessions_per_scale = probe["sessions"] / args.probe_scale
    projected_sessions = int(sessions_per_scale * args.scale)
    projected_mb = round(base_mb + slope_mb_per_session * projected_sessions, 1)
    print(
        f"  probes: {half_probe['peak_rss_mb']} / {probe['peak_rss_mb']} MB peak RSS "
        f"-> ~{round(slope_mb_per_session * 1024, 2)} KB/session, "
        f"~{projected_mb} MB projected at ~{projected_sessions:,} sessions"
    )

    print(
        f"target run at scale {args.scale} "
        f"(~{projected_sessions:,} sessions, cadence {args.cadence_sessions:,}) ..."
    )
    target = _run_child(args, args.scale, args.cadence_sessions)
    print(
        f"  target: {target['sessions']:,} sessions + {target['leaves']:,} leaves "
        f"in {target['ingest_s']}s ({target['sessions_per_s']}/s), "
        f"{target['generations']} generations, "
        f"{target['peak_rss_mb']} MB peak RSS, freshness {target['freshness']}"
    )

    enough_sessions = target["sessions"] >= args.min_sessions
    under_ceiling = target["peak_rss_mb"] <= args.rss_ceiling_mb
    p99 = target["freshness"].get("p99_s")
    fresh_enough = p99 is not None and p99 <= args.freshness_p99_ceiling_s

    payload = {
        "benchmark": "stream",
        "seed": SEED,
        "scale": args.scale,
        "min_sessions": args.min_sessions,
        "rss_ceiling_mb": args.rss_ceiling_mb,
        "freshness_p99_ceiling_s": args.freshness_p99_ceiling_s,
        "probes": [half_probe, probe],
        "rss_kb_per_session": round(slope_mb_per_session * 1024, 3),
        "rss_projected_mb": projected_mb,
        "target": target,
        "enough_sessions": enough_sessions,
        "under_rss_ceiling": under_ceiling,
        "under_freshness_ceiling": fresh_enough,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    failures = []
    if not enough_sessions:
        failures.append(
            f"target ingested {target['sessions']:,} sessions "
            f"< required {args.min_sessions:,}"
        )
    if not under_ceiling:
        failures.append(
            f"target peak RSS {target['peak_rss_mb']} MB "
            f"exceeds the {args.rss_ceiling_mb} MB ceiling"
        )
    if not fresh_enough:
        failures.append(
            f"target p99 freshness {p99}s exceeds "
            f"the {args.freshness_p99_ceiling_s}s bound"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
