"""Extension bench: the broken-app-validation attack matrix (§2/§3).

Reproduces the Fahl/Georgiev-style exposure table: which validation
profiles fall to which MITM attacks, on a stock AOSP 4.4 store. The
asserted shape: accept-all falls to everything, each single-bug profile
falls to exactly its bug plus the store-resident MITM, and only pinning
survives the store-resident MITM.
"""

from _util import emit

from repro.android.appsec import (
    ATTACKS,
    AppTlsStack,
    ValidationProfile,
    exposure_summary,
    run_attack_matrix,
)
from repro.crypto import DeterministicRandom, generate_keypair
from repro.tlssim import TlsServer, TlsTrafficGenerator
from repro.tlssim.pinning import PinStore
from repro.tlssim.traffic import ServerIdentity
from repro.x509 import CertificateBuilder, Name

HOST = "api.bank.example"


def _attack_servers(factory, catalog, store):
    import datetime

    traffic = TlsTrafficGenerator(factory, catalog)
    issuing = "Entrust Root CA"
    legit = traffic.server_identity(HOST, issuing)

    kp = generate_keypair(DeterministicRandom("bench-appsec-ss"))
    self_signed = (
        CertificateBuilder()
        .subject(Name.build(CN=HOST))
        .public_key(kp.public)
        .tls_server(HOST)
        .self_sign(kp.private)
    )
    wrong = traffic.server_identity("www.other.example", issuing)
    ca_profile = catalog.by_name(issuing)
    ca_kp = factory.keypair_for(issuing)
    exp_kp = generate_keypair(DeterministicRandom("bench-appsec-exp"))
    expired = (
        CertificateBuilder()
        .subject(Name.build(CN=HOST))
        .issuer(factory.subject_for(ca_profile))
        .public_key(exp_kp.public)
        .serial_number(31337)
        .validity(datetime.datetime(2010, 1, 1), datetime.datetime(2012, 1, 1))
        .tls_server(HOST)
        .sign(ca_kp.private, issuer_public_key=ca_kp.public)
    )
    mitm_kp = generate_keypair(DeterministicRandom("bench-appsec-mitm"))
    mitm_root = (
        CertificateBuilder()
        .subject(Name.build(CN="Bench MITM Root"))
        .public_key(mitm_kp.public)
        .ca(True)
        .self_sign(mitm_kp.private)
    )
    store.add(mitm_root, system=True, source="app:Freedom")
    forged = (
        CertificateBuilder()
        .subject(Name.build(CN=HOST))
        .issuer(mitm_root.subject)
        .public_key(exp_kp.public)
        .serial_number(31338)
        .tls_server(HOST)
        .sign(mitm_kp.private, issuer_public_key=mitm_kp.public)
    )
    return {
        "self_signed": TlsServer(HOST, 443, ServerIdentity((self_signed,), kp)),
        "wrong_host": TlsServer(HOST, 443, wrong),
        "expired": TlsServer(
            HOST, 443, ServerIdentity((expired, factory.root_certificate(ca_profile)), exp_kp)
        ),
        "trusted_mitm": TlsServer(HOST, 443, ServerIdentity((forged, mitm_root), exp_kp)),
    }, legit


def test_appsec_attack_matrix(benchmark, factory, catalog, platform_stores):
    store = platform_stores.aosp["4.4"].copy("bench-appsec", read_only=False)
    servers, legit = _attack_servers(factory, catalog, store)
    pins = PinStore()
    pins.pin(HOST, legit.chain[-1])
    stacks = {
        profile: AppTlsStack(profile=profile, store=store, pins=pins)
        for profile in ValidationProfile
    }

    outcomes = benchmark(run_attack_matrix, stacks, servers)
    summary = exposure_summary(outcomes)

    emit(
        "Extension: app-validation attack matrix (attacks accepted of 4)",
        [
            f"{profile.value:<20} {count}/4"
            for profile, count in sorted(summary.items(), key=lambda i: -i[1])
        ],
    )

    assert summary[ValidationProfile.ACCEPT_ALL] == 4
    assert summary[ValidationProfile.NO_HOSTNAME] == 2
    assert summary[ValidationProfile.ACCEPT_EXPIRED] == 2
    assert summary[ValidationProfile.ACCEPT_SELF_SIGNED] == 2
    assert summary[ValidationProfile.CORRECT] == 1  # falls to trusted MITM
    assert summary[ValidationProfile.PINNED] == 0  # survives everything
