#!/usr/bin/env python3
"""Quantify broken app-level TLS validation (the §2/§3 motivation).

Builds the attack matrix of Fahl et al. / Georgiev et al. — self-signed
certs, wrong-host certs, expired certs, and a store-resident MITM root —
and runs it against the six validation profiles found in real app
corpora, on a stock Android 4.4 store.

    python examples/app_validation_study.py
"""

import datetime

from repro.android.appsec import (
    ATTACKS,
    AppTlsStack,
    ValidationProfile,
    exposure_summary,
    run_attack_matrix,
)
from repro.crypto import DeterministicRandom, generate_keypair
from repro.rootstore import CertificateFactory, build_platform_stores
from repro.rootstore.catalog import default_catalog
from repro.tlssim import TlsServer, TlsTrafficGenerator
from repro.tlssim.pinning import PinStore
from repro.tlssim.traffic import ServerIdentity
from repro.x509 import CertificateBuilder, Name

HOST = "api.bank.example"


def build_attack_servers(factory, catalog, store):
    """One server per attack, each presenting that attack's chain."""
    traffic = TlsTrafficGenerator(factory, catalog)
    issuing_ca = "Entrust Root CA"
    legit = traffic.server_identity(HOST, issuing_ca)

    # self-signed cert claiming the host
    kp = generate_keypair(DeterministicRandom("appsec-selfsigned"))
    self_signed = (
        CertificateBuilder()
        .subject(Name.build(CN=HOST))
        .public_key(kp.public)
        .tls_server(HOST)
        .self_sign(kp.private)
    )

    # valid chain... for a different host
    wrong_host = traffic.server_identity("www.other.example", issuing_ca)

    # correctly chained but expired
    ca_profile = catalog.by_name(issuing_ca)
    ca_kp = factory.keypair_for(issuing_ca)
    expired_kp = generate_keypair(DeterministicRandom("appsec-expired"))
    expired = (
        CertificateBuilder()
        .subject(Name.build(CN=HOST))
        .issuer(factory.subject_for(ca_profile))
        .public_key(expired_kp.public)
        .serial_number(999)
        .validity(datetime.datetime(2010, 1, 1), datetime.datetime(2012, 1, 1))
        .tls_server(HOST)
        .sign(ca_kp.private, issuer_public_key=ca_kp.public)
    )

    # a MITM whose root sits in the device store (the §6 scenario)
    mitm_kp = generate_keypair(DeterministicRandom("appsec-mitm"))
    mitm_root = (
        CertificateBuilder()
        .subject(Name.build(CN="Injected MITM Root"))
        .public_key(mitm_kp.public)
        .ca(True)
        .self_sign(mitm_kp.private)
    )
    store.add(mitm_root, system=True, source="app:Freedom")
    mitm_leaf = (
        CertificateBuilder()
        .subject(Name.build(CN=HOST))
        .issuer(mitm_root.subject)
        .public_key(expired_kp.public)
        .serial_number(1000)
        .tls_server(HOST)
        .sign(mitm_kp.private, issuer_public_key=mitm_kp.public)
    )

    def server(chain, keypair):
        return TlsServer(HOST, 443, ServerIdentity(chain=chain, keypair=keypair))

    return {
        "self_signed": server((self_signed,), kp),
        "wrong_host": TlsServer(
            HOST, 443, ServerIdentity(chain=wrong_host.chain, keypair=wrong_host.keypair)
        ),
        "expired": server((expired, factory.root_certificate(ca_profile)), expired_kp),
        "trusted_mitm": server(
            (mitm_leaf, mitm_root), expired_kp
        ),
    }, legit


def main() -> None:
    factory = CertificateFactory(seed="appsec-study")
    catalog = default_catalog()
    stores = build_platform_stores(factory, catalog)
    store = stores.aosp["4.4"].copy("appsec-device", read_only=False)

    servers, legit = build_attack_servers(factory, catalog, store)
    pins = PinStore()
    pins.pin(HOST, legit.chain[-1])

    stacks = {
        profile: AppTlsStack(profile=profile, store=store, pins=pins)
        for profile in ValidationProfile
    }
    outcomes = run_attack_matrix(stacks, servers)

    print(f"{'validation profile':<22}" + "".join(f"{a:<16}" for a in ATTACKS))
    for profile in ValidationProfile:
        row = [o for o in outcomes if o.profile is profile]
        cells = {o.attack: "ACCEPTED" if o.connection_accepted else "rejected"
                 for o in row}
        print(
            f"{profile.value:<22}"
            + "".join(f"{cells.get(a, '-'):<16}" for a in ATTACKS)
        )

    print("\nattacks accepted per profile:")
    for profile, count in sorted(
        exposure_summary(outcomes).items(), key=lambda item: -item[1]
    ):
        print(f"  {profile.value:<20} {count}/{len(ATTACKS)}")
    print(
        "\nonly pinning survives a store-resident MITM root — the paper's "
        "§6/§8 argument."
    )


if __name__ == "__main__":
    main()
