#!/usr/bin/env python3
"""Regenerate the whole paper: every table and figure in one run.

    python examples/full_study.py [--scale 0.25] [--notary-scale 0.5]

At the default reduced scale the run takes well under a minute; with
``--scale 1 --notary-scale 1`` it reproduces the full 15,970-session /
~23k-leaf study (a couple of minutes).
"""

import argparse

from repro.analysis import StudyConfig, render_study_report, run_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=float, default=0.25, help="population scale factor"
    )
    parser.add_argument(
        "--notary-scale", type=float, default=0.5, help="Notary traffic scale factor"
    )
    parser.add_argument("--seed", default="tangled-mass", help="study seed")
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject wild-data faults into this fraction of records "
        "(corrupt DER, duplicate uploads, flaky probes); the study must "
        "still complete, with the damage quarantined",
    )
    args = parser.parse_args()

    config = StudyConfig(
        seed=args.seed,
        population_scale=args.scale,
        notary_scale=args.notary_scale,
        fault_rate=args.fault_rate,
    )
    print(
        f"running study: seed={config.seed!r} "
        f"population x{config.population_scale} notary x{config.notary_scale} "
        f"faults {config.fault_rate:.0%} ..."
    )
    result = run_study(config)
    print(render_study_report(result))


if __name__ == "__main__":
    main()
