#!/usr/bin/env python3
"""Walk through §7's TLS-interception case study step by step.

Shows a Reality Mine-style VPN app routing a Nexus 7's traffic through
an HTTPS proxy that forges chains on the fly, what Netalyzr observes
per domain, and why pinned apps escape interception.

    python examples/interception_demo.py
"""

from repro.android import DeviceSpec, FirmwareBuilder, VpnInterceptorApp
from repro.rootstore import CertificateFactory
from repro.rootstore.catalog import default_catalog
from repro.tlssim import (
    INTERCEPTED_DOMAINS,
    PROBE_TARGETS,
    WHITELISTED_DOMAINS,
    InterceptionProxy,
    TlsClient,
    TlsServer,
    TlsTrafficGenerator,
)
from repro.tlssim.pinning import PinStore


def main() -> None:
    factory = CertificateFactory(seed="interception-demo")
    catalog = default_catalog()
    firmware = FirmwareBuilder(factory, catalog)
    traffic = TlsTrafficGenerator(factory, catalog)

    # The victim: a stock Nexus 7 on Android 4.4 behind a proxied AP.
    device = firmware.provision(
        DeviceSpec("ASUS", "Nexus 7", "4.4", "WIFI"), branded=False
    )
    proxy = InterceptionProxy(
        whitelist=frozenset(e.hostport for e in WHITELISTED_DOMAINS),
        seed="demo-proxy",
    )
    app = VpnInterceptorApp(proxy=proxy)
    device.install_app(app)
    print(f"installed {app.name}; permissions requested:")
    for permission in sorted(app.permissions):
        print(f"  {permission}")
    print(f"overreaching beyond a benign VPN: {len(app.overreaching_permissions)}\n")

    # Pins as the Facebook/Twitter/Google apps deploy them.
    pins = PinStore()
    servers = {}
    for endpoint in PROBE_TARGETS:
        identity = traffic.server_identity(endpoint.host, endpoint.issuer_ca)
        servers[endpoint.hostport] = TlsServer(endpoint.host, endpoint.port, identity)
        if endpoint.pinned:
            pins.pin(endpoint.host, identity.chain[-1])

    client = TlsClient(device.store, pins=pins, proxy=device.proxy)
    print(f"{'domain':<28} {'chain root':<28} verdict")
    for endpoint in PROBE_TARGETS:
        result = client.connect(servers[endpoint.hostport])
        root = result.presented_chain[-1].subject.common_name or "?"
        if result.intercepted:
            verdict = "INTERCEPTED (untrusted root)"
        elif not result.pin_ok:
            verdict = "pin failure"
        else:
            verdict = "clean"
        print(f"{endpoint.hostport:<28} {root:<28} {verdict}")

    print(
        f"\nproxy decisions: "
        f"{sum(1 for _, _, i in proxy.decisions if i)} intercepted / "
        f"{sum(1 for _, _, i in proxy.decisions if not i)} relayed"
    )
    print(f"paper Table 6: {len(INTERCEPTED_DOMAINS)} intercepted / "
          f"{len(WHITELISTED_DOMAINS)} whitelisted")


if __name__ == "__main__":
    main()
