#!/usr/bin/env python3
"""The §5.3 / Perl-et-al. removal experiment: how small could the store be?

Uses the Notary's per-root validation counts to rank AOSP 4.4's roots
by usefulness, then shows how many roots cover 95/99/100 % of observed
TLS traffic — the quantitative basis for the paper's claim that one
"could seemingly disable these certificates with little negative
effect".

    python examples/store_minimization.py [--notary-scale 0.5]
"""

import argparse

from repro.analysis.ecdf import cumulative_coverage, knee_index
from repro.notary import build_notary, validation_counts_by_root
from repro.rootstore import CertificateFactory, build_platform_stores
from repro.rootstore.catalog import default_catalog


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--notary-scale", type=float, default=0.5)
    args = parser.parse_args()

    factory = CertificateFactory(seed="minimization")
    catalog = default_catalog()
    stores = build_platform_stores(factory, catalog)
    notary = build_notary(factory, catalog, scale=args.notary_scale)

    store = stores.aosp["4.4"]
    roots = store.certificates()
    counts = validation_counts_by_root(notary, roots)
    total_validated = sum(counts)
    useless = sum(1 for count in counts if count == 0)
    print(f"AOSP 4.4: {len(roots)} roots; {useless} validate nothing "
          f"({useless / len(roots):.0%}, paper: 23%)")

    ranked = sorted(zip(counts, roots), key=lambda pair: -pair[0])
    coverage = cumulative_coverage(counts, greedy=True)
    for threshold in (0.95, 0.99, 1.0):
        needed = knee_index(coverage, threshold)
        print(
            f"  {threshold:.0%} of validated traffic covered by the top "
            f"{needed} roots ({needed / len(roots):.0%} of the store)"
        )

    print("\ntop 10 roots by validated leaves:")
    for count, root in ranked[:10]:
        print(f"  {count:>6,}  {root.subject.common_name}")

    print("\nsample of removable roots (validate nothing):")
    for count, root in [pair for pair in ranked if pair[0] == 0][:10]:
        print(f"  {root.subject.common_name}")


if __name__ == "__main__":
    main()
