#!/usr/bin/env python3
"""Run the study and grade it against every published number.

    python examples/paper_comparison.py [--scale 0.25] [--notary-scale 0.5]

Prints a claim-by-claim verdict (paper value -> measured value) covering
Tables 1-6, Figure 2's class mix, and the headline scalars.
"""

import argparse

from repro.analysis import StudyConfig, run_study
from repro.analysis.paper import compare_study, render_claims


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--notary-scale", type=float, default=0.5)
    args = parser.parse_args()

    result = run_study(
        StudyConfig(population_scale=args.scale, notary_scale=args.notary_scale)
    )
    claims = compare_study(result)
    print(render_claims(claims))
    failed = [claim for claim in claims if not claim.holds]
    if failed:
        print("\nclaims not holding at this scale:")
        for claim in failed:
            print(f"  {claim.name}")


if __name__ == "__main__":
    main()
