#!/usr/bin/env python3
"""Regenerate Figures 1-3 as SVG files.

    python examples/render_figures.py [--scale 0.25] [--out DIR]

Writes ``figure1.svg``, ``figure2.svg`` and ``figure3.svg`` — scatter,
dot matrix and ECDF curves styled after the paper's originals.
"""

import argparse
import pathlib

from repro.analysis import StudyConfig, run_study
from repro.analysis.svg import (
    render_figure1_svg,
    render_figure2_svg,
    render_figure3_svg,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--notary-scale", type=float, default=0.5)
    parser.add_argument("--out", default=".", help="output directory")
    args = parser.parse_args()

    result = run_study(
        StudyConfig(population_scale=args.scale, notary_scale=args.notary_scale)
    )
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for name, svg in (
        ("figure1.svg", render_figure1_svg(result.figure1)),
        ("figure2.svg", render_figure2_svg(result.figure2)),
        ("figure3.svg", render_figure3_svg(result.figure3)),
    ):
        path = out / name
        path.write_text(svg)
        print(f"wrote {path} ({len(svg):,} bytes)")


if __name__ == "__main__":
    main()
