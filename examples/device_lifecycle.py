#!/usr/bin/env python3
"""A device's trust lifecycle, end to end.

Walks one handset through the paper's whole narrative: branded
provisioning (§5.1 additions) → audit → rooting and silent CA injection
(§6) → audit catches it → OTA update wipes the injected root but keeps
the user's VPN cert → final audit. Shows the audit verdicts and user
signals at every step.

    python examples/device_lifecycle.py
"""

from repro.analysis.classify import PresenceClassifier
from repro.android import DeviceSpec, FirmwareBuilder, FreedomLikeApp, OtaUpdater
from repro.android.settings import SecuritySettings
from repro.audit import Severity, StoreAuditor
from repro.notary import build_notary
from repro.rootstore import CertificateFactory, build_platform_stores
from repro.rootstore.catalog import default_catalog


def main() -> None:
    factory = CertificateFactory(seed="lifecycle")
    catalog = default_catalog()
    stores = build_platform_stores(factory, catalog)
    notary = build_notary(factory, catalog, scale=0.2)
    classifier = PresenceClassifier(stores.mozilla, stores.ios7, notary)
    firmware = FirmwareBuilder(factory, catalog)
    updater = OtaUpdater(firmware)

    def audit(device, stage):
        auditor = StoreAuditor(
            stores.aosp[device.spec.os_version],
            classifier=classifier,
            notary=notary,
        )
        report = auditor.audit(device.store)
        print(f"\n== {stage} ==")
        print(report.render(min_severity=Severity.LOW))

    # 1. Branded Samsung on 4.1 (vendor additions, §5.1).
    device = firmware.provision(
        DeviceSpec("SAMSUNG", "Galaxy SIII", "4.1", "T-MOBILE(US)"),
        branded=True,
        rooted=False,
        device_id="lifecycle-01",
    )
    settings = SecuritySettings(device)
    audit(device, "factory state (branded 4.1 firmware)")

    # 2. The user installs a VPN certificate through Settings.
    vpn_cert = factory.root_certificate(catalog.by_name("Self-Signed VPN Root 1"))
    settings.install_certificate(vpn_cert, "Office VPN")
    print("\nuser signals so far:")
    for event in settings.events:
        print(f"  [{event.kind.value}] {event.message}")

    # 3. The user roots the handset; Freedom injects its CA silently (§6).
    device.rooted = True
    crazy = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
    device.install_app(FreedomLikeApp(ca_certificate=crazy))
    silent = settings.reconcile()
    print("\nafter rooting + Freedom install:")
    for event in silent:
        print(f"  [{event.kind.value}] {event.message}")
    audit(device, "rooted, Freedom CA injected")

    # 4. OTA to 4.4: system store replaced, app CA wiped, root lost.
    result = updater.update(device, "4.4", branded=True)
    print(
        f"\nOTA {result.from_version} -> {result.to_version}: "
        f"+{result.system_roots_added} system roots, "
        f"wiped {len(result.wiped_app_certs)} app-injected root(s), "
        f"kept {len(result.preserved_user_certs)} user cert(s), "
        f"root access lost: {result.unrooted}"
    )
    audit(device, "after OTA to 4.4")


if __name__ == "__main__":
    main()
