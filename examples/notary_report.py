#!/usr/bin/env python3
"""Query the simulated ICSI Notary like its operators do.

Prints the ecosystem report (issuer concentration, chain shapes,
validity periods) plus the per-store validation counts of Table 3.

    python examples/notary_report.py [--scale 0.5]
"""

import argparse

from repro.notary import build_notary, ecosystem_report, store_validation_count
from repro.rootstore import CertificateFactory, build_platform_stores


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    factory = CertificateFactory(seed="notary-report")
    stores = build_platform_stores(factory)
    notary = build_notary(factory, scale=args.scale)

    print(ecosystem_report(notary).render())

    print("\nTable 3 (validated certificates per store):")
    for name, store in [
        ("Mozilla", stores.mozilla),
        ("iOS 7", stores.ios7),
        *((f"AOSP {v}", s) for v, s in sorted(stores.aosp.items())),
    ]:
        count = store_validation_count(notary, store)
        sessions = notary.sessions_validated_by_store(store)
        print(
            f"  {name:<10} {count:>7,} certs "
            f"({count / notary.current_certificates:.1%}); "
            f"{sessions / notary.current_sessions:.1%} of sessions"
        )


if __name__ == "__main__":
    main()
