#!/usr/bin/env python3
"""Audit a rooted handset the way §6 does.

Provisions a rooted Samsung, lets a Freedom-style app silently inject
its CA through the remounted system partition, then audits the on-disk
cacerts directory against the official AOSP store and shows the
man-in-the-middle this enables.

    python examples/rooted_device_audit.py
"""

import tempfile

from repro.android import DeviceSpec, FirmwareBuilder, FreedomLikeApp
from repro.rootstore import CacertsDirectory, CertificateFactory, diff_stores
from repro.rootstore.catalog import default_catalog
from repro.tlssim import InterceptionProxy, TlsClient, TlsServer, TlsTrafficGenerator


def main() -> None:
    factory = CertificateFactory(seed="rooted-audit")
    catalog = default_catalog()
    firmware = FirmwareBuilder(factory, catalog)

    device = firmware.provision(
        DeviceSpec("SAMSUNG", "Galaxy SIII", "4.1", "T-MOBILE(US)"),
        branded=False,
        rooted=True,
    )
    print(f"device: {device!r}")

    # Materialize the store as Android's real on-disk layout.
    with tempfile.TemporaryDirectory() as sandbox:
        cacerts = CacertsDirectory(sandbox, rooted=True)
        cacerts.populate(device.store)
        print(f"cacerts files on /system: {len(cacerts.list_files())}")

        # The Freedom-style app: root -> remount -> inject -> remount ro.
        crazy_house = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        device.install_app(FreedomLikeApp(ca_certificate=crazy_house))
        cacerts.remount_rw()
        cacerts.install(crazy_house)
        cacerts.remount_ro()
        print("Freedom app installed its CA; no user dialog was shown.")

        # The audit: reload from disk, diff against official AOSP.
        on_disk = cacerts.load_store("audited-device")
        reference = firmware.aosp.store_for(device.spec.os_version)
        diff = diff_stores(on_disk, reference)
        print(f"\naudit: {diff.summary()}")
        for certificate in diff.added:
            print(f"  suspicious root: {certificate.subject}")

    # What the injected root enables: silent interception of any domain.
    traffic = TlsTrafficGenerator(factory, catalog)
    upstream = traffic.server_identity("www.bankofamerica.com", "Entrust Root CA")
    mitm = InterceptionProxy(
        operator_name="CRAZY HOUSE", seed="crazy-house-mitm"
    )
    # The attacker reuses the injected CA's key; here we simulate by
    # trusting the proxy root the same way the app injected its CA.
    device.app_add_certificate(mitm.root_certificate, "Freedom")
    client = TlsClient(device.store, proxy=mitm)
    result = client.connect(TlsServer("www.bankofamerica.com", 443, upstream))
    print(
        f"\nMITM against www.bankofamerica.com: intercepted={result.intercepted}, "
        f"yet the client saw trusted={result.trusted}"
    )
    print("the audited-vs-official diff is the only observable signal.")


if __name__ == "__main__":
    main()
