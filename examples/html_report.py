#!/usr/bin/env python3
"""Produce the one-file HTML reproduction report.

    python examples/html_report.py [--scale 0.25] [--out report.html]

The output bundles every table, the three figures as inline SVG, and
the claim-by-claim grading against the paper.
"""

import argparse
import pathlib

from repro.analysis import StudyConfig, run_study
from repro.analysis.html import render_html_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--notary-scale", type=float, default=0.5)
    parser.add_argument("--out", default="report.html")
    args = parser.parse_args()

    result = run_study(
        StudyConfig(population_scale=args.scale, notary_scale=args.notary_scale)
    )
    path = pathlib.Path(args.out)
    path.write_text(render_html_report(result))
    print(f"wrote {path} ({path.stat().st_size:,} bytes)")


if __name__ == "__main__":
    main()
