#!/usr/bin/env python3
"""Audit a whole device fleet — §8's auditor at carrier scale.

Generates a population, audits every handset against its AOSP
reference, and prints the fleet-level picture: how many devices carry
tampered or unvetted stores, and which audit rules fire most.

    python examples/fleet_audit.py [--scale 0.1]
"""

import argparse

from repro.analysis.classify import PresenceClassifier
from repro.android.population import PopulationConfig, PopulationGenerator
from repro.audit import AuditPolicy
from repro.audit.fleet import audit_population, build_fleet_auditors
from repro.notary import build_notary
from repro.rootstore import CertificateFactory, build_platform_stores
from repro.rootstore.catalog import default_catalog


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    args = parser.parse_args()

    factory = CertificateFactory(seed="fleet-audit")
    catalog = default_catalog()
    stores = build_platform_stores(factory, catalog)
    notary = build_notary(factory, catalog, scale=0.2)
    classifier = PresenceClassifier(stores.mozilla, stores.ios7, notary)

    population = PopulationGenerator(
        PopulationConfig(seed="fleet-audit", scale=args.scale), factory, catalog
    ).generate()

    # Skip the per-root Notary scan per device (expensive at fleet
    # scale); keep the classification rules on.
    auditors = build_fleet_auditors(
        stores,
        classifier=classifier,
        policy=AuditPolicy(),
    )
    summary = audit_population(population, auditors)
    print(summary.render())
    print(
        f"\ncritical fraction: {summary.critical_fraction:.1%} of devices "
        "(the Freedom-style injections)"
    )


if __name__ == "__main__":
    main()
