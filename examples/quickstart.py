#!/usr/bin/env python3
"""Quickstart: build root stores, diff a device, validate a TLS chain.

Runs in a few seconds and touches every layer of the public API:
platform stores, firmware provisioning, store diffing, and chain
validation with the simulated TLS world.

    python examples/quickstart.py
"""

from repro.android import DeviceSpec, FirmwareBuilder
from repro.rootstore import CertificateFactory, build_platform_stores, diff_stores
from repro.rootstore.catalog import default_catalog
from repro.rootstore.diff import overlap_count
from repro.tlssim import TlsClient, TlsServer, TlsTrafficGenerator


def main() -> None:
    # One factory = one deterministic PKI universe.
    factory = CertificateFactory(seed="quickstart")
    catalog = default_catalog()

    # 1. The official platform stores (Table 1).
    stores = build_platform_stores(factory, catalog)
    print("Official root store sizes:")
    for name, size in sorted(stores.table1_sizes().items()):
        print(f"  {name:<10} {size}")
    print(
        "AOSP 4.4 roots also in Mozilla:",
        overlap_count(stores.aosp["4.4"], stores.mozilla),
        "identical /",
        overlap_count(stores.aosp["4.4"], stores.mozilla, use_equivalence=True),
        "equivalent",
    )

    # 2. Provision a vendor-branded handset and diff it against AOSP.
    firmware = FirmwareBuilder(factory, catalog)
    spec = DeviceSpec(
        manufacturer="HTC",
        model="One X",
        os_version="4.1",
        operator="AT&T(US)",
    )
    device = firmware.provision(spec, branded=True)
    diff = diff_stores(device.store, stores.aosp["4.1"])
    print(f"\n{spec.manufacturer} {spec.model} ({spec.operator}): {diff.summary()}")
    print("First five vendor additions:")
    for certificate in diff.added[:5]:
        print(f"  + {certificate.subject}")

    # 3. Validate a TLS connection against the device's store.
    traffic = TlsTrafficGenerator(factory, catalog)
    identity = traffic.server_identity("www.example.com", "VeriSign Class 3 Root")
    server = TlsServer("www.example.com", 443, identity)
    result = TlsClient(device.store).connect(server)
    print(f"\nTLS to {server.host}: trusted={result.trusted}")
    print(f"  anchor: {result.validation.anchor.subject}")


if __name__ == "__main__":
    main()
