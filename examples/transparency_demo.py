#!/usr/bin/env python3
"""Certificate Transparency vs the paper's threats (a §8 extension).

Shows how an append-only log plus a monitor provides the auditability
the paper's recommendations call for: the CRAZY HOUSE CA and a
mis-issued banking certificate are caught by the monitor, and a log
that tries to rewrite its history fails its consistency proof.

    python examples/transparency_demo.py
"""

from repro.analysis.classify import PresenceClassifier
from repro.crypto import DeterministicRandom, generate_keypair
from repro.ctlog import CertificateLog, LogMonitor, MerkleTree, verify_consistency
from repro.notary import build_notary
from repro.rootstore import CertificateFactory, build_platform_stores
from repro.rootstore.catalog import default_catalog
from repro.x509 import CertificateBuilder, Name
from repro.x509.builder import make_root_certificate


def main() -> None:
    factory = CertificateFactory(seed="ct-demo")
    catalog = default_catalog()
    stores = build_platform_stores(factory, catalog)
    notary = build_notary(factory, catalog, scale=0.2)
    classifier = PresenceClassifier(stores.mozilla, stores.ios7, notary)

    log = CertificateLog("demo-log")
    monitor = LogMonitor(log, classifier)
    monitor.watch("www.bankofamerica.com", "Entrust Root CA")

    # Ordinary issuance: vetted CAs logging their certificates.
    for profile in catalog.core[:10]:
        log.submit(factory.root_certificate(profile))
    print(f"log: {len(log)} entries; monitor alerts: {len(monitor.poll())}")

    # Threat 1: the Freedom app's CA gets logged (e.g. by a crawler that
    # saw it used on-path).
    log.submit(factory.root_certificate(catalog.by_name("CRAZY HOUSE")))
    alerts = monitor.poll()
    for alert in alerts:
        print(f"ALERT [{alert.kind}] {alert.message}")

    # Threat 2: a mis-issued certificate for a watched banking domain.
    rogue_kp = generate_keypair(DeterministicRandom("ct-demo-rogue"))
    rogue = make_root_certificate(rogue_kp, Name.build(CN="Quick Cert LLC"))
    misissued = (
        CertificateBuilder()
        .subject(Name.build(CN="www.bankofamerica.com"))
        .issuer(rogue.subject)
        .public_key(rogue_kp.public)
        .serial_number(666)
        .tls_server("www.bankofamerica.com")
        .sign(rogue_kp.private, issuer_public_key=rogue_kp.public)
    )
    log.submit(misissued)
    for alert in monitor.poll():
        print(f"ALERT [{alert.kind}] {alert.message}")

    # Threat 3: a log trying to unlog the evidence fails cryptographically.
    honest_head = log.signed_tree_head()
    rewritten = MerkleTree(
        [entry.certificate.encoded for entry in log.entries()][:-1]
        + [factory.root_certificate(catalog.core[11]).encoded]
    )
    ok = verify_consistency(
        honest_head.tree_size,
        len(rewritten),
        honest_head.root_hash,
        rewritten.root_hash(),
        rewritten.consistency_proof(honest_head.tree_size),
    )
    print(f"\nrewritten log passes consistency against the honest head: {ok}")
    print("append-only history makes the §6 evidence undeletable.")


if __name__ == "__main__":
    main()
