"""The build-path fast lane switch.

The fast lane bundles the output-identical build optimizations — CRT
signing in :mod:`repro.crypto.rsa` and the sieved prime-candidate
window in :mod:`repro.crypto.primes`. Both produce bit-for-bit the
same keys, signatures and certificates as the pre-fast-lane code; the
switch exists so benchmarks can measure the legacy baseline honestly
and tests can prove the equivalence, not because outputs differ.

This mirrors :func:`repro.crypto.cache.fastpath_disabled` (the *query*
fast path); the two switches are independent because a benchmark wants
to toggle build-time and analysis-time optimizations separately.
"""

from __future__ import annotations

from contextlib import contextmanager

_ENABLED = True


def fastlane_enabled() -> bool:
    """Whether the build-path fast lane (CRT + sieve) is active."""
    return _ENABLED


@contextmanager
def fastlane_disabled():
    """Run a block on the legacy build path (no CRT, no sieve).

    Outputs are identical either way; only the wall-clock time differs.
    Benchmarks use this to time the pre-fast-lane baseline.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous
