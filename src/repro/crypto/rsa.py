"""RSA key generation and raw operations over Python integers.

Keys serialize to/from the DER structures X.509 uses:
``RSAPublicKey ::= SEQUENCE { modulus INTEGER, publicExponent INTEGER }``
wrapped in a SubjectPublicKeyInfo by the X.509 layer. Private keys use
the PKCS#1 ``RSAPrivateKey`` SEQUENCE, carrying the CRT parameters when
the key was generated locally (a legacy three-INTEGER form without CRT
material is still read and written for backward compatibility).

Signing uses the Chinese Remainder Theorem when the private key carries
its primes: two half-size exponentiations plus a recombination, ~3-4x
faster than a full-size ``pow`` and bit-identical in output. Keys
deserialized from CRT-free material fall back to the direct form.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.asn1 import decode, encode_integer, encode_sequence
from repro.crypto.fastlane import fastlane_enabled
from repro.crypto.primes import generate_prime

#: Conventional public exponent.
DEFAULT_PUBLIC_EXPONENT = 65537

#: Default modulus size. Toy-sized on purpose: the simulation generates
#: hundreds of CA keys and signs tens of thousands of leaves; the math is
#: real RSA regardless of the parameter size.
DEFAULT_KEY_BITS = 512


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    modulus: int
    exponent: int = DEFAULT_PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.modulus.bit_length()

    @property
    def byte_length(self) -> int:
        """Modulus size in whole bytes (the RSA block size)."""
        return (self.modulus.bit_length() + 7) // 8

    def raw_verify(self, signature: int) -> int:
        """The raw RSA verification operation ``signature ** e mod n``."""
        if not 0 <= signature < self.modulus:
            raise ValueError("signature representative out of range")
        return pow(signature, self.exponent, self.modulus)

    def to_der(self) -> bytes:
        """Encode as a PKCS#1 RSAPublicKey SEQUENCE."""
        return encode_sequence(
            [encode_integer(self.modulus), encode_integer(self.exponent)]
        )

    @classmethod
    def from_der(cls, data: bytes) -> "RsaPublicKey":
        """Decode a PKCS#1 RSAPublicKey SEQUENCE."""
        seq = decode(data)
        if len(seq) != 2:
            raise ValueError("RSAPublicKey must have exactly two INTEGERs")
        modulus = seq[0].as_integer()
        exponent = seq[1].as_integer()
        if modulus <= 0 or exponent <= 0:
            raise ValueError("RSA modulus and exponent must be positive")
        return cls(modulus=modulus, exponent=exponent)


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key, optionally carrying its CRT parameters.

    The CRT fields default to zero (absent): keys restored from legacy
    serialized material sign through the direct ``m**d mod n`` path and
    produce identical signatures, just more slowly.
    """

    modulus: int
    public_exponent: int
    private_exponent: int
    #: CRT material: the primes, the reduced exponents d mod (p-1) /
    #: d mod (q-1), and q^-1 mod p. Zero means "not available".
    prime_p: int = 0
    prime_q: int = 0
    exponent_dp: int = 0
    exponent_dq: int = 0
    coefficient_qinv: int = 0

    @property
    def public_key(self) -> RsaPublicKey:
        """The matching public key."""
        return RsaPublicKey(self.modulus, self.public_exponent)

    @property
    def byte_length(self) -> int:
        """Modulus size in whole bytes (the RSA block size)."""
        return (self.modulus.bit_length() + 7) // 8

    @property
    def has_crt(self) -> bool:
        """Whether this key carries usable CRT parameters."""
        return bool(self.prime_p and self.prime_q)

    def raw_sign(self, message: int) -> int:
        """The raw RSA signature operation ``message ** d mod n``.

        Uses the CRT decomposition (two half-size exponentiations)
        whenever the key carries its primes; the result is identical to
        the direct form by the CRT isomorphism.
        """
        if not 0 <= message < self.modulus:
            raise ValueError("message representative out of range")
        if self.has_crt and fastlane_enabled():
            m1 = pow(message % self.prime_p, self.exponent_dp, self.prime_p)
            m2 = pow(message % self.prime_q, self.exponent_dq, self.prime_q)
            h = ((m1 - m2) * self.coefficient_qinv) % self.prime_p
            return m2 + h * self.prime_q
        return pow(message, self.private_exponent, self.modulus)

    def to_der(self) -> bytes:
        """Encode as a PKCS#1 RSAPrivateKey SEQUENCE.

        CRT-enriched keys emit the full RFC 8017 nine-field form
        (version 0); CRT-free keys emit the legacy three-INTEGER form
        this library has always written.
        """
        if not self.has_crt:
            return encode_sequence(
                [
                    encode_integer(self.modulus),
                    encode_integer(self.public_exponent),
                    encode_integer(self.private_exponent),
                ]
            )
        return encode_sequence(
            [
                encode_integer(0),  # version: two-prime
                encode_integer(self.modulus),
                encode_integer(self.public_exponent),
                encode_integer(self.private_exponent),
                encode_integer(self.prime_p),
                encode_integer(self.prime_q),
                encode_integer(self.exponent_dp),
                encode_integer(self.exponent_dq),
                encode_integer(self.coefficient_qinv),
            ]
        )

    @classmethod
    def from_der(cls, data: bytes) -> "RsaPrivateKey":
        """Decode a PKCS#1 RSAPrivateKey (nine-field or legacy form)."""
        seq = decode(data)
        values = [child.as_integer() for child in seq.children]
        if len(values) == 3:
            modulus, public_exponent, private_exponent = values
            key = cls(
                modulus=modulus,
                public_exponent=public_exponent,
                private_exponent=private_exponent,
            )
        elif len(values) == 9:
            version, n, e, d, p, q, dp, dq, qinv = values
            if version != 0:
                raise ValueError(
                    f"unsupported RSAPrivateKey version {version} "
                    "(only two-prime keys are supported)"
                )
            if p * q != n:
                raise ValueError("RSAPrivateKey primes do not multiply to n")
            key = cls(
                modulus=n,
                public_exponent=e,
                private_exponent=d,
                prime_p=p,
                prime_q=q,
                exponent_dp=dp,
                exponent_dq=dq,
                coefficient_qinv=qinv,
            )
        else:
            raise ValueError(
                "RSAPrivateKey must have 3 (legacy) or 9 INTEGERs, "
                f"found {len(values)}"
            )
        if key.modulus <= 0 or key.public_exponent <= 0 or key.private_exponent <= 0:
            raise ValueError("RSA key integers must be positive")
        return key


def crt_parameters(p: int, q: int, d: int) -> dict[str, int]:
    """The CRT field values for primes ``p``/``q`` and exponent ``d``."""
    return {
        "prime_p": p,
        "prime_q": q,
        "exponent_dp": d % (p - 1),
        "exponent_dq": d % (q - 1),
        "coefficient_qinv": pow(q, -1, p),
    }


@dataclass(frozen=True)
class RsaKeyPair:
    """A generated keypair, bundling both halves."""

    private: RsaPrivateKey

    @property
    def public(self) -> RsaPublicKey:
        """The public half."""
        return self.private.public_key


def generate_keypair(
    rng: random.Random,
    bits: int = DEFAULT_KEY_BITS,
    public_exponent: int = DEFAULT_PUBLIC_EXPONENT,
) -> RsaKeyPair:
    """Generate an RSA keypair with a *bits*-bit modulus.

    Primes are drawn from *rng*, making generation fully deterministic
    for a given RNG state. The private key carries its CRT parameters,
    so signatures take the fast path.
    """
    if bits < 128:
        raise ValueError("modulus below 128 bits cannot hold a DigestInfo block")
    if bits % 2:
        raise ValueError("key size must be even")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % public_exponent == 0:
            continue
        try:
            d = pow(public_exponent, -1, phi)
        except ValueError:
            continue
        return RsaKeyPair(
            private=RsaPrivateKey(
                modulus=n,
                public_exponent=public_exponent,
                private_exponent=d,
                **crt_parameters(p, q, d),
            )
        )
