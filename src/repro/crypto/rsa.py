"""RSA key generation and raw operations over Python integers.

Keys serialize to/from the DER structures X.509 uses:
``RSAPublicKey ::= SEQUENCE { modulus INTEGER, publicExponent INTEGER }``
wrapped in a SubjectPublicKeyInfo by the X.509 layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.asn1 import decode, encode_integer, encode_sequence
from repro.crypto.primes import generate_prime

#: Conventional public exponent.
DEFAULT_PUBLIC_EXPONENT = 65537

#: Default modulus size. Toy-sized on purpose: the simulation generates
#: hundreds of CA keys and signs tens of thousands of leaves; the math is
#: real RSA regardless of the parameter size.
DEFAULT_KEY_BITS = 512


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    modulus: int
    exponent: int = DEFAULT_PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.modulus.bit_length()

    @property
    def byte_length(self) -> int:
        """Modulus size in whole bytes (the RSA block size)."""
        return (self.modulus.bit_length() + 7) // 8

    def raw_verify(self, signature: int) -> int:
        """The raw RSA verification operation ``signature ** e mod n``."""
        if not 0 <= signature < self.modulus:
            raise ValueError("signature representative out of range")
        return pow(signature, self.exponent, self.modulus)

    def to_der(self) -> bytes:
        """Encode as a PKCS#1 RSAPublicKey SEQUENCE."""
        return encode_sequence(
            [encode_integer(self.modulus), encode_integer(self.exponent)]
        )

    @classmethod
    def from_der(cls, data: bytes) -> "RsaPublicKey":
        """Decode a PKCS#1 RSAPublicKey SEQUENCE."""
        seq = decode(data)
        if len(seq) != 2:
            raise ValueError("RSAPublicKey must have exactly two INTEGERs")
        modulus = seq[0].as_integer()
        exponent = seq[1].as_integer()
        if modulus <= 0 or exponent <= 0:
            raise ValueError("RSA modulus and exponent must be positive")
        return cls(modulus=modulus, exponent=exponent)


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key; keeps the CRT-free form for simplicity."""

    modulus: int
    public_exponent: int
    private_exponent: int

    @property
    def public_key(self) -> RsaPublicKey:
        """The matching public key."""
        return RsaPublicKey(self.modulus, self.public_exponent)

    @property
    def byte_length(self) -> int:
        """Modulus size in whole bytes (the RSA block size)."""
        return (self.modulus.bit_length() + 7) // 8

    def raw_sign(self, message: int) -> int:
        """The raw RSA signature operation ``message ** d mod n``."""
        if not 0 <= message < self.modulus:
            raise ValueError("message representative out of range")
        return pow(message, self.private_exponent, self.modulus)


@dataclass(frozen=True)
class RsaKeyPair:
    """A generated keypair, bundling both halves."""

    private: RsaPrivateKey

    @property
    def public(self) -> RsaPublicKey:
        """The public half."""
        return self.private.public_key


def generate_keypair(
    rng: random.Random,
    bits: int = DEFAULT_KEY_BITS,
    public_exponent: int = DEFAULT_PUBLIC_EXPONENT,
) -> RsaKeyPair:
    """Generate an RSA keypair with a *bits*-bit modulus.

    Primes are drawn from *rng*, making generation fully deterministic
    for a given RNG state.
    """
    if bits < 128:
        raise ValueError("modulus below 128 bits cannot hold a DigestInfo block")
    if bits % 2:
        raise ValueError("key size must be even")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % public_exponent == 0:
            continue
        try:
            d = pow(public_exponent, -1, phi)
        except ValueError:
            continue
        return RsaKeyPair(
            private=RsaPrivateKey(
                modulus=n, public_exponent=public_exponent, private_exponent=d
            )
        )
