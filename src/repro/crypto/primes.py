"""Primality testing and prime generation (Miller-Rabin).

Prime generation walks a 64-candidate ``+2`` wheel window from each
random starting point. On the fast lane the whole window is sieved
against a table of small primes in one pass of modular residues —
``base % p`` is computed once per sieve prime (batched through
word-sized prime products, so a handful of big-int divisions replaces
hundreds) and composite slots are struck arithmetically — before any
Miller-Rabin work runs. The sieve only ever eliminates candidates that
trial division or Miller-Rabin would also have eliminated, so the prime
returned for a given RNG state is identical with the sieve on or off
(locked by a regression test on known seeds).
"""

from __future__ import annotations

import random

from repro.crypto.fastlane import fastlane_enabled
from repro.crypto.rng import random_odd

#: Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
)

#: Deterministic Miller-Rabin witness set, sufficient for n < 3.3e24.
_DETERMINISTIC_WITNESSES: tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

#: Size of the ``+2`` wheel window generate_prime scans per random draw.
_WINDOW = 64

#: Upper bound of the window sieve's prime table. Larger bounds strike
#: more composites before Miller-Rabin ever runs; beyond a few thousand
#: the residue arithmetic costs more than the saved witness tests.
_SIEVE_BOUND = 8192


def _odd_primes_below(bound: int) -> tuple[int, ...]:
    """All odd primes below *bound* (Eratosthenes)."""
    alive = bytearray([1]) * bound
    alive[0:2] = b"\x00\x00"
    for value in range(2, int(bound**0.5) + 1):
        if alive[value]:
            alive[value * value :: value] = bytes(
                len(range(value * value, bound, value))
            )
    return tuple(i for i in range(3, bound) if alive[i])


def _residue_chunks(primes: tuple[int, ...]) -> tuple[tuple[int, tuple[int, ...]], ...]:
    """Group sieve primes into word-sized products.

    ``base % product`` costs about the same as ``base % p`` for a
    multi-hundred-bit base, so reducing once per product and then taking
    cheap machine-int residues cuts the big-int divisions ~4x.
    """
    chunks: list[tuple[int, tuple[int, ...]]] = []
    product, members = 1, []
    for prime in primes:
        if product * prime >= 1 << 62:
            chunks.append((product, tuple(members)))
            product, members = 1, []
        product *= prime
        members.append(prime)
    if members:
        chunks.append((product, tuple(members)))
    return tuple(chunks)


_SIEVE_CHUNKS = _residue_chunks(_odd_primes_below(_SIEVE_BOUND))


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; True if *n* passes for witness *a*."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def _miller_rabin(n: int, rounds: int, rng: random.Random | None) -> bool:
    """The Miller-Rabin phase of :func:`is_probable_prime` (no trial
    division); *n* must be an odd integer > 2."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < 3_317_044_064_679_887_385_961_981:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or random.Random(n & 0xFFFFFFFF)
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, a % n, d, r) for a in witnesses if a % n)


def is_probable_prime(n: int, rounds: int = 24, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    For small *n* the witness set is deterministic and the answer exact;
    for large *n* the error probability is at most ``4**-rounds``.
    """
    if n < 2:
        return False
    for prime in _SMALL_PRIMES:
        if n == prime:
            return True
        if n % prime == 0:
            return False
    return _miller_rabin(n, rounds, rng)


def _window_candidates(base: int, bits: int) -> list[int]:
    """The sieve-surviving candidates of one wheel window, in order.

    Strikes every ``base + 2k`` (k < 64, same bit length) divisible by —
    but not equal to — a sieve prime. Survivors are exactly the window
    members trial division over the sieve table cannot reject, so
    feeding them to Miller-Rabin reproduces the unsieved scan's result.
    """
    # Last k whose candidate keeps exactly *bits* bits (base has the top
    # bit set, so only forward overflow can change the length).
    limit = min(_WINDOW - 1, ((1 << bits) - 1 - base) >> 1)
    alive = bytearray([1]) * (limit + 1)
    for product, members in _SIEVE_CHUNKS:
        base_residue = base % product
        for prime in members:
            residue = base_residue % prime
            # Smallest k with residue + 2k ≡ 0 (mod prime); the inverse
            # of 2 mod an odd prime is (prime + 1) / 2.
            k = (-residue * ((prime + 1) >> 1)) % prime
            while k <= limit:
                if base + 2 * k != prime:
                    alive[k] = 0
                k += prime
    return [base + 2 * k for k in range(limit + 1) if alive[k]]


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly *bits* bits."""
    if bits < 8:
        raise ValueError("refusing to generate primes below 8 bits")
    if fastlane_enabled():
        while True:
            base = random_odd(rng, bits)
            for candidate in _window_candidates(base, bits):
                if _miller_rabin(candidate, 24, None):
                    return candidate
    while True:
        candidate = random_odd(rng, bits)
        # Cheap wheel: advance by 2 a few times before drawing fresh bits,
        # which keeps the distribution close to uniform but avoids the
        # cost of rejection-only sampling.
        for _ in range(64):
            if is_probable_prime(candidate):
                return candidate
            candidate += 2
            if candidate.bit_length() != bits:
                break
