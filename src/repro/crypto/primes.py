"""Primality testing and prime generation (Miller-Rabin)."""

from __future__ import annotations

import random

from repro.crypto.rng import random_odd

#: Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
)

#: Deterministic Miller-Rabin witness set, sufficient for n < 3.3e24.
_DETERMINISTIC_WITNESSES: tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; True if *n* passes for witness *a*."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 24, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    For small *n* the witness set is deterministic and the answer exact;
    for large *n* the error probability is at most ``4**-rounds``.
    """
    if n < 2:
        return False
    for prime in _SMALL_PRIMES:
        if n == prime:
            return True
        if n % prime == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < 3_317_044_064_679_887_385_961_981:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or random.Random(n & 0xFFFFFFFF)
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, a % n, d, r) for a in witnesses if a % n)


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly *bits* bits."""
    if bits < 8:
        raise ValueError("refusing to generate primes below 8 bits")
    while True:
        candidate = random_odd(rng, bits)
        # Cheap wheel: advance by 2 a few times before drawing fresh bits,
        # which keeps the distribution close to uniform but avoids the
        # cost of rejection-only sampling.
        for _ in range(64):
            if is_probable_prime(candidate):
                return candidate
            candidate += 2
            if candidate.bit_length() != bits:
                break
