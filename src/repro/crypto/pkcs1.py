"""PKCS#1 v1.5 signatures (EMSA-PKCS1-v1_5 encoding, sign, verify)."""

from __future__ import annotations

from functools import lru_cache

from repro.asn1 import encode_null, encode_octet_string, encode_oid, encode_sequence
from repro.asn1.objects import DIGEST_ALGORITHM_OIDS
from repro.crypto.hashes import digest
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey


class SignatureError(Exception):
    """Raised when a signature fails to verify."""


@lru_cache(maxsize=None)
def _digest_algorithm_der(hash_name: str) -> bytes:
    """The DigestInfo AlgorithmIdentifier SEQUENCE (invariant per hash)."""
    try:
        algorithm_oid = DIGEST_ALGORITHM_OIDS[hash_name]
    except KeyError:
        raise ValueError(f"unsupported hash algorithm {hash_name!r}") from None
    return encode_sequence([encode_oid(algorithm_oid), encode_null()])


def digest_info(hash_name: str, data: bytes) -> bytes:
    """Build the DER DigestInfo for *data* under *hash_name*."""
    algorithm = _digest_algorithm_der(hash_name)
    return encode_sequence([algorithm, encode_octet_string(digest(hash_name, data))])


def emsa_encode(hash_name: str, data: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of *data* into an *em_len*-byte block."""
    info = digest_info(hash_name, data)
    if em_len < len(info) + 11:
        raise ValueError(
            f"intended encoded-message length {em_len} too short for "
            f"{hash_name} DigestInfo ({len(info)} bytes)"
        )
    padding = b"\xff" * (em_len - len(info) - 3)
    return b"\x00\x01" + padding + b"\x00" + info


def sign(key: RsaPrivateKey, hash_name: str, data: bytes) -> bytes:
    """Sign *data* with RSASSA-PKCS1-v1_5, returning the signature octets."""
    em = emsa_encode(hash_name, data, key.byte_length)
    signature = key.raw_sign(int.from_bytes(em, "big"))
    return signature.to_bytes(key.byte_length, "big")


def verify(key: RsaPublicKey, hash_name: str, data: bytes, signature: bytes) -> None:
    """Verify an RSASSA-PKCS1-v1_5 signature; raise SignatureError on failure.

    Comparison is against a freshly computed encoding (the
    "reconstruct and compare" method), which sidesteps the classic
    Bleichenbacher padding-laxity bugs.
    """
    if len(signature) != key.byte_length:
        raise SignatureError(
            f"signature length {len(signature)} != modulus length {key.byte_length}"
        )
    try:
        em_int = key.raw_verify(int.from_bytes(signature, "big"))
    except ValueError as exc:
        raise SignatureError(str(exc)) from exc
    recovered = em_int.to_bytes(key.byte_length, "big")
    expected = emsa_encode(hash_name, data, key.byte_length)
    if recovered != expected:
        raise SignatureError("signature mismatch")
