"""Deterministic randomness helpers.

Every stochastic component in the library takes a ``random.Random``; this
module provides the conventions for creating and deriving them so that a
single study seed reproduces identical certificates, keys, populations
and traffic.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRandom(random.Random):
    """A ``random.Random`` seeded from a string label.

    Using labels instead of raw integers makes derived streams
    self-describing (``derive_random(rng_seed, "ca-key:VeriSign")``) and
    independent of call order.
    """

    def __init__(self, label: str):
        self.label = label
        seed = int.from_bytes(hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")
        super().__init__(seed)

    def __repr__(self) -> str:
        return f"DeterministicRandom({self.label!r})"


def derive_random(base_label: str, *parts: object) -> DeterministicRandom:
    """Derive an independent RNG stream from a base label and parts."""
    suffix = "/".join(str(part) for part in parts)
    return DeterministicRandom(f"{base_label}/{suffix}" if suffix else base_label)


def random_odd(rng: random.Random, bits: int) -> int:
    """A uniformly random odd integer with exactly *bits* bits."""
    if bits < 2:
        raise ValueError("need at least 2 bits")
    value = rng.getrandbits(bits)
    value |= (1 << (bits - 1)) | 1  # force top and bottom bits
    return value
