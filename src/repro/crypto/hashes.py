"""Hash registry over :mod:`hashlib` for the signature layer."""

from __future__ import annotations

import hashlib

#: Hash algorithms the signature layer accepts, with digest sizes.
_SUPPORTED: dict[str, int] = {
    "md5": 16,
    "sha1": 20,
    "sha256": 32,
    "sha384": 48,
    "sha512": 64,
}


def hash_names() -> tuple[str, ...]:
    """Names of supported hash algorithms."""
    return tuple(_SUPPORTED)


def digest_size(name: str) -> int:
    """Digest size in bytes for a supported hash algorithm."""
    try:
        return _SUPPORTED[name]
    except KeyError:
        raise ValueError(f"unsupported hash algorithm {name!r}") from None


def digest(name: str, data: bytes) -> bytes:
    """Compute the digest of *data* under the named algorithm."""
    if name not in _SUPPORTED:
        raise ValueError(f"unsupported hash algorithm {name!r}")
    return hashlib.new(name, data).digest()
