"""Memoized signature verification — the study engine's fast path.

The paper's validation-count queries (Tables 3-4, Figure 3) ask "does
this issuer key verify this certificate?" for the same (key, leaf)
pairs over and over: every store shares most of its roots with every
other store, and every category of Figure 3 re-walks the same leaves.
A full RSASSA-PKCS1-v1_5 verification costs a modular exponentiation
plus a DER DigestInfo construction; the answer never changes for fixed
inputs, so one dict lookup replaces all repeats.

The cache key is ``(issuer modulus, issuer exponent, SHA-256 of the
TBS bytes, signature octets)``. This is sound because the verification
outcome is a pure function of exactly those inputs: the hash algorithm
the signature commits to is itself encoded *inside* the TBS bytes, so
two certificates with equal TBS digests and signatures necessarily
declare the same algorithm.

A process-wide default cache backs :func:`repro.x509.verify.
verify_signature` (and through it the chain verifier and the Notary).
The :func:`fastpath_disabled` context manager turns both this cache and
the Notary's derived indexes off, which the benchmark harness uses to
measure the uncached baseline and the acceptance tests use to prove
reports are byte-identical with and without the fast path.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.crypto.pkcs1 import SignatureError, verify as pkcs1_verify


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one :class:`VerificationCache`.

    ``entries`` is always the *absolute* store size at snapshot time —
    it never rolls backwards, so a delta snapshot keeps it as-is for
    context. ``entries_delta`` is the growth relative to the snapshot's
    baseline: the whole store for a fresh :meth:`VerificationCache.
    stats` snapshot (its implicit baseline is the empty cache), and the
    baseline-relative growth for a :meth:`since` delta.
    """

    hits: int = 0
    misses: int = 0
    entries: int = 0
    entries_delta: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups answered (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def since(self, baseline: "CacheStats") -> "CacheStats":
        """The delta accumulated after *baseline* was snapshotted.

        ``hits``/``misses``/``entries_delta`` are deltas; ``entries``
        stays the absolute store size of the later snapshot (see the
        class docstring for the asymmetry).
        """
        return CacheStats(
            hits=self.hits - baseline.hits,
            misses=self.misses - baseline.misses,
            entries=self.entries,
            entries_delta=self.entries - baseline.entries,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the benchmark harness)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "entries_delta": self.entries_delta,
            "hit_rate": round(self.hit_rate, 4),
        }

    def publish(self, registry=None, prefix: str = "crypto.verify_cache") -> None:
        """Export this snapshot as gauges into a metrics registry.

        Part of the unified observability spine: the same numbers the
        ``--perf`` view prints become queryable ``--metrics`` gauges.
        """
        from repro.obs import default_registry

        registry = registry if registry is not None else default_registry()
        registry.gauge(f"{prefix}.hits").set(self.hits)
        registry.gauge(f"{prefix}.misses").set(self.misses)
        registry.gauge(f"{prefix}.entries").set(self.entries)
        registry.gauge(f"{prefix}.entries_delta").set(self.entries_delta)


def _raw_verify(certificate, issuer_key) -> bool:
    """Uncached PKCS#1 verification of a certificate's signature."""
    try:
        pkcs1_verify(
            issuer_key,
            certificate.signature_hash,
            certificate.tbs_encoded,
            certificate.signature,
        )
    except SignatureError:
        return False
    return True


class VerificationCache:
    """Memoizes certificate-signature verification outcomes.

    Entries are never invalidated: a verification verdict for fixed
    (key, TBS, signature) inputs cannot change. ``enabled=False`` makes
    :meth:`verify` a pass-through to the raw RSA check (no reads, no
    writes, no counter updates), so a disabled cache is indistinguishable
    from no cache at all.
    """

    __slots__ = ("enabled", "hits", "misses", "_store")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._store: dict[tuple[int, int, bytes, bytes], bool] = {}

    @staticmethod
    def key(certificate, issuer_key) -> tuple[int, int, bytes, bytes]:
        """The memoization key for one (certificate, issuer key) pair."""
        return (
            issuer_key.modulus,
            issuer_key.exponent,
            certificate.tbs_sha256,
            certificate.signature,
        )

    def verify(self, certificate, issuer_key) -> bool:
        """Whether *issuer_key* verifies *certificate*'s signature."""
        if not self.enabled:
            return _raw_verify(certificate, issuer_key)
        key = self.key(certificate, issuer_key)
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = _raw_verify(certificate, issuer_key)
        self._store[key] = result
        return result

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> CacheStats:
        """Snapshot of the current counters (baseline: the empty cache)."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            entries=len(self._store),
            entries_delta=len(self._store),
        )


#: The process-wide cache behind ``verify_signature`` and the Notary.
_DEFAULT_CACHE = VerificationCache()


def default_verification_cache() -> VerificationCache:
    """The process-wide verification cache."""
    return _DEFAULT_CACHE


def fastpath_enabled() -> bool:
    """Whether the memoization fast path is currently on.

    The Notary's derived indexes (root→leaf sets, count memos) key off
    this too, so one switch controls every memoization layer.
    """
    return _DEFAULT_CACHE.enabled


@contextmanager
def fastpath_disabled():
    """Run a block with every verification/index cache bypassed.

    Used by the benchmark harness for the uncached serial baseline and
    by tests proving fast-path results match first-principles ones.
    """
    previous = _DEFAULT_CACHE.enabled
    _DEFAULT_CACHE.enabled = False
    try:
        yield
    finally:
        _DEFAULT_CACHE.enabled = previous
