"""Pure-Python public-key substrate: primes, RSA, PKCS#1 v1.5 signatures.

The arithmetic is real RSA over Python integers; only the parameters are
toy-sized (512-bit default keys) so that generating the several hundred
CA keys a simulated study needs stays fast. All key generation is driven
by an explicit deterministic RNG so studies are exactly reproducible.
"""

from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rng import DeterministicRandom, derive_random
from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.crypto.pkcs1 import SignatureError, sign, verify
from repro.crypto.hashes import digest, hash_names
from repro.crypto.cache import (
    CacheStats,
    VerificationCache,
    default_verification_cache,
    fastpath_disabled,
    fastpath_enabled,
)

__all__ = [
    "CacheStats",
    "VerificationCache",
    "default_verification_cache",
    "fastpath_disabled",
    "fastpath_enabled",
    "DeterministicRandom",
    "derive_random",
    "generate_prime",
    "is_probable_prime",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_keypair",
    "SignatureError",
    "sign",
    "verify",
    "digest",
    "hash_names",
]
