"""Root-store auditing — §8's recommendations, made executable.

The paper recommends "an audited and more strict root store for
Android". This subpackage is that auditor: given a device (or bare
store), the platform references and a Notary, it produces a structured
audit report — unexpected roots, their provenance and risk, removable
dead weight, and policy findings (unscoped special-purpose roots,
expired anchors, rooted-store tampering).
"""

from repro.audit.auditor import (
    AuditFinding,
    AuditReport,
    Severity,
    StoreAuditor,
)
from repro.audit.policy import AuditPolicy, default_policy
from repro.audit.fleet import FleetSummary, audit_population, build_fleet_auditors

__all__ = [
    "AuditFinding",
    "AuditReport",
    "Severity",
    "StoreAuditor",
    "AuditPolicy",
    "default_policy",
    "FleetSummary",
    "audit_population",
    "build_fleet_auditors",
]
