"""Audit policy: the tunable rules the auditor enforces."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AuditPolicy:
    """Thresholds and switches for a store audit.

    The defaults encode §8's recommendations: additions must be
    cross-store vetted or Notary-visible, special-purpose roots should
    be scoped, expired anchors flagged, and dead weight reported.
    """

    #: Flag additions absent from every vetted store (Mozilla/iOS7).
    flag_unvetted_additions: bool = True
    #: Flag additions the Notary has never seen in traffic.
    flag_unseen_additions: bool = True
    #: Flag user/app-installed roots (source != system/firmware).
    flag_non_system_sources: bool = True
    #: Flag expired trust anchors (the Firmaprofesional case).
    flag_expired_anchors: bool = True
    #: Flag CA-capable roots without name constraints whose subject
    #: suggests a scoped purpose (government / operator / vendor).
    flag_unconstrained_special_purpose: bool = True
    #: Report roots validating fewer than this many Notary leaves as
    #: removable dead weight (0 = only report zero-validators).
    removable_leaf_threshold: int = 0
    #: Subject keywords suggesting a scoped-purpose root.
    special_purpose_keywords: tuple[str, ...] = (
        "fota", "supl", "government", "national", "operator", "widget",
        "dod ", "payment", "testing",
    )

    def looks_special_purpose(self, subject_text: str) -> bool:
        """Heuristic: does the subject suggest a scoped purpose?"""
        lowered = subject_text.lower()
        return any(keyword in lowered for keyword in self.special_purpose_keywords)


def default_policy() -> AuditPolicy:
    """The recommended audit policy."""
    return AuditPolicy()
