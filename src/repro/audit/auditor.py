"""The store auditor."""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass, field

from repro.audit.policy import AuditPolicy, default_policy
from repro.analysis.classify import PresenceClassifier
from repro.notary.database import NotaryDatabase
from repro.rootstore.catalog import StorePresence
from repro.rootstore.factory import STUDY_NOW
from repro.rootstore.store import RootStore
from repro.rootstore.diff import diff_stores
from repro.x509.certificate import Certificate
from repro.x509.constraints import name_constraints_of


class Severity(enum.IntEnum):
    """Finding severities, ordered."""

    INFO = 0
    LOW = 1
    MEDIUM = 2
    #: Alias for MEDIUM — the conventional name fleet dashboards use.
    WARNING = 2
    HIGH = 3
    CRITICAL = 4


@dataclass(frozen=True)
class AuditFinding:
    """One audit finding about one certificate."""

    severity: Severity
    rule: str
    certificate: Certificate
    message: str

    @property
    def subject_text(self) -> str:
        """The certificate subject, rendered."""
        return str(self.certificate.subject)


@dataclass
class AuditReport:
    """The full outcome of a store audit."""

    store_name: str
    reference_name: str
    total_roots: int
    additions: int
    missing: int
    findings: list[AuditFinding] = field(default_factory=list)
    removable: list[Certificate] = field(default_factory=list)

    @property
    def max_severity(self) -> Severity:
        """The worst severity present (INFO when clean)."""
        if not self.findings:
            return Severity.INFO
        return max(finding.severity for finding in self.findings)

    def findings_at_least(self, severity: Severity) -> list[AuditFinding]:
        """Findings at or above a severity."""
        return [f for f in self.findings if f.severity >= severity]

    def render(self, *, min_severity: Severity = Severity.INFO) -> str:
        """Human-readable report text."""
        lines = [
            f"Audit of {self.store_name!r} against {self.reference_name!r}",
            f"  roots: {self.total_roots}  additions: {self.additions}  "
            f"missing: {self.missing}",
            f"  findings: {len(self.findings)} "
            f"(max severity: {self.max_severity.name})",
        ]
        for finding in sorted(
            self.findings_at_least(min_severity),
            key=lambda f: (-f.severity, f.rule),
        ):
            lines.append(
                f"  [{finding.severity.name:<8}] {finding.rule}: {finding.message}"
            )
        if self.removable:
            lines.append(
                f"  removable dead weight: {len(self.removable)} roots validate "
                "no observed traffic"
            )
        return "\n".join(lines)


class StoreAuditor:
    """Audits device stores against a reference store and the Notary."""

    def __init__(
        self,
        reference: RootStore,
        *,
        classifier: PresenceClassifier | None = None,
        notary: NotaryDatabase | None = None,
        policy: AuditPolicy | None = None,
        at: datetime.datetime = STUDY_NOW,
    ):
        self.reference = reference
        self.classifier = classifier
        self.notary = notary
        self.policy = policy or default_policy()
        self.at = at

    def audit(self, store: RootStore) -> AuditReport:
        """Audit one store."""
        diff = diff_stores(store, self.reference)
        report = AuditReport(
            store_name=store.name,
            reference_name=self.reference.name,
            total_roots=len(store),
            additions=diff.added_count,
            missing=diff.missing_count,
        )
        for certificate in diff.added:
            self._audit_addition(store, certificate, report)
        for certificate in store.certificates(include_disabled=True):
            self._audit_anchor(certificate, report)
        if self.notary is not None:
            threshold = self.policy.removable_leaf_threshold
            for certificate in store.certificates():
                if self.notary.validated_by_root(certificate) <= threshold:
                    report.removable.append(certificate)
        if diff.missing_count:
            example = diff.missing[0]
            report.findings.append(
                AuditFinding(
                    severity=Severity.MEDIUM,
                    rule="missing-reference-roots",
                    certificate=example,
                    message=f"{diff.missing_count} reference roots absent "
                    f"(e.g. {example.subject.common_name})",
                )
            )
        return report

    # -- rules ---------------------------------------------------------------------

    def _audit_addition(
        self, store: RootStore, certificate: Certificate, report: AuditReport
    ) -> None:
        entry = store.entry_for(certificate)
        source = entry.source if entry is not None else "unknown"
        subject = certificate.subject.common_name or str(certificate.subject)

        if self.policy.flag_non_system_sources and source.startswith("app:"):
            report.findings.append(
                AuditFinding(
                    severity=Severity.CRITICAL,
                    rule="app-installed-root",
                    certificate=certificate,
                    message=f"{subject} was installed by {source[4:]} — "
                    "root-privileged store tampering (§6)",
                )
            )
            return
        if self.policy.flag_non_system_sources and source == "user":
            report.findings.append(
                AuditFinding(
                    severity=Severity.MEDIUM,
                    rule="user-installed-root",
                    certificate=certificate,
                    message=f"{subject} was installed through system settings",
                )
            )

        presence = None
        if self.classifier is not None:
            presence = self.classifier.classify(certificate).presence
        if (
            self.policy.flag_unvetted_additions
            and presence is not None
            and presence
            in (StorePresence.ANDROID_ONLY, StorePresence.NOT_RECORDED)
        ):
            severity = (
                Severity.HIGH
                if presence is StorePresence.NOT_RECORDED
                and self.policy.flag_unseen_additions
                else Severity.LOW
            )
            detail = (
                "absent from every vetted store and never observed in traffic"
                if presence is StorePresence.NOT_RECORDED
                else "absent from the Mozilla/iOS7 vetted stores"
            )
            report.findings.append(
                AuditFinding(
                    severity=severity,
                    rule="unvetted-addition",
                    certificate=certificate,
                    message=f"{subject}: {detail}",
                )
            )

        if (
            self.policy.flag_unconstrained_special_purpose
            and certificate.is_ca
            and self.policy.looks_special_purpose(str(certificate.subject))
            and name_constraints_of(certificate) is None
        ):
            report.findings.append(
                AuditFinding(
                    severity=Severity.MEDIUM,
                    rule="unconstrained-special-purpose",
                    certificate=certificate,
                    message=f"{subject} looks special-purpose but can vouch "
                    "for any domain (no name constraints)",
                )
            )

    def _audit_anchor(self, certificate: Certificate, report: AuditReport) -> None:
        if self.policy.flag_expired_anchors and certificate.is_expired(self.at):
            report.findings.append(
                AuditFinding(
                    severity=Severity.LOW,
                    rule="expired-anchor",
                    certificate=certificate,
                    message=f"{certificate.subject.common_name} expired "
                    f"{certificate.not_after:%Y-%m-%d} but is still trusted "
                    "(the Firmaprofesional case, §2)",
                )
            )
