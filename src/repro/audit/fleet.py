"""Fleet auditing: run the store auditor across a whole population.

The operational use of §8's auditor: an enterprise or carrier runs it
over every managed handset and reads the aggregate — how many devices
carry tampered stores, which rules fire most, which manufacturers ship
the most unvetted additions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.android.population import Population
from repro.audit.auditor import AuditReport, Severity, StoreAuditor


@dataclass
class FleetSummary:
    """Aggregate results of auditing a device fleet."""

    device_count: int = 0
    devices_by_max_severity: Counter = field(default_factory=Counter)
    findings_by_rule: Counter = field(default_factory=Counter)
    critical_device_ids: list[str] = field(default_factory=list)
    findings_by_manufacturer: Counter = field(default_factory=Counter)

    @property
    def critical_fraction(self) -> float:
        """Fraction of devices with at least one CRITICAL finding."""
        if not self.device_count:
            return 0.0
        return self.devices_by_max_severity[Severity.CRITICAL] / self.device_count

    def to_dict(self) -> dict:
        """The summary as plain JSON data (deterministic ordering)."""
        return {
            "device_count": self.device_count,
            "devices_by_max_severity": {
                severity.name: self.devices_by_max_severity[severity]
                for severity in sorted(Severity, reverse=True)
                if self.devices_by_max_severity.get(severity)
            },
            "findings_by_rule": {
                rule: count
                for rule, count in sorted(self.findings_by_rule.items())
            },
            "findings_by_manufacturer": {
                manufacturer: count
                for manufacturer, count in sorted(
                    self.findings_by_manufacturer.items()
                )
            },
            "critical_device_ids": sorted(self.critical_device_ids),
            "critical_fraction": self.critical_fraction,
        }

    def render(self) -> str:
        """Human-readable fleet summary."""
        lines = [
            f"Fleet audit: {self.device_count} devices",
            "  devices by worst finding:",
        ]
        for severity in sorted(Severity, reverse=True):
            count = self.devices_by_max_severity.get(severity, 0)
            if count:
                lines.append(f"    {severity.name:<8} {count:>5}")
        lines.append("  findings by rule:")
        for rule, count in self.findings_by_rule.most_common():
            lines.append(f"    {rule:<36} {count:>6}")
        if self.critical_device_ids:
            sample = ", ".join(self.critical_device_ids[:5])
            lines.append(f"  critical devices (sample): {sample}")
        return "\n".join(lines)


def audit_population(
    population: Population,
    auditors: dict[str, StoreAuditor],
) -> FleetSummary:
    """Audit every device against its version's auditor.

    ``auditors`` maps Android version to a configured
    :class:`StoreAuditor` (one per reference store).
    """
    summary = FleetSummary()
    for record in population.records:
        device = record.device
        auditor = auditors.get(device.spec.os_version)
        if auditor is None:
            continue
        report: AuditReport = auditor.audit(device.store)
        summary.device_count += 1
        summary.devices_by_max_severity[report.max_severity] += 1
        for finding in report.findings:
            summary.findings_by_rule[finding.rule] += 1
            summary.findings_by_manufacturer[device.spec.manufacturer] += 1
        if report.max_severity is Severity.CRITICAL:
            summary.critical_device_ids.append(device.device_id)
    return summary


def build_fleet_auditors(
    stores, *, classifier=None, notary=None, policy=None
) -> dict[str, StoreAuditor]:
    """One auditor per AOSP version from a PlatformStores bundle."""
    return {
        version: StoreAuditor(
            store, classifier=classifier, notary=notary, policy=policy
        )
        for version, store in stores.aosp.items()
    }
