"""Scenario specifications: the declarative side of the abuse engine.

A :class:`ScenarioSpec` declares one campaign — who the actor is, which
family of abuse it runs, and how far it penetrates the eligible device
population. Specs are plain data: loading a spec file touches no RNG and
mints no keys, so validation errors surface before any expensive work.

Four families are modeled (§5-§7 of the paper plus the
"Danger is My Middle Name" taxonomy):

=====================  ======================================================
Family                 Behaviour
=====================  ======================================================
``interception-proxy`` on-path HTTPS proxy re-signing traffic
                       (Reality Mine-style), with configurable certificate
                       regeneration and pinning-whitelist behaviour
``ca-injection``       Freedom-style root-requiring app installing the
                       campaign's CA into rooted devices' system stores
``vulnerable-app``     broken TrustManager/HostnameVerifier profiles;
                       no store or path change, just bad validation
``benign-proxy``       an enterprise egress proxy whose root *is*
                       provisioned into the device store — the
                       false-positive control group
=====================  ======================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.tlssim.trustmanager import TRUST_PROFILES

#: The scenario families the engine implements.
FAMILIES: tuple[str, ...] = (
    "interception-proxy",
    "ca-injection",
    "vulnerable-app",
    "benign-proxy",
)

#: Proxy certificate regeneration modes: one shared PKI per campaign,
#: or a fresh root per infected device (same operator branding).
REGENERATION_MODES: tuple[str, ...] = ("shared", "per-device")

#: Proxy whitelist behaviours: "pinned" whitelists the pinned probe
#: targets (the Reality Mine posture — pinning forces the proxy's
#: hand), "none" intercepts everything in scope (pin checks then fail
#: unless a vulnerable app bypasses them).
WHITELIST_MODES: tuple[str, ...] = ("pinned", "none")


class ScenarioError(ValueError):
    """A scenario spec (or spec file) is invalid."""


@dataclass(frozen=True)
class ScenarioSpec:
    """One declared abuse campaign."""

    name: str
    family: str
    #: fraction of the family's *eligible* devices the campaign infects
    #: (at least one device as long as any is eligible).
    penetration: float = 0.01
    #: proxy families: the O= branding of minted certificates.
    operator: str = ""
    #: proxy families: the relay host (cosmetic, mirrors §7's
    #: v-us-49.analyzeme.me.uk).
    proxy_host: str = ""
    #: interception-proxy only: certificate regeneration mode.
    regeneration: str = "shared"
    #: interception-proxy only: whitelist behaviour.
    whitelist: str = "pinned"
    #: ca-injection only: CN of the injected anchor (defaults derived
    #: from the campaign name).
    ca_name: str = ""
    #: vulnerable-app only: a TRUST_PROFILES key.
    profile: str = ""

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on any invalid field."""
        if not self.name:
            raise ScenarioError("scenario needs a non-empty name")
        if self.family not in FAMILIES:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown family {self.family!r} "
                f"(expected one of {', '.join(FAMILIES)})"
            )
        if not 0.0 < self.penetration <= 1.0:
            raise ScenarioError(
                f"scenario {self.name!r}: penetration must be in (0, 1], "
                f"got {self.penetration}"
            )
        if self.regeneration not in REGENERATION_MODES:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown regeneration mode "
                f"{self.regeneration!r}"
            )
        if self.whitelist not in WHITELIST_MODES:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown whitelist mode "
                f"{self.whitelist!r}"
            )
        if self.family == "vulnerable-app":
            if self.profile not in TRUST_PROFILES:
                raise ScenarioError(
                    f"scenario {self.name!r}: unknown trust profile "
                    f"{self.profile!r} (expected one of "
                    f"{', '.join(sorted(TRUST_PROFILES))})"
                )
        elif self.profile:
            raise ScenarioError(
                f"scenario {self.name!r}: 'profile' only applies to the "
                "vulnerable-app family"
            )

    @property
    def operator_name(self) -> str:
        """The actor branding minted certificates carry."""
        return self.operator or self.name

    def to_dict(self) -> dict:
        """The spec as plain JSON data (stable key set)."""
        return {
            "name": self.name,
            "family": self.family,
            "penetration": self.penetration,
            "operator": self.operator,
            "proxy_host": self.proxy_host,
            "regeneration": self.regeneration,
            "whitelist": self.whitelist,
            "ca_name": self.ca_name,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Build and validate one spec from plain JSON data."""
        if not isinstance(data, dict):
            raise ScenarioError(f"scenario entry must be an object, got {data!r}")
        unknown = set(data) - {
            "name", "family", "penetration", "operator", "proxy_host",
            "regeneration", "whitelist", "ca_name", "profile",
        }
        if unknown:
            raise ScenarioError(
                f"scenario {data.get('name', '?')!r}: "
                f"unknown field(s) {', '.join(sorted(unknown))}"
            )
        try:
            spec = cls(**data)
        except TypeError as exc:
            raise ScenarioError(f"invalid scenario entry: {exc}") from None
        spec.validate()
        return spec


def parse_specs(document: object) -> tuple[ScenarioSpec, ...]:
    """Parse a spec document: ``{"scenarios": [...]}`` or a bare list."""
    if isinstance(document, dict):
        document = document.get("scenarios")
    if not isinstance(document, list):
        raise ScenarioError(
            'spec document must be {"scenarios": [...]} or a JSON list'
        )
    specs = tuple(ScenarioSpec.from_dict(entry) for entry in document)
    names = [spec.name for spec in specs]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ScenarioError(
            f"duplicate scenario name(s): {', '.join(sorted(duplicates))}"
        )
    return specs


def load_specs(path: str) -> tuple[ScenarioSpec, ...]:
    """Load and validate a JSON spec file."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path}: not valid JSON ({exc})") from None
    return parse_specs(document)


def default_scenarios() -> tuple[ScenarioSpec, ...]:
    """The stock campaign set (all four families, five campaigns).

    The set the benchmark, the docs quick start and the CI smoke job
    share: two interception proxies (one shared-PKI with a pinning
    whitelist, one per-device regenerating with no whitelist), a
    Freedom-style CA injection, a pin-bypassing vulnerable app, and the
    benign enterprise control group.
    """
    return (
        ScenarioSpec(
            name="dataviper",
            family="interception-proxy",
            penetration=0.04,
            operator="DataViper Analytics",
            proxy_host="relay.dataviper.example",
            regeneration="shared",
            whitelist="pinned",
        ),
        ScenarioSpec(
            name="nosy-carrier",
            family="interception-proxy",
            penetration=0.02,
            operator="Nosy Carrier Inc",
            proxy_host="mitm.nosy-carrier.example",
            regeneration="per-device",
            whitelist="none",
        ),
        ScenarioSpec(
            name="liberty-shadow",
            family="ca-injection",
            penetration=0.25,
            ca_name="LIBERTY SHADOW CA",
        ),
        ScenarioSpec(
            name="weak-wallet",
            family="vulnerable-app",
            penetration=0.08,
            profile="pin-but-whitelist",
        ),
        ScenarioSpec(
            name="initech-egress",
            family="benign-proxy",
            penetration=0.02,
            operator="Initech Corporate Proxy",
            proxy_host="egress.initech.example",
        ),
    )
