"""The scenario engine: deterministic campaign injection.

:class:`ScenarioEngine` takes a tuple of validated
:class:`~repro.scenarios.spec.ScenarioSpec` and mutates a generated
population in place — installing interception proxies, injecting CAs on
rooted handsets, shipping vulnerable trust managers, provisioning the
benign enterprise control group. It never adds, removes or reorders
device records, so session ids (assigned in record order by
:func:`repro.netalyzr.collector.ingest_sessions`) are untouched and the
batch and stream collection paths see the identical population.

Everything is driven by per-campaign derived RNG streams
(``derive_random(seed, "scenario", name)``), so two applications of the
same specs to the same population are byte-identical — including the
campaign PKIs, which are minted from their own derived streams.

The engine returns a :class:`ScenarioFleet`: the ground truth
(which devices, which sessions, which root fingerprints, benign or not)
that the attribution pass is scored against.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.android.apps import FreedomLikeApp, VpnInterceptorApp, VulnerableTrustApp
from repro.android.population import Population
from repro.crypto.rng import derive_random
from repro.crypto.rsa import generate_keypair
from repro.scenarios.spec import ScenarioError, ScenarioSpec
from repro.tlssim.endpoints import PROBE_TARGETS
from repro.tlssim.proxy import InterceptionProxy
from repro.tlssim.trustmanager import TRUST_PROFILES
from repro.x509.builder import CertificateBuilder
from repro.x509.fingerprint import api_fingerprint
from repro.x509.name import Name

#: Campaign PKI validity window (the study's 2013/14 epoch, matching the
#: interception proxy's own certificates).
_NOT_BEFORE = datetime.datetime(2013, 6, 1)
_NOT_AFTER = datetime.datetime(2016, 6, 1)


def pinned_hostports() -> frozenset[str]:
    """The ``host:port`` whitelist of a pinning-aware proxy.

    A careful interceptor whitelists exactly the endpoints whose apps
    pin (§7: pinning forces the proxy's hand) — unlike the stock
    Reality Mine whitelist, which also spares special-protocol hosts.
    """
    return frozenset(e.hostport for e in PROBE_TARGETS if e.pinned)


@dataclass(frozen=True)
class CampaignTruth:
    """Ground truth of one applied campaign."""

    spec: ScenarioSpec
    #: devices the campaign touched, in population-record order.
    device_ids: tuple[str, ...]
    #: the planned session ids those devices produce (1-based, the same
    #: ids :func:`ingest_sessions` assigns in both collection modes).
    session_ids: tuple[int, ...]
    #: fingerprints of every anchor the campaign minted (proxy roots or
    #: injected CAs; empty for vulnerable-app campaigns).
    root_fingerprints: tuple[str, ...]
    #: True for the authorized enterprise control group.
    benign: bool

    def to_dict(self) -> dict:
        """The truth record as plain JSON data."""
        return {
            "name": self.spec.name,
            "family": self.spec.family,
            "benign": self.benign,
            "operator": self.spec.operator_name,
            "device_count": len(self.device_ids),
            "session_count": len(self.session_ids),
            "device_ids": list(self.device_ids),
            "session_ids": list(self.session_ids),
            "root_fingerprints": list(self.root_fingerprints),
        }


@dataclass(frozen=True)
class ScenarioFleet:
    """The applied campaign set plus its full ground truth."""

    seed: str
    campaigns: tuple[CampaignTruth, ...]

    @property
    def malicious(self) -> tuple[CampaignTruth, ...]:
        """Campaigns attribution is expected to flag."""
        return tuple(c for c in self.campaigns if not c.benign)

    @property
    def benign(self) -> tuple[CampaignTruth, ...]:
        """The authorized control group."""
        return tuple(c for c in self.campaigns if c.benign)

    def campaign_for_fingerprint(self, fingerprint: str) -> CampaignTruth | None:
        """The campaign that minted *fingerprint*, if any."""
        for campaign in self.campaigns:
            if fingerprint in campaign.root_fingerprints:
                return campaign
        return None

    def to_json(self) -> dict:
        """The fleet as plain JSON data (spec order preserved)."""
        return {
            "seed": self.seed,
            "campaigns": [campaign.to_dict() for campaign in self.campaigns],
        }


class ScenarioEngine:
    """Applies a spec set to a population, deterministically."""

    def __init__(self, specs: tuple[ScenarioSpec, ...], seed: str):
        for spec in specs:
            spec.validate()
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ScenarioError("scenario names must be unique")
        self.specs = tuple(specs)
        self.seed = seed

    # -- campaign PKI ------------------------------------------------------------

    def _mint_ca(self, spec: ScenarioSpec):
        """The campaign's injected anchor (ca-injection family)."""
        keypair = generate_keypair(
            derive_random(self.seed, "scenario", spec.name, "ca")
        )
        return (
            CertificateBuilder()
            .subject(
                Name.build(
                    CN=spec.ca_name or f"{spec.name} CA",
                    O=spec.operator_name,
                )
            )
            .public_key(keypair.public)
            .serial_number(1)
            .validity(_NOT_BEFORE, _NOT_AFTER)
            .ca(True)
            .self_sign(keypair.private)
        )

    def _make_proxy(self, spec: ScenarioSpec, device_id: str = "") -> InterceptionProxy:
        """One campaign proxy; per-device mode gets its own PKI stream."""
        seed = f"{self.seed}/{spec.name}"
        if device_id:
            seed = f"{seed}/{device_id}"
        whitelist = pinned_hostports() if spec.whitelist == "pinned" else frozenset()
        return InterceptionProxy(
            operator_name=spec.operator_name,
            proxy_host=spec.proxy_host or f"relay.{spec.name}.example",
            whitelist=whitelist,
            seed=seed,
        )

    # -- selection ---------------------------------------------------------------

    @staticmethod
    def _infect_count(spec: ScenarioSpec, eligible: int) -> int:
        if eligible == 0:
            return 0
        return min(eligible, max(1, round(spec.penetration * eligible)))

    # -- application -------------------------------------------------------------

    def apply(self, population: Population) -> ScenarioFleet:
        """Mutate *population* in place; return the ground truth.

        Campaigns are applied in spec order, each drawing from its own
        derived RNG stream. Proxy campaigns (malicious and benign) claim
        devices exclusively among themselves; ca-injection campaigns
        likewise. Vulnerable-app campaigns deliberately *overlay*
        maliciously proxied devices when any exist — a broken
        TrustManager only becomes observable when something is on path
        to exploit it.
        """
        proxy_claimed: set[str] = set()
        ca_claimed: set[str] = set()
        scenario_proxied: list = []  # devices infected by interception campaigns
        campaigns: list[CampaignTruth] = []
        picks: dict[str, list] = {}
        for spec in self.specs:
            rng = derive_random(self.seed, "scenario", spec.name)
            if spec.family in ("interception-proxy", "benign-proxy"):
                candidates = [
                    r.device
                    for r in population.records
                    if r.device.proxy is None
                    and r.device.device_id not in proxy_claimed
                ]
            elif spec.family == "ca-injection":
                candidates = [
                    r.device
                    for r in population.records
                    if r.device.rooted and r.device.device_id not in ca_claimed
                ]
            else:  # vulnerable-app
                overlay = [
                    d for d in scenario_proxied if d.trust_profile is None
                ]
                candidates = overlay or [
                    r.device
                    for r in population.records
                    if r.device.proxy is None
                    and r.device.trust_profile is None
                    and r.device.device_id not in proxy_claimed
                ]
            chosen = rng.sample(candidates, self._infect_count(spec, len(candidates)))
            # Restore record order: rng.sample permutes, and truth
            # tuples should read in population order.
            order = {r.device.device_id: i for i, r in enumerate(population.records)}
            chosen.sort(key=lambda device: order[device.device_id])
            picks[spec.name] = chosen
            fingerprints: list[str] = []
            if spec.family == "interception-proxy":
                shared = (
                    self._make_proxy(spec) if spec.regeneration == "shared" else None
                )
                for device in chosen:
                    proxy = shared if shared is not None else self._make_proxy(
                        spec, device.device_id
                    )
                    device.install_app(VpnInterceptorApp(name=spec.name, proxy=proxy))
                    proxy_claimed.add(device.device_id)
                    scenario_proxied.append(device)
                    fingerprint = api_fingerprint(proxy.root_certificate)
                    if fingerprint not in fingerprints:
                        fingerprints.append(fingerprint)
            elif spec.family == "benign-proxy":
                proxy = self._make_proxy(spec)
                for device in chosen:
                    # The authorized path: IT provisions the egress
                    # root into the device store, then routes traffic.
                    device.user_add_certificate(proxy.root_certificate)
                    device.proxy = proxy
                    proxy_claimed.add(device.device_id)
                fingerprints.append(api_fingerprint(proxy.root_certificate))
            elif spec.family == "ca-injection":
                ca = self._mint_ca(spec)
                for device in chosen:
                    device.install_app(
                        FreedomLikeApp(name=spec.name, ca_certificate=ca)
                    )
                    ca_claimed.add(device.device_id)
                fingerprints.append(api_fingerprint(ca))
            else:  # vulnerable-app
                profile = TRUST_PROFILES[spec.profile]
                for device in chosen:
                    device.install_app(
                        VulnerableTrustApp(name=spec.name, profile=profile)
                    )
            campaigns.append((spec, fingerprints))
        session_ids = _plan_session_ids(population)
        truth = [
            CampaignTruth(
                spec=spec,
                device_ids=tuple(d.device_id for d in picks[spec.name]),
                session_ids=tuple(
                    sid for d in picks[spec.name] for sid in session_ids[d.device_id]
                ),
                root_fingerprints=tuple(sorted(fingerprints)),
                benign=spec.family == "benign-proxy",
            )
            for spec, fingerprints in campaigns
        ]
        return ScenarioFleet(seed=self.seed, campaigns=tuple(truth))


def _plan_session_ids(population: Population) -> dict[str, tuple[int, ...]]:
    """device id → the session ids :func:`ingest_sessions` will assign.

    Replays the collector's id plan (record order, 1-based, one id per
    planned session) without running anything.
    """
    plan: dict[str, tuple[int, ...]] = {}
    session_id = 0
    for record in population.records:
        ids = tuple(range(session_id + 1, session_id + 1 + record.session_count))
        session_id += record.session_count
        plan[record.device.device_id] = plan.get(record.device.device_id, ()) + ids
    return plan


def apply_scenarios(
    population: Population, specs: tuple[ScenarioSpec, ...], seed: str
) -> ScenarioFleet | None:
    """Convenience wrapper both collection modes share.

    Returns None (and leaves the population untouched) when *specs* is
    empty, so callers can pass their configured tuple unconditionally.
    """
    if not specs:
        return None
    return ScenarioEngine(specs, seed).apply(population)
