"""Deterministic abuse-campaign injection (the scenario engine).

See :mod:`repro.scenarios.spec` for the declarative campaign model and
:mod:`repro.scenarios.engine` for how campaigns mutate a population.
"""

from repro.scenarios.engine import (
    CampaignTruth,
    ScenarioEngine,
    ScenarioFleet,
    apply_scenarios,
)
from repro.scenarios.spec import (
    FAMILIES,
    ScenarioError,
    ScenarioSpec,
    default_scenarios,
    load_specs,
    parse_specs,
)

__all__ = [
    "FAMILIES",
    "CampaignTruth",
    "ScenarioEngine",
    "ScenarioError",
    "ScenarioFleet",
    "ScenarioSpec",
    "apply_scenarios",
    "default_scenarios",
    "load_specs",
    "parse_specs",
]
