"""The selectors-based event-loop transport — the read-heavy fast lane.

One thread, one ``selectors`` loop, every socket non-blocking. The
threaded transport pays a thread (and its scheduling) per connection;
this one pays a dict entry. For the service's dominant workload —
small, cached, immutable JSON bodies behind ETags — that is the
difference between ~3.6k req/s and five figures:

* **Framing** is incremental and pipelined-safe: each connection owns a
  read buffer, and every complete request found in it is dispatched in
  arrival order, so a client may write N requests back-to-back and read
  N responses (HTTP/1.1 pipelining). Oversized header blocks (431),
  malformed requests (400) and chunked bodies (501) are answered and
  the connection closed, never left to poison the framing.
* **Dispatch** happens directly on the loop for GET/HEAD via
  :meth:`~repro.serve.app.ServeApp.handle_fast` — a cached body is one
  LRU hit away, no thread handoff. POST (``/admin/reload`` — a full
  study rebuild) is handed to a worker thread so a reload *never*
  stalls reads; the connection is merely blocked from parsing further
  pipelined requests until its response is ready, preserving response
  order.
* **Writes** are vectored: header block and body go out in one
  ``sendmsg`` call when the socket is writable, and only the unsent
  remainder is buffered (write interest is registered solely while a
  buffer is non-empty).
* **Idle timeouts** close connections that have neither sent nor
  received anything for ``idle_timeout`` seconds, so keep-alive can't
  leak sockets.
* **Drain**: SIGTERM/SIGINT (or :meth:`stop`) closes the listener,
  finishes every dispatched request, flushes every write buffer and
  waits (bounded) for in-flight offloaded reloads, then returns — the
  same never-truncate-a-body protocol as the threaded transport.

Saturation telemetry goes through the app's registry: loop lag (time
the loop spends processing one batch of events — the latency every
other ready socket is paying), accept burst size (how deep the accept
queue got between wakeups), live connection count and offload depth.
Shed counts come from the app's admission control, as everywhere.
"""

from __future__ import annotations

import os
import selectors
import signal
import socket
import threading
import time
from collections import deque

from repro import __version__
from repro.serve.app import Request, Response, ServeApp, _error_body
from repro.serve.transport import bind_listener

#: Connections silent for this long (seconds) are closed. The CLI's
#: keep-alive clients reconnect transparently.
IDLE_TIMEOUT_SECONDS = 60.0

#: Bound on the drain wait after a stop request (matches the threaded
#: transport's drain bound).
DRAIN_TIMEOUT_SECONDS = 10.0

#: A request's header block must fit in this many bytes.
MAX_HEADER_BYTES = 32 * 1024

#: Largest request body the loop will drain (the API takes none; this
#: only bounds abuse).
MAX_BODY_BYTES = 1 << 20

#: recv() chunk size.
RECV_SIZE = 65536

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Content Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}

_SERVER_HEADER = f"Server: repro-serve/{__version__}\r\n".encode("ascii")

#: status → precomputed status line + Server header.
_STATUS_PREFIX = {
    status: f"HTTP/1.1 {status} {reason}\r\n".encode("ascii") + _SERVER_HEADER
    for status, reason in _REASONS.items()
}


class BadRequest(Exception):
    """A request the framing layer rejects (the connection then closes)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def parse_request(buffer) -> tuple[Request, bool, int] | None:
    """Parse one HTTP/1.x request off the front of *buffer*.

    Returns ``(request, keep_alive, bytes_consumed)`` when a complete
    request (headers + declared body) is present, ``None`` when more
    bytes are needed, and raises :class:`BadRequest` for requests that
    can never become valid. The body, if any, is consumed and
    discarded — no route takes one.
    """
    head_end = buffer.find(b"\r\n\r\n")
    if head_end < 0:
        if len(buffer) > MAX_HEADER_BYTES:
            raise BadRequest(431, "request header block too large")
        return None
    if head_end > MAX_HEADER_BYTES:
        raise BadRequest(431, "request header block too large")
    head = bytes(buffer[:head_end]).decode("latin-1")
    lines = head.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise BadRequest(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise BadRequest(505, f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if not sep or not name or name != name.strip() or name.rstrip() != name:
            raise BadRequest(400, f"malformed header line {line!r}")
        headers[name.lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise BadRequest(501, "transfer-encoding bodies are not supported")
    try:
        length = int(headers.get("content-length") or 0)
    except ValueError:
        raise BadRequest(400, "malformed content-length")
    if length < 0:
        raise BadRequest(400, "negative content-length")
    if length > MAX_BODY_BYTES:
        raise BadRequest(413, "request body too large")
    consumed = head_end + 4 + length
    if len(buffer) < consumed:
        return None
    path, _, query = target.partition("?")
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        keep_alive = connection != "close"
    else:
        keep_alive = connection == "keep-alive"
    request = Request(method=method, path=path, headers=headers, query=query)
    return request, keep_alive, consumed


def encode_response_head(
    response: Response, *, body_length: int, keep_alive: bool
) -> bytes:
    """The status line + header block (through the blank line) as bytes."""
    prefix = _STATUS_PREFIX.get(response.status)
    if prefix is None:
        prefix = (
            f"HTTP/1.1 {response.status} Unknown\r\n".encode("ascii")
            + _SERVER_HEADER
        )
    parts = [
        prefix,
        b"Content-Type: ",
        response.content_type.encode("latin-1"),
        b"\r\nContent-Length: ",
        str(body_length).encode("ascii"),
        b"\r\n",
    ]
    for name, value in response.headers:
        parts.append(f"{name}: {value}\r\n".encode("latin-1"))
    parts.append(
        b"Connection: keep-alive\r\n\r\n" if keep_alive else b"Connection: close\r\n\r\n"
    )
    return b"".join(parts)


class _Connection:
    """Per-socket state: buffers, liveness, and framing position."""

    __slots__ = (
        "sock",
        "rbuf",
        "wbuf",
        "last_activity",
        "close_after_flush",
        "blocked",
        "closed",
        "want_write",
    )

    def __init__(self, sock: socket.socket, now: float):
        self.sock = sock
        self.rbuf = bytearray()
        self.wbuf = bytearray()
        self.last_activity = now
        #: flush the write buffer, then close (Connection: close, errors).
        self.close_after_flush = False
        #: a request from this connection is off-loop (reload in a
        #: worker thread); no further pipelined parsing until it answers.
        self.blocked = False
        self.closed = False
        self.want_write = False


class EventLoopServer:
    """Single-threaded non-blocking HTTP server over one ServeApp."""

    def __init__(
        self,
        app: ServeApp,
        host: str = "127.0.0.1",
        port: int = 0,
        sock: socket.socket | None = None,
        *,
        idle_timeout: float = IDLE_TIMEOUT_SECONDS,
    ):
        self.app = app
        self.idle_timeout = idle_timeout
        self._listener = sock if sock is not None else bind_listener(host, port)
        self._listener.setblocking(False)
        self._conns: dict[int, _Connection] = {}
        self._completed: deque = deque()
        self._completed_lock = threading.Lock()
        self._offloads = 0
        self._stop_requested = False
        self._thread: threading.Thread | None = None
        self._wakeup_r, self._wakeup_w = os.pipe()
        os.set_blocking(self._wakeup_r, False)
        os.set_blocking(self._wakeup_w, False)
        self._pipe_open = True

    # -- lifecycle ---------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def start(self) -> "EventLoopServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._serve_loop, name="repro-evloop", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Request a drain and join the serving thread.

        Safe on a never-started server: the loop owns FD teardown only
        once it runs, so here we release the listener and wakeup pipe
        ourselves when no serve thread ever existed.
        """
        self._stop_requested = True
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=DRAIN_TIMEOUT_SECONDS + 5.0)
            self._thread = None
        elif self._pipe_open:
            self._pipe_open = False
            self._listener.close()
            os.close(self._wakeup_r)
            os.close(self._wakeup_w)

    def run_forever(self) -> int:
        """Serve on the calling thread until SIGTERM/SIGINT; drain; 0."""

        def request_stop(signum: int, frame: object) -> None:
            self._stop_requested = True
            self._wake()

        previous = {
            sig: signal.signal(sig, request_stop)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            self._serve_loop()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        return 0

    def _wake(self) -> None:
        if not self._pipe_open:
            return
        try:
            os.write(self._wakeup_w, b"\x00")
        except (BlockingIOError, OSError):
            pass

    # -- the loop ----------------------------------------------------------------

    def _serve_loop(self) -> None:
        registry = self.app.registry
        lag = registry.histogram("serve.loop.lag_seconds")
        selector = selectors.DefaultSelector()
        selector.register(self._listener, selectors.EVENT_READ, None)
        selector.register(self._wakeup_r, selectors.EVENT_READ, "wakeup")
        self._selector = selector
        listener_open = True
        sweep_step = min(1.0, max(0.05, self.idle_timeout / 4.0))
        next_sweep = time.monotonic() + sweep_step
        drain_deadline: float | None = None
        try:
            while True:
                timeout = 0.05 if self._stop_requested else min(
                    1.0, max(0.01, next_sweep - time.monotonic())
                )
                events = selector.select(timeout)
                woke = time.perf_counter()
                for key, _mask in events:
                    if key.data is None:
                        self._accept_burst(selector, registry)
                    elif key.data == "wakeup":
                        self._drain_wakeups(selector)
                    else:
                        self._service_connection(selector, key.data, _mask)
                if events:
                    registry.counter("serve.loop.wakeups").inc()
                    lag.observe(time.perf_counter() - woke)
                now = time.monotonic()
                if self._stop_requested:
                    if listener_open:
                        selector.unregister(self._listener)
                        self._listener.close()
                        listener_open = False
                        drain_deadline = now + DRAIN_TIMEOUT_SECONDS
                    self._drain_step(selector)
                    if (not self._conns and self._offloads == 0) or (
                        drain_deadline is not None and now >= drain_deadline
                    ):
                        break
                elif now >= next_sweep:
                    self._sweep_idle(selector, now)
                    next_sweep = now + sweep_step
                    registry.gauge("serve.loop.connections").set(len(self._conns))
        finally:
            for conn in list(self._conns.values()):
                self._close(selector, conn)
            if listener_open:
                selector.unregister(self._listener)
                self._listener.close()
            selector.unregister(self._wakeup_r)
            selector.close()
            self._pipe_open = False
            os.close(self._wakeup_r)
            os.close(self._wakeup_w)

    def _accept_burst(self, selector, registry) -> None:
        """Accept everything queued; the burst size proxies queue depth."""
        burst = 0
        now = time.monotonic()
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                break
            burst += 1
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Connection(sock, now)
            self._conns[sock.fileno()] = conn
            selector.register(sock, selectors.EVENT_READ, conn)
        if burst:
            registry.counter("serve.loop.accepts").inc(burst)
            gauge = registry.gauge("serve.loop.accept_burst")
            if burst > gauge.value:
                gauge.set(burst)

    def _service_connection(self, selector, conn: _Connection, mask: int) -> None:
        if conn.closed:
            return
        if mask & selectors.EVENT_WRITE:
            self._flush(selector, conn)
        if conn.closed or not (mask & selectors.EVENT_READ):
            return
        try:
            chunk = conn.sock.recv(RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close(selector, conn)
            return
        if not chunk:
            self._close(selector, conn)
            return
        conn.last_activity = time.monotonic()
        conn.rbuf += chunk
        self._process_buffer(selector, conn)

    def _process_buffer(self, selector, conn: _Connection) -> None:
        """Dispatch every complete request buffered on *conn*, in order."""
        while not conn.blocked and not conn.closed and not conn.close_after_flush:
            try:
                parsed = parse_request(conn.rbuf)
            except BadRequest as error:
                self.app.registry.counter("serve.loop.bad_requests").inc()
                response = Response(
                    error.status, _error_body(error.status, error.message)
                )
                conn.rbuf.clear()
                self._queue_response(
                    selector, conn, "GET", response, keep_alive=False
                )
                return
            if parsed is None:
                return
            request, keep_alive, consumed = parsed
            del conn.rbuf[:consumed]
            if request.method in ("GET", "HEAD"):
                response = self.app.handle_fast(request)
                self._queue_response(
                    selector, conn, request.method, response, keep_alive
                )
            else:
                self._offload(conn, request, keep_alive)

    # -- off-loop requests (POST /admin/reload) ----------------------------------

    def _offload(self, conn: _Connection, request: Request, keep_alive: bool) -> None:
        """Run a mutating request on a worker thread; the loop keeps reading.

        The owning connection stops parsing further pipelined requests
        until the response lands (response order), but every *other*
        connection is served meanwhile — a reload rebuilds a whole
        study and must never stall reads.
        """
        conn.blocked = True
        self._offloads += 1
        self.app.registry.counter("serve.loop.offloads").inc()

        def work() -> None:
            try:
                response = self.app.handle(request)
            except Exception:  # never kill the loop's bookkeeping silently
                response = Response(500, _error_body(500, "internal error"))
                self.app.registry.counter("serve.loop.offload_errors").inc()
            with self._completed_lock:
                self._completed.append((conn, request, response, keep_alive))
            self._wake()

        threading.Thread(target=work, name="evloop-offload", daemon=True).start()

    def _drain_wakeups(self, selector) -> None:
        try:
            while os.read(self._wakeup_r, 4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        while True:
            with self._completed_lock:
                if not self._completed:
                    break
                conn, request, response, keep_alive = self._completed.popleft()
            self._offloads -= 1
            if conn.closed:
                continue
            conn.blocked = False
            self._queue_response(selector, conn, request.method, response, keep_alive)
            if not conn.closed:
                self._process_buffer(selector, conn)

    # -- writing -----------------------------------------------------------------

    def _queue_response(
        self,
        selector,
        conn: _Connection,
        method: str,
        response: Response,
        keep_alive: bool,
    ) -> None:
        body = response.body
        head = encode_response_head(
            response, body_length=len(body), keep_alive=keep_alive
        )
        if method == "HEAD" or response.status == 304:
            body = b""
        if not keep_alive:
            conn.close_after_flush = True
        if conn.wbuf:
            conn.wbuf += head
            conn.wbuf += body
            return
        total = len(head) + len(body)
        try:
            if body:
                sent = conn.sock.sendmsg((head, body))
            else:
                sent = conn.sock.send(head)
        except (BlockingIOError, InterruptedError):
            sent = 0
        except OSError:
            self._close(selector, conn)
            return
        if sent < total:
            remainder = head + body if sent == 0 else (head + body)[sent:]
            conn.wbuf += remainder
            self._set_write_interest(selector, conn, True)
        elif conn.close_after_flush:
            self._close(selector, conn)

    def _flush(self, selector, conn: _Connection) -> None:
        while conn.wbuf:
            try:
                sent = conn.sock.send(conn.wbuf)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._close(selector, conn)
                return
            if sent == 0:
                return
            del conn.wbuf[:sent]
            conn.last_activity = time.monotonic()
        self._set_write_interest(selector, conn, False)
        if conn.close_after_flush:
            self._close(selector, conn)

    def _set_write_interest(self, selector, conn: _Connection, want: bool) -> None:
        if conn.want_write == want or conn.closed:
            return
        conn.want_write = want
        events = selectors.EVENT_READ | (selectors.EVENT_WRITE if want else 0)
        selector.modify(conn.sock, events, conn)

    # -- teardown ----------------------------------------------------------------

    def _close(self, selector, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._conns.pop(conn.sock.fileno(), None)
        try:
            selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _sweep_idle(self, selector, now: float) -> None:
        cutoff = now - self.idle_timeout
        stale = [
            conn
            for conn in self._conns.values()
            if conn.last_activity < cutoff and not conn.blocked
        ]
        for conn in stale:
            self._close(selector, conn)
        if stale:
            self.app.registry.counter("serve.loop.idle_closed").inc(len(stale))

    def _drain_step(self, selector) -> None:
        """One drain pass: close every connection with nothing left to say.

        A connection survives the pass only while it still owes bytes
        (non-empty write buffer) or has a request off-loop; anything
        else — including half-parsed pipelined input that will never
        complete because the listener is gone — closes now.
        """
        for conn in list(self._conns.values()):
            if not conn.wbuf and not conn.blocked:
                self._close(selector, conn)
