"""Transport registry and listener plumbing for the serve layer.

PR 5 hard-wired :class:`~repro.serve.server.StudyServer` (one thread
per connection) as *the* server. This module makes the transport a
named, swappable choice behind one constructor shape so the CLI, the
supervisor and the benchmark all build servers the same way::

    server = create_server("evloop", app, host=..., port=...)

Every transport exposes the same lifecycle: ``host``/``port``
properties, ``start()``/``stop()`` for background serving (tests and
the benchmark), and ``run_forever()`` — serve on the calling thread
until SIGTERM/SIGINT, drain in-flight work, return an exit code.

The listener helpers also live here because multi-process serving is
a *binding* question: :func:`bind_listener` can bind with
``SO_REUSEPORT`` (several processes each own a listening socket on the
same address; the kernel load-balances new connections across them) and
raises :class:`ReusePortUnavailable` where the platform lacks the
option, which is the supervisor's cue to fall back to one shared
inherited listener.
"""

from __future__ import annotations

import socket
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.serve.app import ServeApp

#: Listen backlog for every transport: deep enough that a multi-client
#: burst queues in the kernel instead of getting connection-refused.
LISTEN_BACKLOG = 512

#: Whether this platform exposes SO_REUSEPORT at all (Linux >= 3.9 and
#: the BSDs do; the constant is missing elsewhere).
SO_REUSEPORT_AVAILABLE = hasattr(socket, "SO_REUSEPORT")


class ReusePortUnavailable(OSError):
    """Raised when a SO_REUSEPORT bind is requested but unsupported."""


def bind_listener(
    host: str, port: int, *, reuse_port: bool = False
) -> socket.socket:
    """Create, bind and activate one TCP listening socket.

    With ``reuse_port`` the socket is bound with ``SO_REUSEPORT`` so
    other sockets (in other processes) can bind the same address and
    share the accept load. Raises :class:`ReusePortUnavailable` if the
    platform has no such option or the kernel rejects it.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            if not SO_REUSEPORT_AVAILABLE:
                raise ReusePortUnavailable("socket.SO_REUSEPORT not defined")
            try:
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            except OSError as error:
                raise ReusePortUnavailable(str(error)) from error
        listener.bind((host, port))
        listener.listen(LISTEN_BACKLOG)
    except BaseException:
        listener.close()
        raise
    return listener


def transports() -> dict[str, Callable]:
    """name → server class, imported lazily to dodge module cycles."""
    from repro.serve.eventloop import EventLoopServer
    from repro.serve.server import StudyServer

    return {"threaded": StudyServer, "evloop": EventLoopServer}


#: The transport names the CLI accepts.
TRANSPORT_NAMES: tuple[str, ...] = ("threaded", "evloop")


def create_server(
    transport: str,
    app: "ServeApp",
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    sock: socket.socket | None = None,
):
    """Instantiate the named transport over *app*.

    ``sock`` hands the server an already-bound, already-listening
    socket (the supervisor's inherited-listener fallback); otherwise
    the transport binds ``host:port`` itself.
    """
    registry = transports()
    try:
        factory = registry[transport]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ValueError(f"unknown transport {transport!r} (known: {known})")
    return factory(app, host=host, port=port, sock=sock)
