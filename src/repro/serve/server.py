"""The stdlib HTTP shim and the ``repro serve`` entry point.

:class:`StudyServer` glues a :class:`~repro.serve.app.ServeApp` onto a
``ThreadingHTTPServer`` (one thread per connection, daemonized so a
dying server never wedges the process). All routing, caching and
backpressure live in the transport-free app; this module only moves
bytes and handles lifecycle:

* ``start()`` serves on a background thread (tests and the benchmark
  bind port 0 and read the assigned port back);
* ``run_forever()`` serves on the calling thread and installs
  SIGTERM/SIGINT handlers that *drain gracefully* — stop accepting,
  finish in-flight requests, then return — so an orchestrator's stop
  signal never truncates a response mid-body.

``run_server`` is the CLI's ``repro serve``: it runs the study (warm
from the persistent build cache when one is configured), snapshots it,
and serves until signalled — through whichever transport
``--transport`` named (see :mod:`repro.serve.transport`) and, with
``--processes N > 1``, behind the forking
:class:`~repro.serve.supervisor.Supervisor`.
"""

from __future__ import annotations

import signal
import socket
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import __version__, obs
from repro.serve.app import Request, ServeApp

#: How long ``run_forever`` waits for in-flight requests after a signal.
DRAIN_TIMEOUT_SECONDS = 10.0


class _AppRequestHandler(BaseHTTPRequestHandler):
    """Translates HTTP requests to ``ServeApp.handle`` calls."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    # Headers and body go out as two writes; without TCP_NODELAY, Nagle
    # plus delayed ACK stalls every keep-alive response ~40ms.
    disable_nagle_algorithm = True

    #: set per server class in StudyServer (class attribute injection).
    app: ServeApp = None  # type: ignore[assignment]

    def _dispatch(self, method: str) -> None:
        headers = {key.lower(): value for key, value in self.headers.items()}
        # Any request body is drained so keep-alive framing stays intact
        # (the API itself takes no bodies).
        length = int(headers.get("content-length", 0) or 0)
        if length:
            self.rfile.read(length)
        path, _, query = self.path.partition("?")
        response = self.app.handle(
            Request(method=method, path=path, headers=headers, query=query)
        )
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        if response.body and method != "HEAD":
            self.wfile.write(response.body)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_HEAD(self) -> None:  # noqa: N802
        self._dispatch("HEAD")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def log_message(self, format: str, *args: object) -> None:
        """Route per-request lines into telemetry, not stderr."""
        obs.counter_inc("serve.http.log_lines")


class _SharedSocketHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that can adopt a pre-bound listening socket.

    The supervisor's workers may share one inherited non-blocking
    listener across processes; an accept another worker already won
    then raises ``BlockingIOError`` (swallowed by socketserver's
    ``_handle_request_noblock``), and a connection accepted from a
    non-blocking listener must be re-blocked before the handler's
    ``rfile``/``wfile`` can use it.
    """

    def get_request(self):
        request, client_address = super().get_request()
        request.setblocking(True)
        return request, client_address


class StudyServer:
    """A threaded HTTP server bound to one :class:`ServeApp`."""

    def __init__(
        self,
        app: ServeApp,
        host: str = "127.0.0.1",
        port: int = 0,
        sock: socket.socket | None = None,
    ):
        self.app = app
        handler = type(
            "BoundAppRequestHandler", (_AppRequestHandler,), {"app": app}
        )
        if sock is None:
            self._httpd = _SharedSocketHTTPServer((host, port), handler)
        else:
            # Adopt an already-bound, already-listening socket (the
            # supervisor's inherited-listener fallback): skip
            # bind/activate and fill in what server_bind would have.
            address = sock.getsockname()
            self._httpd = _SharedSocketHTTPServer(
                address[:2], handler, bind_and_activate=False
            )
            self._httpd.socket = sock
            self._httpd.server_address = address[:2]
            self._httpd.server_name = address[0]
            self._httpd.server_port = address[1]
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful after binding port 0)."""
        return self._httpd.server_address[1]

    # -- background mode (tests, benchmark) --------------------------------------

    def start(self) -> "StudyServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, join the serving thread, close the socket.

        Safe on a never-started server too (``shutdown()`` would block
        forever waiting for a serve loop that isn't running).
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=DRAIN_TIMEOUT_SECONDS)
            self._thread = None
        self._httpd.server_close()

    # -- foreground mode (the CLI) -----------------------------------------------

    def run_forever(self) -> int:
        """Serve on the calling thread until SIGTERM/SIGINT; drain; return 0.

        The signal handler only flips an event and asks the serve loop
        to stop — actual teardown happens back on this thread, so the
        handler stays async-signal-safe. In-flight requests run on
        daemon threads; the drain loop waits for the app's admission
        slots to all free up (bounded by :data:`DRAIN_TIMEOUT_SECONDS`)
        before closing the socket.
        """
        stop_requested = threading.Event()

        def request_stop(signum: int, frame: object) -> None:
            stop_requested.set()
            # shutdown() must not run on the serving thread; hand it off.
            threading.Thread(target=self._httpd.shutdown, daemon=True).start()

        previous = {
            sig: signal.signal(sig, request_stop)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            self._httpd.serve_forever(poll_interval=0.05)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self._drain()
            self._httpd.server_close()
        return 0

    def _drain(self) -> None:
        """Wait (bounded) until the app reports no request in flight."""
        pause = threading.Event()
        waited = 0.0
        step = 0.02
        while waited < DRAIN_TIMEOUT_SECONDS:
            if self.app.idle():
                return
            pause.wait(step)
            waited += step


@dataclass
class ServeConfig:
    """Knobs of one ``repro serve`` invocation."""

    host: str = "127.0.0.1"
    port: int = 8008
    #: admission capacity: max requests in flight before shedding.
    workers: int = 8
    #: extra admitted-but-waiting headroom on top of ``workers``.
    backlog: int = 16
    #: LRU response-cache entries.
    cache_capacity: int = 256
    seed: str = "tangled-mass"
    population_scale: float = 0.25
    notary_scale: float = 0.5
    build_cache_dir: str = ""
    #: analysis worker processes for the (re)build itself.
    build_workers: int = 1
    #: serve transport: "threaded" (thread per connection) or "evloop"
    #: (single-threaded selectors event loop).
    transport: str = "threaded"
    #: serving processes; > 1 forks a SO_REUSEPORT worker fleet after
    #: the snapshot is built (copy-on-write shared study pages).
    processes: int = 1
    #: abuse campaigns injected into the served study (a
    #: :class:`repro.scenarios.ScenarioSpec` tuple); empty serves the
    #: stock paper universe.
    scenarios: tuple = ()
    scenario_seed: str = ""


def _load_snapshot(config: ServeConfig, generation: int):
    """Run (or warm-load) the study and snapshot it."""
    from repro.analysis.study import StudyConfig, run_study
    from repro.serve.snapshot import StudySnapshot

    result = run_study(
        StudyConfig(
            seed=config.seed,
            population_scale=config.population_scale,
            notary_scale=config.notary_scale,
            workers=config.build_workers,
            build_cache_dir=config.build_cache_dir,
            scenarios=tuple(config.scenarios),
            scenario_seed=config.scenario_seed,
        )
    )
    return StudySnapshot.from_result(result, generation=generation)


def build_app(config: ServeConfig) -> ServeApp:
    """Load the study once and assemble the fully wired app."""
    from repro.serve.snapshot import SnapshotHolder

    holder = SnapshotHolder(_load_snapshot(config, generation=0))
    generation_lock = threading.Lock()
    generations = {"next": 1}

    def reloader():
        with generation_lock:
            generation = generations["next"]
            generations["next"] += 1
        return _load_snapshot(config, generation)

    return ServeApp(
        holder,
        cache_capacity=config.cache_capacity,
        capacity=config.workers + config.backlog,
        reloader=reloader,
    )


def run_server(config: ServeConfig) -> int:
    """The ``repro serve`` command body: build, announce, serve, drain."""
    import sys

    app = build_app(config)
    snapshot = app.holder.get()
    print(
        f"repro-serve {__version__}: study seed={config.seed!r} "
        f"sessions={snapshot.meta.get('sessions', 0):,} "
        f"roots={snapshot.meta.get('roots', 0)}",
        file=sys.stderr,
    )
    sys.stderr.flush()

    def announce(host: str, port: int) -> None:
        print(
            f"serving on http://{host}:{port}/v1/health "
            f"(transport={config.transport}, processes={config.processes}, "
            f"capacity={app.capacity}, cache={app.cache.capacity})",
            file=sys.stderr,
        )
        sys.stderr.flush()

    if config.processes > 1:
        from repro.serve.supervisor import Supervisor

        supervisor = Supervisor(
            app,
            host=config.host,
            port=config.port,
            processes=config.processes,
            transport=config.transport,
            ready=announce,
        )
        return supervisor.run_forever()

    from repro.serve.transport import create_server

    server = create_server(
        config.transport, app, host=config.host, port=config.port
    )
    announce(server.host, server.port)
    return server.run_forever()
