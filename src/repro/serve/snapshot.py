"""Immutable study snapshots — what every request thread reads.

A :class:`StudySnapshot` is built *once* from a completed
:class:`~repro.analysis.study.StudyResult` (typically loaded warm from
the build cache) and never mutated afterwards: the structured export,
the per-root index (store membership + leaf-validation counts pulled
through the Notary's memoized fast path) and the per-session diff
payloads are all precomputed at construction, so serving a request is a
dict lookup, never an analysis.

The :class:`SnapshotHolder` owns the one mutable cell in the service: a
reference that ``POST /admin/reload`` swaps atomically under a lock.
Request threads grab the current snapshot once at entry and use that
object for the whole request, so a reload mid-request can never produce
a torn read — the old snapshot stays alive until its last reader drops
it.
"""

from __future__ import annotations

import threading

from repro.analysis.report import to_json
from repro.analysis.study import StudyResult
from repro.x509.fingerprint import api_fingerprint

#: Stable order in which store membership is reported.
STORE_ORDER: tuple[str, ...] = (
    "aosp-4.1",
    "aosp-4.2",
    "aosp-4.3",
    "aosp-4.4",
    "mozilla",
    "ios7",
)


#: The API's root identifier: SHA-256 over the paper's (modulus,
#: signature) identity key. Shared with the attribution analysis, which
#: keys campaigns on the same fingerprints this API serves.
root_fingerprint = api_fingerprint


def _cert_label(certificate) -> str:
    return certificate.subject.common_name or str(certificate.subject)


def _build_root_index(result: StudyResult) -> dict[str, dict]:
    """fingerprint → root payload, over every official-store root."""
    stores = result.stores
    catalog = [(f"aosp-{version}", store) for version, store in sorted(stores.aosp.items())]
    catalog += [("mozilla", stores.mozilla), ("ios7", stores.ios7)]
    index: dict[str, dict] = {}
    examples: dict[str, object] = {}
    for store_name, store in catalog:
        for certificate in store.certificates(include_disabled=True):
            fingerprint = root_fingerprint(certificate)
            record = index.get(fingerprint)
            if record is None:
                record = index[fingerprint] = {
                    "fingerprint": fingerprint,
                    "subject": str(certificate.subject),
                    "label": _cert_label(certificate),
                    "stores": [],
                }
                examples[fingerprint] = certificate
            if store_name not in record["stores"]:
                record["stores"].append(store_name)
    # Leaf-validation counts ride the Notary's memoized fast path; at
    # snapshot-build time this warms exactly the per-root count memos
    # the PR 2 index keeps, so a reload costs one pass, requests zero.
    for fingerprint, certificate in examples.items():
        record = index[fingerprint]
        record["validated_current"] = result.notary.validated_by_root(certificate)
        record["validated_total"] = result.notary.validated_by_root(
            certificate, include_expired=True
        )
        record["seen_in_traffic"] = result.notary.seen_in_traffic(certificate)
    return index


def session_diff_payload(diff) -> dict:
    """The ``/v1/sessions/{id}/diff`` payload of one session diff.

    Pure per-diff rendering, shared by the batch index build below and
    the stream engine's incremental index (which renders each diff once
    at ingest time instead of re-walking the corpus per republish).
    """
    session = diff.session
    return {
        "session_id": session.session_id,
        "manufacturer": session.manufacturer,
        "model": session.model,
        "os_version": session.os_version,
        "operator": session.operator,
        "country": session.country,
        "rooted": session.rooted,
        "degraded": session.degraded,
        "store_size": session.store_size,
        "aosp_count": diff.aosp_count,
        "additional_count": diff.additional_count,
        "missing_count": diff.missing_count,
        "additional": [
            {
                "fingerprint": root_fingerprint(certificate),
                "label": _cert_label(certificate),
            }
            for certificate in diff.additional
        ],
    }


def _build_session_index(result: StudyResult) -> dict[str, dict]:
    """session id → diff payload, for ``/v1/sessions/{id}/diff``."""
    return {
        str(diff.session.session_id): session_diff_payload(diff)
        for diff in result.diffs
    }


class StudySnapshot:
    """One fully precomputed, never-mutated view of a study.

    ``export`` is the :func:`repro.analysis.report.to_json` document;
    ``roots`` and ``sessions`` are the service-side lookup indexes;
    ``meta`` is the summary surfaced by ``/v1/health``. The
    ``generation`` counter distinguishes snapshots across reloads (it
    namespaces the response cache and shows up in every ETag).
    """

    __slots__ = (
        "export",
        "roots",
        "root_order",
        "sessions",
        "meta",
        "generation",
        "interceptions",
        "interception_order",
    )

    def __init__(
        self,
        export: dict,
        *,
        roots: dict[str, dict] | None = None,
        sessions: dict[str, dict] | None = None,
        meta: dict | None = None,
        generation: int = 0,
        interceptions: dict[str, dict] | None = None,
        interception_order: list[str] | None = None,
    ):
        self.export = export
        self.roots = roots or {}
        self.root_order = sorted(self.roots)
        self.sessions = sessions or {}
        self.meta = meta or {}
        self.generation = generation
        #: campaign id → attributed-campaign payload (the attribution
        #: pass runs on every study, so these serve on stock runs too).
        self.interceptions = interceptions or {}
        self.interception_order = interception_order or sorted(self.interceptions)

    @classmethod
    def from_result(
        cls,
        result: StudyResult,
        *,
        generation: int = 0,
        index_sessions: bool = True,
        session_index: dict[str, dict] | None = None,
    ) -> "StudySnapshot":
        """Precompute every payload the service can be asked for.

        ``session_index`` substitutes a prebuilt per-session index (the
        stream engine maintains one incrementally); ``index_sessions=
        False`` skips the per-session index entirely — million-session
        live corpora trade ``/v1/sessions/{id}/diff`` (404) for a
        snapshot build that is O(tables), not O(sessions).
        """
        export = to_json(result)
        roots = _build_root_index(result)
        interceptions: dict[str, dict] = {}
        interception_order: list[str] = []
        if result.attribution is not None:
            for campaign in result.attribution.campaigns:
                interceptions[campaign.campaign_id] = campaign.to_dict()
                interception_order.append(campaign.campaign_id)
        if session_index is not None:
            sessions = session_index
        elif index_sessions:
            sessions = _build_session_index(result)
        else:
            sessions = {}
        meta = {
            "seed": result.config.seed,
            "population_scale": result.config.population_scale,
            "notary_scale": result.config.notary_scale,
            "sessions": result.dataset.session_count,
            "diffed_sessions": len(result.diffs),
            "roots": len(roots),
            "generation": generation,
        }
        return cls(
            export,
            roots=roots,
            sessions=sessions,
            meta=meta,
            generation=generation,
            interceptions=interceptions,
            interception_order=interception_order,
        )

    # -- endpoint payloads -------------------------------------------------------

    def table_payload(self, number: str) -> object | None:
        """The Table *number* section of the export, or None."""
        return self.export.get("tables", {}).get(number)

    def figure_payload(self, number: str) -> object | None:
        """The Figure *number* section of the export, or None."""
        return self.export.get("figures", {}).get(number)

    def roots_payload(self) -> dict:
        """The ``/v1/roots`` listing (fingerprint-ordered, summary form)."""
        return {
            "count": len(self.root_order),
            "roots": [
                {
                    "fingerprint": fingerprint,
                    "label": self.roots[fingerprint]["label"],
                    "stores": self.roots[fingerprint]["stores"],
                }
                for fingerprint in self.root_order
            ],
        }

    def root_payload(self, fingerprint: str) -> dict | None:
        """The full record of one root, or None when unknown."""
        return self.roots.get(fingerprint)

    def session_diff_payload(self, session_id: str) -> dict | None:
        """The diff of one session, or None when unknown."""
        return self.sessions.get(session_id)

    def interceptions_payload(self) -> dict:
        """The ``/v1/interceptions`` listing (attribution order)."""
        return {
            "count": len(self.interception_order),
            "campaigns": [
                {
                    "campaign_id": campaign_id,
                    "organization": self.interceptions[campaign_id]["organization"],
                    "kind": self.interceptions[campaign_id]["kind"],
                    "session_count": self.interceptions[campaign_id][
                        "session_count"
                    ],
                }
                for campaign_id in self.interception_order
            ],
        }

    def interception_payload(self, campaign_id: str) -> dict | None:
        """One attributed campaign in full, or None when unknown."""
        return self.interceptions.get(campaign_id)

    def scenarios_payload(self) -> dict:
        """The ``/v1/scenarios`` payload: ground truth + scoring.

        Stock (scenario-free) studies serve ``{"enabled": false}`` — the
        endpoint exists either way, only its content differs.
        """
        section = self.export.get("scenarios")
        if section is None:
            return {"enabled": False}
        return {"enabled": True, **section}


class SnapshotHolder:
    """The atomically swappable reference to the current snapshot."""

    def __init__(self, snapshot: StudySnapshot):
        self._lock = threading.Lock()
        self._snapshot = snapshot

    def get(self) -> StudySnapshot:
        """The current snapshot (request threads call this once)."""
        with self._lock:
            return self._snapshot

    def swap(self, snapshot: StudySnapshot) -> StudySnapshot:
        """Install *snapshot* and return the one it replaced."""
        with self._lock:
            previous, self._snapshot = self._snapshot, snapshot
            return previous
