"""``repro.serve`` — the zero-dependency study query service.

Puts a completed :class:`~repro.analysis.study.StudyResult` online as an
HTTP/JSON API built entirely on the stdlib (``http.server`` /
``socketserver``; no third-party runtime dependencies):

* :mod:`repro.serve.snapshot` — the immutable, fully precomputed view of
  one study a request thread reads (atomically swappable);
* :mod:`repro.serve.cache` — the LRU response cache with deterministic
  ETags;
* :mod:`repro.serve.app` — the transport-free router + handler registry
  (unit-testable without sockets), including admission-control
  backpressure;
* :mod:`repro.serve.transport` — the named-transport registry and the
  (optionally ``SO_REUSEPORT``) listener plumbing;
* :mod:`repro.serve.server` — the threaded transport, graceful
  SIGTERM drain and the ``repro serve`` entry point;
* :mod:`repro.serve.eventloop` — the single-threaded selectors-based
  transport (keep-alive, pipelining, vectored writes) for the
  read-heavy fast path;
* :mod:`repro.serve.supervisor` — fork-based multi-process workers
  sharing the immutable snapshot copy-on-write, with SIGCHLD restarts
  (decaying backoff) and a coordinated SIGTERM drain;
* :mod:`repro.serve.fleet` — the supervisor↔worker control protocol
  that broadcasts fresh snapshots (admin reloads, stream republish)
  to every worker at once.
"""

from repro.serve.app import Request, Response, ServeApp
from repro.serve.cache import ResponseCache
from repro.serve.eventloop import EventLoopServer
from repro.serve.fleet import WorkerChannel
from repro.serve.snapshot import SnapshotHolder, StudySnapshot
from repro.serve.server import ServeConfig, StudyServer, run_server
from repro.serve.supervisor import Supervisor
from repro.serve.transport import (
    TRANSPORT_NAMES,
    ReusePortUnavailable,
    SO_REUSEPORT_AVAILABLE,
    bind_listener,
    create_server,
)

__all__ = [
    "Request",
    "Response",
    "ServeApp",
    "ResponseCache",
    "SnapshotHolder",
    "StudySnapshot",
    "ServeConfig",
    "StudyServer",
    "EventLoopServer",
    "Supervisor",
    "WorkerChannel",
    "TRANSPORT_NAMES",
    "ReusePortUnavailable",
    "SO_REUSEPORT_AVAILABLE",
    "bind_listener",
    "create_server",
    "run_server",
]
