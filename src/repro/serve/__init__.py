"""``repro.serve`` — the zero-dependency study query service.

Puts a completed :class:`~repro.analysis.study.StudyResult` online as an
HTTP/JSON API built entirely on the stdlib (``http.server`` /
``socketserver``; no third-party runtime dependencies):

* :mod:`repro.serve.snapshot` — the immutable, fully precomputed view of
  one study a request thread reads (atomically swappable);
* :mod:`repro.serve.cache` — the LRU response cache with deterministic
  ETags;
* :mod:`repro.serve.app` — the transport-free router + handler registry
  (unit-testable without sockets), including admission-control
  backpressure;
* :mod:`repro.serve.server` — the threaded HTTP shim, graceful
  SIGTERM drain and the ``repro serve`` entry point.
"""

from repro.serve.app import Request, Response, ServeApp
from repro.serve.cache import ResponseCache
from repro.serve.snapshot import SnapshotHolder, StudySnapshot
from repro.serve.server import ServeConfig, StudyServer, run_server

__all__ = [
    "Request",
    "Response",
    "ServeApp",
    "ResponseCache",
    "SnapshotHolder",
    "StudySnapshot",
    "ServeConfig",
    "StudyServer",
    "run_server",
]
