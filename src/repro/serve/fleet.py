"""The supervisor↔worker control plane: framed snapshot broadcast.

A forked worker fleet shares the study snapshot copy-on-write, but a
*new* snapshot (an admin reload, or the stream engine's republish
cadence) exists only in whichever process built it. This module moves
snapshots across the fork boundary so one reload refreshes the whole
fleet — the ROADMAP gap where ``POST /admin/reload`` only used to
refresh the worker that happened to receive it.

Each worker keeps one end of a ``socketpair`` created before its fork;
the supervisor keeps the other. Every message is one frame::

    kind (1 byte) + big-endian u32 payload length + payload

* ``R`` (worker → supervisor, empty): *reload request*. The supervisor
  runs the app's reloader once and broadcasts the result to every
  worker — including the requester, whose request is thereby answered.
* ``S`` (supervisor → worker): a pickled :class:`StudySnapshot`. The
  worker's receiver thread swaps it into the holder; the generation
  counter already namespaces ETags and the response LRU, so the swap
  is safe mid-traffic by construction.
* ``E`` (supervisor → worker): a UTF-8 error message — the rebuild
  failed; the requester surfaces it as a typed 500 and the old
  snapshot stays live everywhere.

The worker side (:class:`WorkerChannel`) runs a daemon receiver thread
and exposes :meth:`WorkerChannel.request_reload`, which the supervisor
installs as the worker's ``app.reloader`` — so the app's existing
reload handler (lock, swap, failure typing) works unchanged in fleet
mode; it just acquires its fresh snapshot from the parent instead of
rebuilding locally.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time

MSG_RELOAD_REQUEST = b"R"
MSG_SNAPSHOT = b"S"
MSG_ERROR = b"E"

#: Frame header: kind byte + u32 payload length.
_HEADER = struct.Struct(">cI")

#: How long a worker's reload proxy waits for the broadcast before
#: giving up (the app then answers a typed 500; a broadcast that lands
#: later still swaps in harmlessly).
RELOAD_TIMEOUT_SECONDS = 600.0

#: Bounded sendall so one wedged worker can never hang the supervisor's
#: control loop; a worker that stops draining its channel is treated as
#: dead (its SIGCHLD restart delivers the current snapshot via fork).
CHANNEL_SEND_TIMEOUT_SECONDS = 30.0


def control_socketpair() -> tuple[socket.socket, socket.socket]:
    """(supervisor side, worker side), made before the worker forks."""
    parent_sock, child_sock = socket.socketpair()
    parent_sock.settimeout(CHANNEL_SEND_TIMEOUT_SECONDS)
    return parent_sock, child_sock


def send_frame(sock: socket.socket, kind: bytes, payload: bytes = b"") -> None:
    sock.sendall(_HEADER.pack(kind, len(payload)) + payload)


def snapshot_frame(snapshot) -> bytes:
    """One serialized ``S`` frame, built once per broadcast."""
    payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(MSG_SNAPSHOT, len(payload)) + payload


def recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly *count* bytes, or None on EOF (clean or mid-frame)."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[bytes, bytes] | None:
    """One (kind, payload) frame, or None on EOF."""
    header = recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    kind, length = _HEADER.unpack(header)
    payload = recv_exact(sock, length) if length else b""
    if length and payload is None:
        return None
    return kind, payload


class WorkerChannel:
    """Worker side of the control socket: receive broadcasts, request reloads."""

    def __init__(self, sock: socket.socket, holder):
        self.sock = sock
        self.holder = holder
        self._cond = threading.Condition()
        self._error: str | None = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._recv_loop, name="repro-fleet-channel", daemon=True
        )

    def start(self) -> "WorkerChannel":
        self._thread.start()
        return self

    def _recv_loop(self) -> None:
        while True:
            try:
                frame = recv_frame(self.sock)
            except OSError:
                frame = None
            if frame is None:
                break
            kind, payload = frame
            if kind == MSG_SNAPSHOT:
                snapshot = pickle.loads(payload)
                self.holder.swap(snapshot)
                with self._cond:
                    self._cond.notify_all()
            elif kind == MSG_ERROR:
                with self._cond:
                    self._error = payload.decode("utf-8", "replace")
                    self._cond.notify_all()
        # EOF: the supervisor is gone. Keep serving the last snapshot;
        # pending reload waiters fail fast instead of timing out.
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def request_reload(self, timeout: float = RELOAD_TIMEOUT_SECONDS):
        """Ask the supervisor to rebuild; return the fresh snapshot.

        Installed as the worker's ``app.reloader``: raises on rebuild
        failure / supervisor loss / timeout, which the app's reload
        handler converts into its typed 500.
        """
        start_generation = self.holder.get().generation
        with self._cond:
            self._error = None
            if self._closed:
                raise RuntimeError("supervisor control channel closed")
        try:
            send_frame(self.sock, MSG_RELOAD_REQUEST)
        except OSError as error:
            raise RuntimeError(
                f"supervisor control channel closed ({error})"
            ) from error
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                current = self.holder.get()
                if current.generation != start_generation:
                    return current
                if self._error is not None:
                    message = self._error
                    self._error = None
                    raise RuntimeError(f"fleet reload failed: {message}")
                if self._closed:
                    raise RuntimeError("supervisor control channel closed")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"no snapshot broadcast within {timeout:.0f}s"
                    )
                self._cond.wait(remaining)
