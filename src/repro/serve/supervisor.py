"""Multi-process serving: fork workers after the snapshot is built.

The study snapshot is immutable and big; the serve transports are
single-process. This module multiplies them: the parent builds the
:class:`~repro.serve.app.ServeApp` (snapshot, routes, caches) *once*,
then ``os.fork()``s N workers — every page of the snapshot is shared
copy-on-write, so worker number is decoupled from memory. Each worker
runs its own transport instance (event loop by default) with its own
per-process, generation-keyed response LRU.

Two listening arrangements, best first:

* **SO_REUSEPORT** (Linux, BSDs): every worker binds its *own*
  listening socket on the same address and the kernel load-balances
  new connections across them — no accept contention, no thundering
  herd. The parent briefly binds a reservation socket first so port 0
  resolves to one concrete port every worker can bind, and closes it
  once every worker has reported its own socket bound.
* **Inherited listener** (fallback anywhere the option is missing):
  the parent binds once and workers accept from the shared inherited
  socket. Correct, just noisier under load.

Lifecycle, all in the parent's select-driven control loop:

* **SIGCHLD-driven restarts**: a worker that dies unexpectedly is
  replaced, with exponential backoff per worker slot so a crash loop
  can't fork-bomb the host. The backoff *decays*: a worker that ran
  healthily for :data:`HEALTHY_UPTIME_SECONDS` resets its slot's
  count, so a worker that crashes once a day restarts in
  :data:`BACKOFF_BASE_SECONDS` forever instead of creeping up to the
  cap. Restart delays are scheduled due-times, never blocking sleeps —
  the control loop keeps serving reload requests while a slot waits.
* **Fleet-wide snapshot broadcast** (:mod:`repro.serve.fleet`): every
  worker holds a control socketpair to the parent. A worker receiving
  ``POST /admin/reload`` forwards it here; the parent rebuilds once
  and broadcasts the fresh snapshot to the whole fleet, so one reload
  can never leave workers serving mixed generations. The stream
  engine's republish cadence pushes through the same
  :meth:`Supervisor.broadcast_snapshot` path via the ``tick`` hook.
  The rebuild runs synchronously in the control loop (restarts and
  further requests queue behind it) — deliberate: a fleet mid-reload
  has exactly one study build in flight, never N.
* **Coordinated drain**: SIGTERM/SIGINT forwards SIGTERM to every
  worker; each drains in-flight requests via its transport's own
  protocol and exits 0; the parent reaps them all (bounded wait,
  SIGKILL stragglers) and exits 0 iff the whole fleet drained cleanly.

Workers label their telemetry (``serve.worker.index`` /
``serve.worker.pid`` gauges) so ``/v1/metrics`` identifies which
worker answered — counters are naturally per-process after the fork.
"""

from __future__ import annotations

import os
import select
import signal
import sys
import time
from typing import Callable

from repro.serve import fleet
from repro.serve.app import ServeApp
from repro.serve.transport import (
    ReusePortUnavailable,
    SO_REUSEPORT_AVAILABLE,
    bind_listener,
    create_server,
)

#: Bounded wait for the fleet to drain after a stop signal.
DRAIN_TIMEOUT_SECONDS = 15.0

#: Restart backoff: base * 2^(restarts-1), capped.
BACKOFF_BASE_SECONDS = 0.1
BACKOFF_CAP_SECONDS = 5.0

#: A worker that survived this long is considered healthy: its slot's
#: restart count resets, so the next crash backs off from the base
#: again instead of wherever an old crash loop left the counter.
HEALTHY_UPTIME_SECONDS = 30.0

#: How long the parent waits for every worker to report its listener
#: bound before closing the port reservation.
BIND_SYNC_TIMEOUT_SECONDS = 30.0


def next_restart_count(previous: int, uptime: float, *, healthy_after: float = HEALTHY_UPTIME_SECONDS) -> int:
    """The slot's restart count after a worker death at *uptime* seconds.

    A healthy run decays the history to zero before counting the new
    death, so backoff only compounds across *rapid* crash loops.
    """
    if uptime >= healthy_after:
        return 1
    return previous + 1


def backoff_delay(restarts: int) -> float:
    """Exponential restart delay for the given consecutive-crash count."""
    return min(
        BACKOFF_CAP_SECONDS, BACKOFF_BASE_SECONDS * (2 ** (max(restarts, 1) - 1))
    )


class Supervisor:
    """Fork-based worker fleet over one prebuilt ServeApp."""

    def __init__(
        self,
        app: ServeApp,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        processes: int = 2,
        transport: str = "evloop",
        reuse_port: bool | None = None,
        notify_fd: int | None = None,
        ready=None,
        drain_timeout: float = DRAIN_TIMEOUT_SECONDS,
        tick: Callable[[], None] | None = None,
        tick_interval: float = 0.5,
    ):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.app = app
        self.host = host
        self.requested_port = port
        self.processes = processes
        self.transport = transport
        #: None = auto-detect; False forces the inherited-listener path.
        self.reuse_port = reuse_port
        self.notify_fd = notify_fd
        self.ready = ready
        self.drain_timeout = drain_timeout
        #: Called from the control loop roughly every ``tick_interval``
        #: seconds — the stream engine pumps ingestion here, in the
        #: parent, and republishes via :meth:`broadcast_snapshot`.
        self.tick = tick
        self.tick_interval = tick_interval
        self.port: int | None = None
        self._workers: dict[int, int] = {}  # pid → worker index
        self._restarts: dict[int, int] = {}  # worker index → restart count
        self._spawned_at: dict[int, float] = {}  # pid → monotonic spawn time
        self._pending_restarts: dict[int, float] = {}  # index → due time
        self._channels: dict[int, object] = {}  # pid → control socket
        self._channel = None  # the worker's own end, set post-fork
        self._shared_listener = None
        self._reservation = None
        self._stop_requested = False
        self._drain_failed = False
        self._sync_w: int | None = None
        self._wake_w: int | None = None

    # -- the parent --------------------------------------------------------------

    def run_forever(self) -> int:
        """Bind, fork the fleet, babysit it until signalled; reap; exit."""
        using_reuse_port = self._decide_reuse_port()
        if using_reuse_port:
            self._reservation = bind_listener(
                self.host, self.requested_port, reuse_port=True
            )
            self.port = self._reservation.getsockname()[1]
        else:
            self._shared_listener = bind_listener(self.host, self.requested_port)
            self._shared_listener.setblocking(False)
            self.port = self._shared_listener.getsockname()[1]
        self.app.registry.gauge("serve.supervisor.processes").set(self.processes)

        sync_r, sync_w = os.pipe()
        self._sync_w = sync_w
        previous = {
            sig: signal.signal(sig, self._request_stop)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            for index in range(self.processes):
                self._spawn(index, using_reuse_port)
            os.close(sync_w)
            self._sync_w = None
            self._await_worker_binds(sync_r)
            if self._reservation is not None:
                # Every worker holds its own SO_REUSEPORT socket now;
                # the reservation would otherwise black-hole its share
                # of new connections into a queue nobody accepts from.
                self._reservation.close()
                self._reservation = None
            self._announce(using_reuse_port)
            self._babysit(using_reuse_port)
        finally:
            os.close(sync_r)
            if self._sync_w is not None:
                os.close(self._sync_w)
            if self._reservation is not None:
                self._reservation.close()
                self._reservation = None
            if self._shared_listener is not None:
                self._shared_listener.close()
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        return 1 if self._drain_failed else 0

    def _decide_reuse_port(self) -> bool:
        if self.reuse_port is False:
            return False
        try:
            probe = bind_listener(self.host, 0, reuse_port=True)
        except ReusePortUnavailable:
            if self.reuse_port is True:
                raise
            return False
        probe.close()
        return SO_REUSEPORT_AVAILABLE

    def _request_stop(self, signum: int, frame: object) -> None:
        self._stop_requested = True
        self._poke()
        for pid in list(self._workers):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    def _on_sigchld(self, signum: int, frame: object) -> None:
        self._poke()

    def _poke(self) -> None:
        """Wake the control loop's select (async-signal-safe)."""
        wake = self._wake_w
        if wake is not None:
            try:
                os.write(wake, b"w")
            except OSError:
                pass

    def _spawn(self, index: int, using_reuse_port: bool) -> None:
        if self._stop_requested:
            return
        parent_sock, child_sock = fleet.control_socketpair()
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                parent_sock.close()
                # Inherited copies of *other* workers' parent-side
                # channel sockets: close them so a worker's death
                # actually EOFs its channel in the parent.
                for sock in self._channels.values():
                    sock.close()
                self._channels = {}
                self._channel = child_sock
                status = self._worker_main(index, using_reuse_port)
            except BaseException:  # noqa: BLE001 — a worker never re-enters the parent
                import traceback

                traceback.print_exc()
            finally:
                os._exit(status)
        child_sock.close()
        self._workers[pid] = index
        self._channels[pid] = parent_sock
        self._spawned_at[pid] = time.monotonic()

    def _await_worker_binds(self, sync_r: int) -> None:
        """Block until every worker wrote its bound-byte (bounded)."""
        pending = self.processes
        deadline = time.monotonic() + BIND_SYNC_TIMEOUT_SECONDS
        while pending > 0 and time.monotonic() < deadline:
            readable, _, _ = select.select([sync_r], [], [], 0.2)
            if not readable:
                if self._stop_requested:
                    return
                continue
            data = os.read(sync_r, pending)
            if not data:  # every write end closed — workers are gone
                return
            pending -= len(data)

    def _announce(self, using_reuse_port: bool) -> None:
        mode = "SO_REUSEPORT" if using_reuse_port else "shared inherited listener"
        if self.notify_fd is not None:
            os.write(self.notify_fd, f"PORT {self.port}\n".encode("ascii"))
            os.close(self.notify_fd)
            self.notify_fd = None
        if self.ready is not None:
            self.ready(self.host, self.port)
        print(
            f"repro-serve supervisor: {self.processes} x {self.transport} "
            f"worker(s) on {self.host}:{self.port} via {mode}",
            file=sys.stderr,
        )
        sys.stderr.flush()

    # -- the control loop --------------------------------------------------------

    def _babysit(self, using_reuse_port: bool) -> None:
        """Reap exits, serve reload requests, run due restarts and ticks."""
        wake_r, wake_w = os.pipe()
        os.set_blocking(wake_r, False)
        os.set_blocking(wake_w, False)
        self._wake_w = wake_w
        previous_chld = signal.signal(signal.SIGCHLD, self._on_sigchld)
        try:
            while self._workers or self._pending_restarts:
                if self._stop_requested:
                    self._reap_draining()
                    return
                channels = list(self._channels.items())
                watch = [wake_r] + [sock for _, sock in channels]
                try:
                    readable, _, _ = select.select(
                        watch, [], [], self._loop_timeout()
                    )
                except OSError:
                    readable = []
                if wake_r in readable:
                    self._drain_wake(wake_r)
                self._reap_exits()
                for pid, sock in channels:
                    if sock in readable and pid in self._channels:
                        self._handle_channel(pid, sock)
                self._spawn_due_restarts(using_reuse_port)
                if self.tick is not None and not self._stop_requested:
                    self.tick()
            if self._stop_requested:
                self._reap_draining()
        finally:
            signal.signal(signal.SIGCHLD, previous_chld)
            self._wake_w = None
            os.close(wake_r)
            os.close(wake_w)

    def _loop_timeout(self) -> float:
        """Sleep until the next due restart or tick, with a heartbeat."""
        candidates = [1.0]  # heartbeat: never trust a wakeup you can re-earn
        if self._pending_restarts:
            now = time.monotonic()
            candidates.append(
                max(0.0, min(self._pending_restarts.values()) - now)
            )
        if self.tick is not None:
            candidates.append(self.tick_interval)
        return min(candidates)

    @staticmethod
    def _drain_wake(wake_r: int) -> None:
        try:
            while os.read(wake_r, 512):
                pass
        except OSError:
            pass

    def _reap_exits(self) -> None:
        """Collect every dead worker; schedule its slot's restart."""
        while True:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                return
            if pid == 0:
                return
            index = self._workers.pop(pid, None)
            spawned = self._spawned_at.pop(pid, None)
            self._close_channel(pid)
            if index is None:
                continue
            code = self._exit_code(status)
            if self._stop_requested:
                if code != 0:
                    self._drain_failed = True
                continue
            # Unexpected death: restart the slot with exponential
            # backoff, decayed if the worker had a healthy run.
            uptime = (
                time.monotonic() - spawned if spawned is not None else 0.0
            )
            self._restarts[index] = next_restart_count(
                self._restarts.get(index, 0), uptime
            )
            self.app.registry.counter("serve.supervisor.restarts").inc()
            delay = backoff_delay(self._restarts[index])
            print(
                f"repro-serve supervisor: worker {index} (pid {pid}) exited "
                f"{code}; restarting in {delay:.2f}s",
                file=sys.stderr,
            )
            self._pending_restarts[index] = time.monotonic() + delay

    def _spawn_due_restarts(self, using_reuse_port: bool) -> None:
        if not self._pending_restarts or self._stop_requested:
            return
        now = time.monotonic()
        due = [
            index
            for index, due_at in self._pending_restarts.items()
            if due_at <= now
        ]
        for index in due:
            del self._pending_restarts[index]
            self._spawn(index, using_reuse_port)

    def _handle_channel(self, pid: int, sock) -> None:
        """One readable control socket: a reload request, or EOF."""
        try:
            frame = fleet.recv_frame(sock)
        except OSError:
            frame = None
        if frame is None:
            self._close_channel(pid)
            return
        kind, _ = frame
        if kind == fleet.MSG_RELOAD_REQUEST:
            self._serve_reload(sock)

    def _serve_reload(self, sock) -> None:
        """Rebuild once; broadcast to all, or report failure to the asker."""
        if self.app.reloader is None:
            self._send_error(sock, "no reloader configured")
            return
        try:
            fresh = self.app.reloader()
        except Exception as error:  # noqa: BLE001 — typed back to the worker
            self.app.registry.counter("serve.supervisor.reload_failures").inc()
            self._send_error(sock, f"{type(error).__name__}: {error}")
            return
        self.broadcast_snapshot(fresh)

    @staticmethod
    def _send_error(sock, message: str) -> None:
        try:
            fleet.send_frame(sock, fleet.MSG_ERROR, message.encode("utf-8"))
        except OSError:
            pass

    def broadcast_snapshot(self, snapshot) -> int:
        """Install *snapshot* fleet-wide; returns workers reached.

        The parent's holder is swapped first, so a worker respawned
        after this broadcast forks with the fresh study already in
        place. A channel that errors mid-send belongs to a dead or
        wedged worker — its SIGCHLD restart is the recovery path.
        """
        self.app.holder.swap(snapshot)
        frame = fleet.snapshot_frame(snapshot)
        delivered = 0
        for pid in list(self._channels):
            try:
                self._channels[pid].sendall(frame)
                delivered += 1
            except OSError:
                self._close_channel(pid)
        self.app.registry.counter("serve.supervisor.broadcasts").inc()
        return delivered

    def _close_channel(self, pid: int) -> None:
        sock = self._channels.pop(pid, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _reap_draining(self) -> None:
        """Collect the fleet after a stop signal; SIGKILL past deadline."""
        for pid in list(self._workers):  # spawned-after-signal stragglers
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + self.drain_timeout
        while self._workers and time.monotonic() < deadline:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                self._workers.clear()
                return
            if pid == 0:
                time.sleep(0.02)
                continue
            if self._workers.pop(pid, None) is not None:
                self._close_channel(pid)
                if self._exit_code(status) != 0:
                    self._drain_failed = True
        for pid in list(self._workers):
            self._drain_failed = True
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
            self._workers.pop(pid, None)
            self._close_channel(pid)

    @staticmethod
    def _exit_code(status: int) -> int:
        if os.WIFEXITED(status):
            return os.WEXITSTATUS(status)
        if os.WIFSIGNALED(status):
            return 128 + os.WTERMSIG(status)
        return 1

    # -- the workers -------------------------------------------------------------

    def _worker_main(self, index: int, using_reuse_port: bool) -> int:
        """Runs in the forked child; never returns to the parent's code."""
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        signal.signal(signal.SIGCHLD, signal.SIG_DFL)
        if using_reuse_port:
            # Close the inherited copy of the parent's reservation
            # socket first — a listening FD nobody accepts from would
            # black-hole its kernel-balanced share of connections —
            # then bind this worker's own load-balanced listener.
            if self._reservation is not None:
                self._reservation.close()
                self._reservation = None
            listener = bind_listener(self.host, self.port, reuse_port=True)
        else:
            listener = self._shared_listener
        if self._sync_w is not None:
            os.write(self._sync_w, b"B")
            os.close(self._sync_w)
            self._sync_w = None
        if self._channel is not None:
            # Reloads become fleet-wide: the worker's reloader forwards
            # to the parent, which rebuilds once and broadcasts; the
            # receiver thread swaps broadcasts in even when this worker
            # never asked (another worker's reload, or the stream
            # engine's republish cadence).
            channel = fleet.WorkerChannel(self._channel, self.app.holder).start()
            self.app.reloader = channel.request_reload
        self.app.registry.gauge("serve.worker.index").set(index)
        self.app.registry.gauge("serve.worker.pid").set(os.getpid())
        server = create_server(
            self.transport, self.app, host=self.host, port=self.port, sock=listener
        )
        return server.run_forever()
