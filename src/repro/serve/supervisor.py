"""Multi-process serving: fork workers after the snapshot is built.

The study snapshot is immutable and big; the serve transports are
single-process. This module multiplies them: the parent builds the
:class:`~repro.serve.app.ServeApp` (snapshot, routes, caches) *once*,
then ``os.fork()``s N workers — every page of the snapshot is shared
copy-on-write, so worker number is decoupled from memory. Each worker
runs its own transport instance (event loop by default) with its own
per-process, generation-keyed response LRU.

Two listening arrangements, best first:

* **SO_REUSEPORT** (Linux, BSDs): every worker binds its *own*
  listening socket on the same address and the kernel load-balances
  new connections across them — no accept contention, no thundering
  herd. The parent briefly binds a reservation socket first so port 0
  resolves to one concrete port every worker can bind, and closes it
  once every worker has reported its own socket bound.
* **Inherited listener** (fallback anywhere the option is missing):
  the parent binds once and workers accept from the shared inherited
  socket. Correct, just noisier under load.

Lifecycle, all in the parent:

* **SIGCHLD-driven restarts**: a worker that dies unexpectedly is
  replaced, with exponential backoff per worker slot so a crash loop
  can't fork-bomb the host.
* **Coordinated drain**: SIGTERM/SIGINT forwards SIGTERM to every
  worker; each drains in-flight requests via its transport's own
  protocol and exits 0; the parent reaps them all (bounded wait,
  SIGKILL stragglers) and exits 0 iff the whole fleet drained cleanly.

Workers label their telemetry (``serve.worker.index`` /
``serve.worker.pid`` gauges) so ``/v1/metrics`` identifies which
worker answered — counters are naturally per-process after the fork.
"""

from __future__ import annotations

import os
import select
import signal
import sys
import time

from repro.serve.app import ServeApp
from repro.serve.transport import (
    ReusePortUnavailable,
    SO_REUSEPORT_AVAILABLE,
    bind_listener,
    create_server,
)

#: Bounded wait for the fleet to drain after a stop signal.
DRAIN_TIMEOUT_SECONDS = 15.0

#: Restart backoff: base * 2^(restarts-1), capped.
BACKOFF_BASE_SECONDS = 0.1
BACKOFF_CAP_SECONDS = 5.0

#: How long the parent waits for every worker to report its listener
#: bound before closing the port reservation.
BIND_SYNC_TIMEOUT_SECONDS = 30.0


class Supervisor:
    """Fork-based worker fleet over one prebuilt ServeApp."""

    def __init__(
        self,
        app: ServeApp,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        processes: int = 2,
        transport: str = "evloop",
        reuse_port: bool | None = None,
        notify_fd: int | None = None,
        ready=None,
        drain_timeout: float = DRAIN_TIMEOUT_SECONDS,
    ):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.app = app
        self.host = host
        self.requested_port = port
        self.processes = processes
        self.transport = transport
        #: None = auto-detect; False forces the inherited-listener path.
        self.reuse_port = reuse_port
        self.notify_fd = notify_fd
        self.ready = ready
        self.drain_timeout = drain_timeout
        self.port: int | None = None
        self._workers: dict[int, int] = {}  # pid → worker index
        self._restarts: dict[int, int] = {}  # worker index → restart count
        self._shared_listener = None
        self._reservation = None
        self._stop_requested = False
        self._drain_failed = False
        self._sync_w: int | None = None

    # -- the parent --------------------------------------------------------------

    def run_forever(self) -> int:
        """Bind, fork the fleet, babysit it until signalled; reap; exit."""
        using_reuse_port = self._decide_reuse_port()
        if using_reuse_port:
            self._reservation = bind_listener(
                self.host, self.requested_port, reuse_port=True
            )
            self.port = self._reservation.getsockname()[1]
        else:
            self._shared_listener = bind_listener(self.host, self.requested_port)
            self._shared_listener.setblocking(False)
            self.port = self._shared_listener.getsockname()[1]
        self.app.registry.gauge("serve.supervisor.processes").set(self.processes)

        sync_r, sync_w = os.pipe()
        self._sync_w = sync_w
        previous = {
            sig: signal.signal(sig, self._request_stop)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            for index in range(self.processes):
                self._spawn(index, using_reuse_port)
            os.close(sync_w)
            self._sync_w = None
            self._await_worker_binds(sync_r)
            if self._reservation is not None:
                # Every worker holds its own SO_REUSEPORT socket now;
                # the reservation would otherwise black-hole its share
                # of new connections into a queue nobody accepts from.
                self._reservation.close()
                self._reservation = None
            self._announce(using_reuse_port)
            self._babysit(using_reuse_port)
        finally:
            os.close(sync_r)
            if self._sync_w is not None:
                os.close(self._sync_w)
            if self._reservation is not None:
                self._reservation.close()
                self._reservation = None
            if self._shared_listener is not None:
                self._shared_listener.close()
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        return 1 if self._drain_failed else 0

    def _decide_reuse_port(self) -> bool:
        if self.reuse_port is False:
            return False
        try:
            probe = bind_listener(self.host, 0, reuse_port=True)
        except ReusePortUnavailable:
            if self.reuse_port is True:
                raise
            return False
        probe.close()
        return SO_REUSEPORT_AVAILABLE

    def _request_stop(self, signum: int, frame: object) -> None:
        self._stop_requested = True
        for pid in list(self._workers):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    def _spawn(self, index: int, using_reuse_port: bool) -> None:
        if self._stop_requested:
            return
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                status = self._worker_main(index, using_reuse_port)
            except BaseException:  # noqa: BLE001 — a worker never re-enters the parent
                import traceback

                traceback.print_exc()
            finally:
                os._exit(status)
        self._workers[pid] = index

    def _await_worker_binds(self, sync_r: int) -> None:
        """Block until every worker wrote its bound-byte (bounded)."""
        pending = self.processes
        deadline = time.monotonic() + BIND_SYNC_TIMEOUT_SECONDS
        while pending > 0 and time.monotonic() < deadline:
            readable, _, _ = select.select([sync_r], [], [], 0.2)
            if not readable:
                if self._stop_requested:
                    return
                continue
            data = os.read(sync_r, pending)
            if not data:  # every write end closed — workers are gone
                return
            pending -= len(data)

    def _announce(self, using_reuse_port: bool) -> None:
        mode = "SO_REUSEPORT" if using_reuse_port else "shared inherited listener"
        if self.notify_fd is not None:
            os.write(self.notify_fd, f"PORT {self.port}\n".encode("ascii"))
            os.close(self.notify_fd)
            self.notify_fd = None
        if self.ready is not None:
            self.ready(self.host, self.port)
        print(
            f"repro-serve supervisor: {self.processes} x {self.transport} "
            f"worker(s) on {self.host}:{self.port} via {mode}",
            file=sys.stderr,
        )
        sys.stderr.flush()

    def _babysit(self, using_reuse_port: bool) -> None:
        """Reap exits; restart crashes with backoff; drain on stop."""
        while self._workers:
            if self._stop_requested:
                self._reap_draining()
                return
            try:
                pid, status = os.waitpid(-1, 0)
            except ChildProcessError:
                self._workers.clear()
                return
            except InterruptedError:
                continue
            index = self._workers.pop(pid, None)
            if index is None:
                continue
            code = self._exit_code(status)
            if self._stop_requested:
                if code != 0:
                    self._drain_failed = True
                continue
            # Unexpected death: restart the slot with exponential backoff.
            self._restarts[index] = self._restarts.get(index, 0) + 1
            self.app.registry.counter("serve.supervisor.restarts").inc()
            delay = min(
                BACKOFF_CAP_SECONDS,
                BACKOFF_BASE_SECONDS * (2 ** (self._restarts[index] - 1)),
            )
            print(
                f"repro-serve supervisor: worker {index} (pid {pid}) exited "
                f"{code}; restarting in {delay:.2f}s",
                file=sys.stderr,
            )
            self._sleep_interruptibly(delay)
            self._spawn(index, using_reuse_port)

    def _reap_draining(self) -> None:
        """Collect the fleet after a stop signal; SIGKILL past deadline."""
        for pid in list(self._workers):  # spawned-after-signal stragglers
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + self.drain_timeout
        while self._workers and time.monotonic() < deadline:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                self._workers.clear()
                return
            if pid == 0:
                time.sleep(0.02)
                continue
            if self._workers.pop(pid, None) is not None:
                if self._exit_code(status) != 0:
                    self._drain_failed = True
        for pid in list(self._workers):
            self._drain_failed = True
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
            self._workers.pop(pid, None)

    def _sleep_interruptibly(self, delay: float) -> None:
        deadline = time.monotonic() + delay
        while not self._stop_requested and time.monotonic() < deadline:
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))

    @staticmethod
    def _exit_code(status: int) -> int:
        if os.WIFEXITED(status):
            return os.WEXITSTATUS(status)
        if os.WIFSIGNALED(status):
            return 128 + os.WTERMSIG(status)
        return 1

    # -- the workers -------------------------------------------------------------

    def _worker_main(self, index: int, using_reuse_port: bool) -> int:
        """Runs in the forked child; never returns to the parent's code."""
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        if using_reuse_port:
            # Close the inherited copy of the parent's reservation
            # socket first — a listening FD nobody accepts from would
            # black-hole its kernel-balanced share of connections —
            # then bind this worker's own load-balanced listener.
            if self._reservation is not None:
                self._reservation.close()
                self._reservation = None
            listener = bind_listener(self.host, self.port, reuse_port=True)
        else:
            listener = self._shared_listener
        if self._sync_w is not None:
            os.write(self._sync_w, b"B")
            os.close(self._sync_w)
            self._sync_w = None
        self.app.registry.gauge("serve.worker.index").set(index)
        self.app.registry.gauge("serve.worker.pid").set(os.getpid())
        server = create_server(
            self.transport, self.app, host=self.host, port=self.port, sock=listener
        )
        return server.run_forever()
