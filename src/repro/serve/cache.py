"""Thread-safe LRU cache for rendered responses.

Response bodies are deterministic functions of (snapshot generation,
path) — the snapshot is immutable and the serializer canonical — so the
service can cache rendered bytes plus their ETags and serve repeat
queries without re-serializing anything. Capacity-bounded with
least-recently-used eviction; hit/miss counts are published into the
server's metrics registry so the ``/v1/metrics`` endpoint can prove a
request was served from cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: Cached value: (body bytes, ETag, content type).
CachedResponse = tuple[bytes, str, str]


class ResponseCache:
    """A bounded, thread-safe LRU keyed by (generation, path)."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[object, CachedResponse] = OrderedDict()

    def get(self, key: object) -> CachedResponse | None:
        """The cached response, refreshed as most recently used."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: object, value: CachedResponse) -> None:
        """Insert (or refresh) one rendered response."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the benchmark's cold-cache lever)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
