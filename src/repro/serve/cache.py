"""Thread-safe LRU cache for rendered responses.

Response bodies are deterministic functions of (snapshot generation,
path) — the snapshot is immutable and the serializer canonical — so the
service can cache rendered bytes plus their ETags and serve repeat
queries without re-serializing anything. Capacity-bounded with
least-recently-used eviction.

Bookkeeping is read through :meth:`ResponseCache.stats`, which takes
the cache lock and returns one mutually consistent snapshot of
hits/misses/evictions/entries — the ``/v1/metrics`` endpoint and the
serve benchmark both go through it. Reading the counter attributes
directly races concurrent requests: each number is updated under the
lock, but three separate attribute reads can interleave with a mutation
and describe three different moments.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: Cached value: (body bytes, ETag, content type).
CachedResponse = tuple[bytes, str, str]


class ResponseCache:
    """A bounded, thread-safe LRU keyed by (generation, path)."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[object, CachedResponse] = OrderedDict()

    def get(self, key: object) -> CachedResponse | None:
        """The cached response, refreshed as most recently used."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: object, value: CachedResponse) -> None:
        """Insert (or refresh) one rendered response."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the benchmark's cold-cache lever).

        The counters reset with the entries, so a post-clear
        :meth:`stats` snapshot describes only the new, cold era — a
        cleared cache reporting the old era's hits alongside zero
        entries was exactly the reconciliation bug this fixes.
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict[str, int]:
        """One mutually consistent snapshot of the cache bookkeeping.

        Taken under the cache lock, so ``hits + misses`` equals the
        lookups and ``entries`` matches the population *at the same
        instant* — guarantees unlocked attribute reads cannot make.
        Counters cover the era since construction or the last
        :meth:`clear`.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
