"""The transport-free request handler: router, ETags, backpressure.

``ServeApp.handle`` maps one parsed request to one response without ever
touching a socket, which is what makes the whole service unit-testable
in-process. The HTTP shim in :mod:`repro.serve.server` (and nothing
else) deals with bytes on the wire.

Design points:

* **Routing** is a registry of ``(method, compiled pattern, handler)``
  rows; handlers receive the match groups and the *snapshot the request
  started with* — one `holder.get()` per request, so an admin reload
  mid-request can never mix two studies in one response.
* **Determinism**: every body is rendered with the canonical serializer
  (:func:`repro.analysis.report.to_json_bytes`), so the same query
  against the same snapshot always yields the same bytes, and the ETag
  is simply a hash of those bytes. ``If-None-Match`` revalidation
  returns 304 with an empty body.
* **LRU**: rendered (body, ETag) pairs are cached per
  ``(generation, path)``; the cache cannot go stale because a reload
  changes the generation.
* **Backpressure**: a non-blocking admission semaphore bounds in-flight
  requests at ``capacity``; a saturated service answers 503 with a
  ``Retry-After`` hint instead of queueing unboundedly.
* **Telemetry**: per-request latency lands in a
  :class:`repro.obs.MetricsRegistry` histogram, per-status and
  per-endpoint counters alongside it, and each request runs under a
  thread-local :class:`repro.obs.Tracer` span (the tracer's span stack
  is per-thread state, so request threads must not share one).
"""

from __future__ import annotations

import hashlib
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro import __version__
from repro.analysis.report import to_json_bytes
from repro.obs import MetricsRegistry, Tracer
from repro.serve.cache import ResponseCache
from repro.serve.snapshot import SnapshotHolder, StudySnapshot

#: Content type of every response body.
JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: ``Retry-After`` seconds advertised when shedding load.
RETRY_AFTER_SECONDS = 1

#: Per-request trace spans kept for inspection (bounded ring).
MAX_RECENT_SPANS = 64


@dataclass(frozen=True)
class Request:
    """One parsed request, transport-independent.

    ``path`` never contains a query string — transports split the
    request target and hand the raw (still percent-encoded) query
    through ``query``. No current route consumes it, but it rides along
    so future endpoints can paginate without a transport change; the
    response cache keys on ``path`` alone, so a query can never fork
    the ETag of a query-blind route.
    """

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    query: str = ""

    def header(self, name: str) -> str | None:
        return self.headers.get(name.lower())


@dataclass(frozen=True)
class Response:
    """One response the transport layer writes out verbatim."""

    status: int
    body: bytes = b""
    headers: tuple[tuple[str, str], ...] = ()
    content_type: str = JSON_CONTENT_TYPE


def make_etag(body: bytes, generation: int) -> str:
    """The deterministic ETag of one rendered body.

    A strong validator: same snapshot generation + same bytes → same
    tag, on any worker and across restarts of the same study config.
    """
    digest = hashlib.sha256(body).hexdigest()[:32]
    return f'"g{generation}-{digest}"'


def _error_body(status: int, message: str) -> bytes:
    return to_json_bytes({"error": {"status": status, "message": message}})


#: Handler signature: (snapshot, match) → payload object, or a Response
#: for non-JSON/non-cacheable outcomes, or None for "not found".
Handler = Callable[[StudySnapshot, re.Match], object]


class ServeApp:
    """Router + handler registry over an atomically swappable snapshot."""

    def __init__(
        self,
        holder: SnapshotHolder,
        *,
        registry: MetricsRegistry | None = None,
        cache_capacity: int = 256,
        capacity: int = 64,
        reloader: Callable[[], StudySnapshot] | None = None,
    ):
        self.holder = holder
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache = ResponseCache(cache_capacity)
        self.capacity = capacity
        self.reloader = reloader
        self.recent_spans: deque[dict] = deque(maxlen=MAX_RECENT_SPANS)
        self._slots = threading.BoundedSemaphore(capacity)
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._routes: list[tuple[str, re.Pattern, str, Handler]] = []
        self._register_routes()

    # -- route table -------------------------------------------------------------

    def _register_routes(self) -> None:
        route = self._add_route
        route("GET", r"/v1/health", "health", self._handle_health)
        route("GET", r"/v1/metrics", "metrics", self._handle_metrics)
        route("GET", r"/v1/tables/(?P<number>[1-6])", "table", self._handle_table)
        route("GET", r"/v1/figures/(?P<number>[1-3])", "figure", self._handle_figure)
        route("GET", r"/v1/roots", "roots", self._handle_roots)
        route(
            "GET",
            r"/v1/roots/(?P<fingerprint>[0-9a-f]{64})",
            "root",
            self._handle_root,
        )
        route(
            "GET",
            r"/v1/sessions/(?P<session_id>[^/]+)/diff",
            "session_diff",
            self._handle_session_diff,
        )
        route(
            "GET", r"/v1/interceptions", "interceptions", self._handle_interceptions
        )
        route(
            "GET",
            r"/v1/interceptions/(?P<campaign>[0-9a-f]{64})",
            "interception",
            self._handle_interception,
        )
        route("GET", r"/v1/scenarios", "scenarios", self._handle_scenarios)
        route("POST", r"/admin/reload", "reload", self._handle_reload)

    def _add_route(self, method: str, pattern: str, name: str, handler: Handler) -> None:
        self._routes.append((method, re.compile(pattern + r"\Z"), name, handler))

    # -- handlers ----------------------------------------------------------------

    def _handle_health(self, snapshot: StudySnapshot, match: re.Match) -> Response:
        payload = {
            "status": "ok",
            "version": __version__,
            "snapshot": snapshot.meta,
        }
        # Health must answer even when every cache line is cold and must
        # reflect the live generation, so it bypasses ETag/LRU handling.
        return Response(200, to_json_bytes(payload))

    def _handle_metrics(self, snapshot: StudySnapshot, match: re.Match) -> Response:
        self._publish_gauges(snapshot)
        return Response(
            200,
            to_json_bytes(self.registry.to_dict()),
            headers=(("Cache-Control", "no-store"),),
        )

    def _handle_table(self, snapshot: StudySnapshot, match: re.Match) -> object:
        return snapshot.table_payload(match.group("number"))

    def _handle_figure(self, snapshot: StudySnapshot, match: re.Match) -> object:
        return snapshot.figure_payload(match.group("number"))

    def _handle_roots(self, snapshot: StudySnapshot, match: re.Match) -> object:
        return snapshot.roots_payload()

    def _handle_root(self, snapshot: StudySnapshot, match: re.Match) -> object:
        return snapshot.root_payload(match.group("fingerprint"))

    def _handle_session_diff(self, snapshot: StudySnapshot, match: re.Match) -> object:
        return snapshot.session_diff_payload(match.group("session_id"))

    def _handle_interceptions(self, snapshot: StudySnapshot, match: re.Match) -> object:
        return snapshot.interceptions_payload()

    def _handle_interception(self, snapshot: StudySnapshot, match: re.Match) -> object:
        return snapshot.interception_payload(match.group("campaign"))

    def _handle_scenarios(self, snapshot: StudySnapshot, match: re.Match) -> object:
        return snapshot.scenarios_payload()

    def _handle_reload(self, snapshot: StudySnapshot, match: re.Match) -> Response:
        if self.reloader is None:
            return Response(501, _error_body(501, "no reloader configured"))
        # One reload at a time; the swap itself is atomic in the holder.
        # A rebuild that raises must not escape handle() — the threaded
        # transport would drop the connection and the evloop would lose
        # its offload thread — and must leave the current snapshot (and
        # therefore every ETag and cache line) untouched.
        with self._reload_lock:
            try:
                fresh = self.reloader()
            except Exception as error:
                self.registry.counter("serve.reload_failures").inc()
                current = self.holder.get()
                return Response(
                    500,
                    to_json_bytes(
                        {
                            "error": {
                                "status": 500,
                                "kind": "reload_failed",
                                "message": f"{type(error).__name__}: {error}",
                                "generation": current.generation,
                            }
                        }
                    ),
                )
            self.holder.swap(fresh)
        self.registry.counter("serve.reloads").inc()
        return Response(
            200,
            to_json_bytes(
                {"status": "reloaded", "generation": fresh.generation}
            ),
        )

    # -- request entry point -----------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Map one request to one response (admission-controlled)."""
        if not self._slots.acquire(blocking=False):
            self.registry.counter("serve.shed").inc()
            self.registry.counter("serve.status.503").inc()
            return Response(
                503,
                _error_body(503, "server saturated, retry shortly"),
                headers=(("Retry-After", str(RETRY_AFTER_SECONDS)),),
            )
        with self._in_flight_lock:
            self._in_flight += 1
        try:
            return self._handle_admitted(request)
        finally:
            with self._in_flight_lock:
                self._in_flight -= 1
            self._slots.release()

    def handle_fast(self, request: Request) -> Response:
        """The event loop's read-only fast lane.

        A cache hit on a GET/HEAD route is answered straight from the
        LRU — counters and the latency histogram still record, but no
        trace span is allocated, which is most of ``handle``'s
        per-request overhead once every body is cached. Anything that
        misses the cache (or isn't a plain read) falls back to the full
        admission-controlled path, so semantics never fork: same
        bodies, same ETags, same shed behaviour under saturation.
        """
        if request.method in ("GET", "HEAD"):
            started = time.perf_counter()
            entry = self.cache.get((self.holder.get().generation, request.path))
            if entry is not None:
                body, etag, content_type = entry
                if request.headers.get("if-none-match") == etag:
                    response = Response(304, b"", headers=(("ETag", etag),))
                else:
                    response = Response(
                        200, body, headers=(("ETag", etag),), content_type=content_type
                    )
                self.registry.counter("serve.requests").inc()
                self.registry.counter(f"serve.status.{response.status}").inc()
                self.registry.histogram("serve.request_seconds").observe(
                    time.perf_counter() - started
                )
                return response
        return self.handle(request)

    # -- drain API ---------------------------------------------------------------

    def in_flight(self) -> int:
        """How many admitted requests are currently being handled.

        A lock-consistent snapshot of the app's own counter — transports
        drain against this instead of groping the admission semaphore's
        private ``_value``.
        """
        with self._in_flight_lock:
            return self._in_flight

    def idle(self) -> bool:
        """True when no admitted request is in flight."""
        return self.in_flight() == 0

    def _handle_admitted(self, request: Request) -> Response:
        tracer = Tracer()
        with tracer.span(
            "serve.request", method=request.method, path=request.path
        ) as span:
            started = time.perf_counter()
            response = self._dispatch(request, span)
            elapsed = time.perf_counter() - started
            span.set("status", response.status)
            self.registry.counter("serve.requests").inc()
            self.registry.counter(f"serve.status.{response.status}").inc()
            self.registry.histogram("serve.request_seconds").observe(elapsed)
        self.recent_spans.append(tracer.to_dict()["spans"][0])
        return response

    def _dispatch(self, request: Request, span) -> Response:
        path_matched = False
        # HEAD routes like GET; the transport omits the body.
        effective_method = "GET" if request.method == "HEAD" else request.method
        for method, pattern, name, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            path_matched = True
            if method != effective_method:
                continue
            span.set("endpoint", name)
            self.registry.counter(f"serve.endpoint.{name}").inc()
            snapshot = self.holder.get()
            outcome = handler(snapshot, match)
            if isinstance(outcome, Response):
                return outcome
            if outcome is None:
                return Response(
                    404, _error_body(404, f"no resource at {request.path}")
                )
            return self._render_cached(request, snapshot, outcome)
        if path_matched:
            return Response(
                405, _error_body(405, f"method {request.method} not allowed")
            )
        return Response(404, _error_body(404, f"no route for {request.path}"))

    def _render_cached(
        self, request: Request, snapshot: StudySnapshot, payload: object
    ) -> Response:
        key = (snapshot.generation, request.path)
        entry = self.cache.get(key)
        if entry is None:
            body = to_json_bytes(payload)
            entry = (body, make_etag(body, snapshot.generation), JSON_CONTENT_TYPE)
            self.cache.put(key, entry)
        body, etag, content_type = entry
        if request.header("if-none-match") == etag:
            return Response(304, b"", headers=(("ETag", etag),))
        return Response(
            200, body, headers=(("ETag", etag),), content_type=content_type
        )

    # -- metrics glue ------------------------------------------------------------

    def _publish_gauges(self, snapshot: StudySnapshot) -> None:
        """Refresh the cache/capacity numbers ``/v1/metrics`` reports.

        The cache numbers come from one locked
        :meth:`~repro.serve.cache.ResponseCache.stats` snapshot — the
        cache is the single bookkeeper. Per-request registry increments
        here would race it (``Counter.inc`` is a plain read-modify-write)
        and drift from the cache's own locked counts.
        """
        self.registry.gauge("serve.snapshot.generation").set(snapshot.generation)
        stats = self.cache.stats()
        self.registry.counter("serve.cache.hits").value = stats["hits"]
        self.registry.counter("serve.cache.misses").value = stats["misses"]
        self.registry.counter("serve.cache.evictions").value = stats["evictions"]
        self.registry.gauge("serve.cache.entries").set(stats["entries"])
        self.registry.gauge("serve.capacity").set(self.capacity)
        self.registry.gauge("serve.in_flight").set(self.in_flight())
