"""Deterministic parallel execution for the study's hot queries.

A thin process-pool layer with fixed chunking, ordered merging and a
serial fallback, so ``run_study(workers=4)`` produces byte-identical
reports to ``workers=1`` — only faster. See :mod:`.executor` for the
determinism argument.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    chunk_ranges,
    resolve_workers,
)

__all__ = ["ParallelExecutor", "chunk_ranges", "resolve_workers"]
