"""Deterministic chunked fan-out over a process pool.

The study's hot queries (per-root validation counts, per-session store
diffs) are embarrassingly parallel maps over an index range. This
executor runs such maps across worker processes while guaranteeing the
*exact* result a serial run produces:

* **Deterministic chunking** — the index range is split into fixed,
  position-based chunks; chunk boundaries depend only on the item count
  and worker count, never on timing.
* **Ordered merge** — chunk results are concatenated in submission
  order, so the flattened output is index-ordered regardless of which
  worker finished first.
* **Serial fallback** — with ``workers <= 1``, with too few items to be
  worth a fork, or on any platform/sandbox where forking fails, the
  same chunk functions run inline in the parent. Both paths execute
  identical code over identical chunks, which is the determinism
  argument: parallelism changes *where* a chunk runs, never *what* it
  computes or in which order it is merged.

Workers are forked (never spawned): the payload — typically a Notary
database or a session corpus, megabytes of certificates — is installed
in a module global in the parent and inherited by the children through
copy-on-write memory, so only the small per-chunk index ranges and the
plain result lists cross the process boundary.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

#: Payload shared with forked workers via copy-on-write inheritance.
_PAYLOAD: object = None


def _run_chunk(fn: Callable, chunk: range) -> list:
    """Worker entry point: apply *fn* to the inherited payload."""
    return fn(_PAYLOAD, chunk)


def chunk_ranges(count: int, chunk_size: int) -> list[range]:
    """Split ``range(count)`` into consecutive chunks of *chunk_size*."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [
        range(start, min(start + chunk_size, count))
        for start in range(0, count, chunk_size)
    ]


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count knob: None/0 → one per CPU, floor 1."""
    if workers is None or workers <= 0:
        return max(os.cpu_count() or 1, 1)
    return workers


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class ParallelExecutor:
    """Maps chunk functions over an index range, possibly in parallel.

    ``workers`` is the process count (1 = fully serial). ``min_items``
    guards against forking for trivially small maps. A fresh pool is
    created per map call; with ~10 fan-out points per study the fork
    cost is negligible against the query work.
    """

    workers: int = 1
    #: below this item count the map always runs serially.
    min_items: int = 8
    #: chunks per worker — >1 smooths out uneven chunk costs.
    chunks_per_worker: int = 4

    @property
    def parallel(self) -> bool:
        """Whether this executor may actually fork."""
        return self.workers > 1

    def map_chunked(
        self, fn: Callable[[object, range], list], payload: object, count: int
    ) -> list:
        """Run ``fn(payload, chunk)`` over every chunk of ``range(count)``.

        *fn* must be a module-level function returning one result per
        index, in index order. The flattened, index-ordered list is
        returned. The result is byte-for-byte identical at any worker
        count.
        """
        if count <= 0:
            return []
        chunk_size = max(
            1, -(-count // (self.workers * self.chunks_per_worker))
        )
        chunks = chunk_ranges(count, chunk_size)
        if (
            not self.parallel
            or count < self.min_items
            or len(chunks) < 2
            or not _fork_available()
        ):
            return self._serial(fn, payload, chunks)
        global _PAYLOAD
        previous = _PAYLOAD
        _PAYLOAD = payload
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(chunks)), mp_context=context
            ) as pool:
                futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
                merged: list = []
                for future in futures:
                    merged.extend(future.result())
                return merged
        except (OSError, PermissionError, BrokenProcessPool):
            # Sandboxes that forbid fork, fd exhaustion, killed workers:
            # degrade to the serial path, which computes the same result.
            return self._serial(fn, payload, chunks)
        finally:
            _PAYLOAD = previous

    @staticmethod
    def _serial(
        fn: Callable[[object, range], list], payload: object, chunks: Sequence[range]
    ) -> list:
        merged: list = []
        for chunk in chunks:
            merged.extend(fn(payload, chunk))
        return merged
