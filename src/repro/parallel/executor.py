"""Deterministic chunked fan-out over a process pool.

The study's hot queries (per-root validation counts, per-session store
diffs) are embarrassingly parallel maps over an index range. This
executor runs such maps across worker processes while guaranteeing the
*exact* result a serial run produces:

* **Deterministic chunking** — the index range is split into fixed,
  position-based chunks; chunk boundaries depend only on the item count
  and worker count, never on timing.
* **Ordered merge** — chunk results are concatenated in submission
  order, so the flattened output is index-ordered regardless of which
  worker finished first.
* **Serial fallback** — with ``workers <= 1``, with too few items to be
  worth a fork, on any platform/sandbox where forking fails, or inside
  an already-running map (re-entrant use), the same chunk functions run
  inline in the parent. Both paths execute identical code over
  identical chunks, which is the determinism argument: parallelism
  changes *where* a chunk runs, never *what* it computes or in which
  order it is merged.

* **Payload exceptions propagate** — an exception raised by the chunk
  function itself (a bug, a genuine ``OSError`` from user code) is
  captured in the worker and re-raised in the parent. Only *pool
  infrastructure* failures (fork refused, a worker killed, fd
  exhaustion) trigger the silent serial fallback; payload errors are
  never masked by a double-executing re-run.

Workers are forked (never spawned): the payload — typically a Notary
database or a session corpus, megabytes of certificates — is installed
in a module global in the parent and inherited by the children through
copy-on-write memory, so only the small per-chunk index ranges and the
plain result lists cross the process boundary.

Every map records telemetry through :mod:`repro.obs`: a per-mode
counter (``parallel.maps_serial`` / ``_forked`` / ``_fallback``), the
chunk count, a ``parallel.map_seconds`` histogram, a reason counter for
every serial decision, and one ``parallel.map`` trace event on the
current span.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import obs

#: Payload shared with forked workers via copy-on-write inheritance.
_PAYLOAD: object = None

#: Depth of currently executing maps in this process. Non-zero while a
#: map runs (in the parent *and*, via ``_run_chunk``, in each worker),
#: so a chunk function that itself calls :meth:`ParallelExecutor.
#: map_chunked` is detected and its inner map runs serially instead of
#: clobbering the module-global payload swap with a nested fork.
_ACTIVE_MAPS: int = 0


class _PoolFailure(Exception):
    """Pool infrastructure broke (not the chunk function); carry why."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _run_chunk(fn: Callable, chunk: range) -> tuple[str, object]:
    """Worker entry point: apply *fn* to the inherited payload.

    The chunk function's own exceptions are returned as ``("err", exc)``
    instead of raised, so the parent can tell a payload failure (re-raise
    it) from pool breakage (fall back to the serial path). The nesting
    counter is held for the duration so re-entrant maps inside the
    worker run serially.
    """
    global _ACTIVE_MAPS
    _ACTIVE_MAPS += 1
    try:
        return "ok", fn(_PAYLOAD, chunk)
    except Exception as exc:
        return "err", exc
    finally:
        _ACTIVE_MAPS -= 1


def chunk_ranges(count: int, chunk_size: int) -> list[range]:
    """Split ``range(count)`` into consecutive chunks of *chunk_size*."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [
        range(start, min(start + chunk_size, count))
        for start in range(0, count, chunk_size)
    ]


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count knob: None/0 → one per CPU, floor 1."""
    if workers is None or workers <= 0:
        return max(os.cpu_count() or 1, 1)
    return workers


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _record_map(
    fn: Callable, workers: int, chunks: Sequence[range],
    mode: str, reason: str, elapsed: float,
) -> None:
    """Publish one map's bookkeeping to the observability layer."""
    obs.counter_inc("parallel.maps")
    obs.counter_inc(f"parallel.maps_{mode}")
    obs.counter_inc("parallel.chunks", len(chunks))
    if reason:
        obs.counter_inc(f"parallel.serial_reason.{reason}")
    obs.observe("parallel.map_seconds", elapsed)
    obs.event(
        "parallel.map",
        fn=getattr(fn, "__qualname__", repr(fn)),
        mode=mode,
        reason=reason,
        workers=workers,
        chunks=len(chunks),
        items=chunks[-1].stop if chunks else 0,
    )


@dataclass(frozen=True)
class ParallelExecutor:
    """Maps chunk functions over an index range, possibly in parallel.

    ``workers`` is the process count (1 = fully serial). ``min_items``
    guards against forking for trivially small maps. A fresh pool is
    created per map call; with ~10 fan-out points per study the fork
    cost is negligible against the query work.
    """

    workers: int = 1
    #: below this item count the map always runs serially.
    min_items: int = 8
    #: chunks per worker — >1 smooths out uneven chunk costs.
    chunks_per_worker: int = 4

    @property
    def parallel(self) -> bool:
        """Whether this executor may actually fork."""
        return self.workers > 1

    def _serial_reason(self, nested: bool, count: int, chunks: int) -> str:
        """Why this map must run serially, or "" to allow forking."""
        if nested:
            return "nested-map"
        if not self.parallel:
            return "single-worker"
        if count < self.min_items:
            return "below-min-items"
        if chunks < 2:
            return "single-chunk"
        if not _fork_available():
            return "fork-unavailable"
        return ""

    def map_chunked(
        self, fn: Callable[[object, range], list], payload: object, count: int
    ) -> list:
        """Run ``fn(payload, chunk)`` over every chunk of ``range(count)``.

        *fn* must be a module-level function returning one result per
        index, in index order. The flattened, index-ordered list is
        returned. The result is byte-for-byte identical at any worker
        count. Exceptions raised by *fn* propagate (from the first
        failing chunk in index order); only pool-infrastructure
        failures degrade to the serial path.
        """
        if count <= 0:
            return []
        chunk_size = max(
            1, -(-count // (self.workers * self.chunks_per_worker))
        )
        chunks = chunk_ranges(count, chunk_size)
        global _ACTIVE_MAPS
        reason = self._serial_reason(_ACTIVE_MAPS > 0, count, len(chunks))
        mode = "serial" if reason else "forked"
        started = time.perf_counter()
        _ACTIVE_MAPS += 1
        try:
            if mode == "forked":
                try:
                    return self._forked(fn, payload, chunks)
                except _PoolFailure as failure:
                    # Sandboxes that forbid fork, fd exhaustion, killed
                    # workers: degrade to the serial path, which
                    # computes the same result.
                    mode, reason = "fallback", failure.reason
            return self._serial(fn, payload, chunks)
        finally:
            _ACTIVE_MAPS -= 1
            _record_map(
                fn, self.workers, chunks, mode, reason,
                time.perf_counter() - started,
            )

    def _forked(
        self, fn: Callable[[object, range], list], payload: object,
        chunks: Sequence[range],
    ) -> list:
        """Fan the chunks over a fork pool; raise :class:`_PoolFailure`
        on infrastructure breakage, re-raise payload exceptions as-is."""
        global _PAYLOAD
        previous = _PAYLOAD
        _PAYLOAD = payload
        outcomes: list[tuple[str, object]] = []
        try:
            context = multiprocessing.get_context("fork")
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(chunks)),
                    mp_context=context,
                ) as pool:
                    futures = [
                        pool.submit(_run_chunk, fn, chunk) for chunk in chunks
                    ]
                    for future in futures:
                        outcomes.append(future.result())
            except (OSError, PermissionError, BrokenProcessPool) as exc:
                # ``_run_chunk`` returns the chunk function's exceptions
                # as values, so anything raised *here* is pool
                # infrastructure: fork refused, a worker killed, a
                # broken result pipe — never fn's own error.
                raise _PoolFailure(type(exc).__name__) from exc
        finally:
            _PAYLOAD = previous
        merged: list = []
        for status, value in outcomes:
            if status == "err":
                raise value  # the chunk function's own exception
            merged.extend(value)
        return merged

    @staticmethod
    def _serial(
        fn: Callable[[object, range], list], payload: object, chunks: Sequence[range]
    ) -> list:
        merged: list = []
        for chunk in chunks:
            merged.extend(fn(payload, chunk))
        return merged
