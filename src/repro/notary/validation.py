"""Validation-count queries over the Notary (Tables 3-4, Figure 3).

The per-root sweep is the study's hottest loop (hundreds of roots ×
thousands of candidate leaves). It optionally fans out over a
:class:`repro.parallel.ParallelExecutor`: the root list is chunked
deterministically and each worker computes its chunk's counts against
the (fork-inherited) notary, so the merged list is identical to the
serial one at any worker count.
"""

from __future__ import annotations

from typing import Iterable

from repro.notary.database import NotaryDatabase
from repro.parallel.executor import ParallelExecutor
from repro.rootstore.store import RootStore
from repro.x509.certificate import Certificate


def store_validation_count(
    notary: NotaryDatabase, store: RootStore, *, include_expired: bool = False
) -> int:
    """Table 3's statistic: distinct Notary leaves a store validates."""
    return notary.validated_by_store(store, include_expired=include_expired)


def _counts_chunk(payload: object, chunk: range) -> list[int]:
    """Per-root counts for one chunk of the root list (worker entry)."""
    notary, roots, include_expired = payload
    return [
        notary.validated_by_root(roots[index], include_expired=include_expired)
        for index in chunk
    ]


def validation_counts_by_root(
    notary: NotaryDatabase,
    roots: Iterable[Certificate],
    *,
    include_expired: bool = False,
    executor: ParallelExecutor | None = None,
) -> list[int]:
    """Per-root validated-leaf counts (Figure 3's underlying variable)."""
    roots = list(roots)
    if executor is None:
        executor = ParallelExecutor()
    payload = (notary, roots, include_expired)
    return executor.map_chunked(_counts_chunk, payload, len(roots))


def fraction_validating_nothing(
    notary: NotaryDatabase,
    roots: Iterable[Certificate],
    *,
    include_expired: bool = False,
    executor: ParallelExecutor | None = None,
) -> float:
    """Table 4's offset: fraction of roots validating zero leaves."""
    counts = validation_counts_by_root(
        notary, roots, include_expired=include_expired, executor=executor
    )
    if not counts:
        raise ValueError("empty root collection")
    return sum(1 for count in counts if count == 0) / len(counts)
