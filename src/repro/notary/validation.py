"""Validation-count queries over the Notary (Tables 3-4, Figure 3)."""

from __future__ import annotations

from typing import Iterable

from repro.notary.database import NotaryDatabase
from repro.rootstore.store import RootStore
from repro.x509.certificate import Certificate


def store_validation_count(
    notary: NotaryDatabase, store: RootStore, *, include_expired: bool = False
) -> int:
    """Table 3's statistic: distinct Notary leaves a store validates."""
    return notary.validated_by_store(store, include_expired=include_expired)


def validation_counts_by_root(
    notary: NotaryDatabase,
    roots: Iterable[Certificate],
    *,
    include_expired: bool = False,
) -> list[int]:
    """Per-root validated-leaf counts (Figure 3's underlying variable)."""
    return [
        notary.validated_by_root(root, include_expired=include_expired)
        for root in roots
    ]


def fraction_validating_nothing(
    notary: NotaryDatabase, roots: Iterable[Certificate]
) -> float:
    """Table 4's offset: fraction of roots validating zero current leaves."""
    counts = validation_counts_by_root(notary, roots)
    if not counts:
        raise ValueError("empty root collection")
    return sum(1 for count in counts if count == 0) / len(counts)
