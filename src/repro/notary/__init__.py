"""The ICSI Certificate Notary simulator.

The real Notary passively collects certificates from live traffic at
eight research networks (§4.2). The simulator ingests the synthetic
traffic population from :mod:`repro.tlssim.traffic` and answers the two
queries the paper issues against it:

* *has the Notary any record of this certificate?* (Figure 2's
  "not recorded" class), and
* *how many observed TLS certificates can this root (or root store)
  validate?* (Tables 3-4, Figure 3).
"""

from repro.notary.database import NotaryDatabase, build_notary
from repro.notary.validation import (
    fraction_validating_nothing,
    store_validation_count,
    validation_counts_by_root,
)
from repro.notary.reports import EcosystemReport, ecosystem_report

__all__ = [
    "NotaryDatabase",
    "build_notary",
    "fraction_validating_nothing",
    "store_validation_count",
    "validation_counts_by_root",
    "EcosystemReport",
    "ecosystem_report",
]
