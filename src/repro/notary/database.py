"""The Notary's certificate database and record queries."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.crypto.pkcs1 import SignatureError
from repro.crypto.rsa import RsaPublicKey
from repro.faults.ingest import CertificateUpload, ingest_certificate
from repro.faults.injector import FaultInjector
from repro.faults.quarantine import Quarantine
from repro.rootstore.catalog import CaCatalog, default_catalog
from repro.rootstore.factory import CertificateFactory
from repro.rootstore.store import RootStore
from repro.tlssim.traffic import ObservedLeaf, TlsTrafficGenerator
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import identity_key
from repro.x509.verify import verify_certificate_signature


@dataclass
class NotaryDatabase:
    """Certificates observed in traffic, indexed for validation queries.

    Mirrors the real Notary's content: leaf certificates from live
    sessions (current and expired) plus the root certificates observed
    in those sessions' chains. Official root stores can additionally be
    *registered* (the real Notary stores the Android/iOS7/Mozilla stores
    for comparison), but registration does not make a root "observed".
    """

    leaves: list[ObservedLeaf] = field(default_factory=list)
    #: identity-key set of every certificate ever observed in traffic.
    _observed: set[tuple[int, bytes]] = field(default_factory=set)
    #: leaves indexed by issuer subject (normalized) for fast validation.
    _by_issuer: dict[object, list[ObservedLeaf]] = field(default_factory=dict)
    #: observed intermediates indexed by *their* issuer subject.
    _intermediates_by_issuer: dict[object, list[Certificate]] = field(
        default_factory=dict
    )
    #: registered store certificates (known, but not traffic-observed).
    _registered: set[tuple[int, bytes]] = field(default_factory=set)
    #: memoized per-root-key validation counts.
    _count_cache: dict[tuple[int, int, bool], int] = field(default_factory=dict)
    #: dead-letter list of observations that failed validation.
    quarantine: Quarantine = field(default_factory=Quarantine)

    # -- ingestion ---------------------------------------------------------------

    def observe_leaf(self, leaf: ObservedLeaf, chain_roots: tuple[Certificate, ...] = ()) -> None:
        """Record one leaf (and any chain certificates seen with it)."""
        self.leaves.append(leaf)
        self._observed.add(identity_key(leaf.certificate))
        key = leaf.certificate.issuer.normalized()
        self._by_issuer.setdefault(key, []).append(leaf)
        for intermediate in leaf.intermediates:
            inter_key = identity_key(intermediate)
            if inter_key not in self._observed:
                self._observed.add(inter_key)
                self._intermediates_by_issuer.setdefault(
                    intermediate.issuer.normalized(), []
                ).append(intermediate)
        for root in chain_roots:
            self._observed.add(identity_key(root))
        self._count_cache.clear()

    def ingest_leaf(
        self,
        leaf: ObservedLeaf,
        chain_roots: tuple[Certificate, ...] = (),
        *,
        payload: CertificateUpload | None = None,
        where: str = "",
    ) -> bool:
        """Validating :meth:`observe_leaf`: never raises.

        ``payload`` is the certificate as it actually arrived off the
        tap (possibly corrupted bytes); when it fails validation the
        observation is dead-lettered in :attr:`quarantine` and the
        database is left untouched. Returns True when ingested.
        """
        if payload is None:
            payload = CertificateUpload(payload=leaf.certificate)
        certificate = ingest_certificate(
            payload, self.quarantine, where or f"notary:{leaf.host}"
        )
        if certificate is None:
            return False
        if certificate is not leaf.certificate:
            leaf = replace(leaf, certificate=certificate)
        self.observe_leaf(leaf, chain_roots=chain_roots)
        return True

    def register_store(self, store: RootStore) -> None:
        """Load an official root store for comparison queries."""
        for certificate in store.certificates(include_disabled=True):
            self._registered.add(identity_key(certificate))

    # -- record queries -----------------------------------------------------------

    def has_record(self, certificate: Certificate) -> bool:
        """True if the Notary knows this certificate at all (traffic or
        registered store)."""
        key = identity_key(certificate)
        return key in self._observed or key in self._registered

    def seen_in_traffic(self, certificate: Certificate) -> bool:
        """True if the certificate was observed in live traffic."""
        return identity_key(certificate) in self._observed

    # -- validation queries ----------------------------------------------------------

    @property
    def total_certificates(self) -> int:
        """All recorded leaf certificates (the paper's 1.9 M analogue)."""
        return len(self.leaves)

    @property
    def current_certificates(self) -> int:
        """Non-expired leaves (the paper's ~1 M analogue)."""
        return sum(1 for leaf in self.leaves if not leaf.expired)

    @property
    def total_sessions(self) -> int:
        """Total observed TLS sessions (the paper's 66 B analogue)."""
        return sum(leaf.session_count for leaf in self.leaves)

    def sessions_validated_by_store(self, store: RootStore) -> int:
        """Sessions (not certificates) whose leaf the store validates.

        §5.3's claim is phrased over *sessions*: "the subset of AOSP
        certificates that are also included on Mozilla root store can
        validate most TLS sessions" — the volume-weighted view.
        """
        seen: set[tuple[int, bytes]] = set()
        total = 0
        for root in store.certificates():
            for leaf in self._leaves_under(root):
                if leaf.expired:
                    continue
                leaf_key = identity_key(leaf.certificate)
                if leaf_key in seen:
                    continue
                seen.add(leaf_key)
                total += leaf.session_count
        return total

    @property
    def current_sessions(self) -> int:
        """Sessions carried by non-expired leaves."""
        return sum(
            leaf.session_count for leaf in self.leaves if not leaf.expired
        )

    def _leaves_under(self, anchor: Certificate):
        """Yield leaves whose chain resolves to *anchor*'s key: directly
        issued leaves plus leaves issued by an observed intermediate the
        anchor signed (one level, matching real web chain shapes)."""
        for leaf in self._by_issuer.get(anchor.subject.normalized(), []):
            if _verifies(leaf.certificate, anchor.public_key):
                yield leaf
        for intermediate in self._intermediates_by_issuer.get(
            anchor.subject.normalized(), []
        ):
            if not _verifies(intermediate, anchor.public_key):
                continue
            for leaf in self._by_issuer.get(intermediate.subject.normalized(), []):
                if _verifies(leaf.certificate, intermediate.public_key):
                    yield leaf

    def validated_by_root(
        self, root: Certificate, *, include_expired: bool = False
    ) -> int:
        """Number of recorded leaves this root's key validates
        (directly or through an observed intermediate)."""
        cache_key = (root.public_key.modulus, root.public_key.exponent, include_expired)
        if cache_key in self._count_cache:
            return self._count_cache[cache_key]
        count = sum(
            1
            for leaf in self._leaves_under(root)
            if include_expired or not leaf.expired
        )
        self._count_cache[cache_key] = count
        return count

    def validated_by_store(
        self, store: RootStore, *, include_expired: bool = False
    ) -> int:
        """Number of distinct recorded leaves the store validates.

        Equivalent roots (same key) validate the same leaves, so the sum
        is deduplicated by leaf.
        """
        seen: set[tuple[int, bytes]] = set()
        count = 0
        for root in store.certificates():
            for leaf in self._leaves_under(root):
                if leaf.expired and not include_expired:
                    continue
                leaf_key = identity_key(leaf.certificate)
                if leaf_key in seen:
                    continue
                seen.add(leaf_key)
                count += 1
        return count


_VERIFY_CACHE: dict[tuple[bytes, int], bool] = {}


def _verifies(leaf: Certificate, key: RsaPublicKey) -> bool:
    """Memoized signature check of *leaf* under *key*."""
    cache_key = (leaf.signature, key.modulus)
    cached = _VERIFY_CACHE.get(cache_key)
    if cached is not None:
        return cached
    try:
        verify_certificate_signature(leaf, key)
    except SignatureError:
        result = False
    else:
        result = True
    _VERIFY_CACHE[cache_key] = result
    return result


def build_notary(
    factory: CertificateFactory | None = None,
    catalog: CaCatalog | None = None,
    *,
    scale: float = 1.0,
    register_stores: tuple[RootStore, ...] = (),
    injector: FaultInjector | None = None,
) -> NotaryDatabase:
    """Generate the calibrated traffic population and ingest it.

    Roots that sign observed leaves are themselves marked observed
    (their certificates travel in the session chains the Notary taps).

    With a fault ``injector``, a configurable fraction of leaf
    observations arrive corrupted off the tap; they are dead-lettered
    in ``notary.quarantine`` instead of entering the database.
    """
    factory = factory or CertificateFactory()
    catalog = catalog or default_catalog()
    generator = TlsTrafficGenerator(factory, catalog, scale=scale)
    notary = NotaryDatabase()
    for profile in catalog.all_profiles():
        root = factory.root_certificate(profile)
        for leaf in generator.leaves_for_profile(profile):
            if injector is not None:
                where = f"notary:{leaf.host}"
                corrupted = injector.corrupt_leaf(where, leaf.certificate)
                if corrupted is not None:
                    notary.ingest_leaf(
                        leaf, chain_roots=(root,), payload=corrupted, where=where
                    )
                    continue
            notary.observe_leaf(leaf, chain_roots=(root,))
    for store in register_stores:
        notary.register_store(store)
    return notary
