"""The Notary's certificate database and record queries.

Validation queries run on a layered fast path:

1. every RSA signature check goes through the process-wide
   :class:`repro.crypto.cache.VerificationCache` (one modular
   exponentiation per distinct (key, TBS, signature) triple, ever);
2. the set of leaves an anchor validates is memoized per anchor
   (``_under_cache``), so store-level queries stop re-walking and
   re-verifying per store;
3. per-root counts are memoized on top (``_count_cache``).

Both notary-level memos key on the anchor's *identity and subject* —
``(modulus, exponent, signature, subject)`` — because ``_leaves_under``
matches anchors by subject name before it verifies by key: two roots
sharing a key but carrying different subjects (cross-signed variants)
validate different leaf sets and must never share a cache line.

Ingesting a leaf invalidates incrementally: only the anchor subjects
the new observation can affect (its issuer subject, plus the issuers of
any observed intermediate carrying that subject) are dropped, not the
whole memo. The verification cache itself never needs invalidation —
signature verdicts are immutable facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import obs
from repro.crypto.cache import fastpath_enabled
from repro.faults.ingest import CertificateUpload, ingest_certificate
from repro.faults.injector import FaultInjector
from repro.faults.quarantine import Quarantine
from repro.parallel.executor import ParallelExecutor
from repro.rootstore.catalog import CaCatalog, default_catalog
from repro.rootstore.factory import CertificateFactory
from repro.rootstore.store import RootStore
from repro.storage.backend import StorageBackend
from repro.storage.leafstore import ShardedLeafList, shard_key_for
from repro.tlssim.traffic import (
    ObservedLeaf,
    TlsTrafficGenerator,
    materialize_plans,
)
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import identity_key
from repro.x509.verify import verify_signature

#: Cache key of one trust anchor: key identity *and* subject (see
#: module docstring for why the subject must participate).
AnchorKey = tuple[int, int, bytes, object]


def _anchor_key(anchor: Certificate) -> AnchorKey:
    key = anchor.public_key
    return (key.modulus, key.exponent, anchor.signature, anchor.subject.normalized())


@dataclass
class NotaryDatabase:
    """Certificates observed in traffic, indexed for validation queries.

    Mirrors the real Notary's content: leaf certificates from live
    sessions (current and expired) plus the root certificates observed
    in those sessions' chains. Official root stores can additionally be
    *registered* (the real Notary stores the Android/iOS7/Mozilla stores
    for comparison), but registration does not make a root "observed".
    """

    leaves: list[ObservedLeaf] = field(default_factory=list)
    #: identity-key set of every certificate ever observed in traffic.
    _observed: set[tuple[int, bytes]] = field(default_factory=set)
    #: leaf indices (into :attr:`leaves`) by issuer subject (normalized).
    _by_issuer: dict[object, list[int]] = field(default_factory=dict)
    #: identity key of each leaf, aligned with :attr:`leaves`.
    _leaf_identity: list[tuple[int, bytes]] = field(default_factory=list)
    #: observed intermediates indexed by *their* issuer subject.
    _intermediates_by_issuer: dict[object, list[Certificate]] = field(
        default_factory=dict
    )
    #: issuer subjects of observed intermediates, by intermediate subject
    #: (the reverse edge incremental invalidation walks).
    _intermediate_issuers: dict[object, set[object]] = field(default_factory=dict)
    #: registered store certificates (known, but not traffic-observed).
    _registered: set[tuple[int, bytes]] = field(default_factory=set)
    #: memoized leaf-index sets per anchor (the root→leaf-set index).
    _under_cache: dict[AnchorKey, tuple[int, ...]] = field(default_factory=dict)
    #: memoized per-anchor validation counts.
    _count_cache: dict[tuple[AnchorKey, bool], int] = field(default_factory=dict)
    #: cached anchor keys grouped by anchor subject, for invalidation.
    _anchors_by_subject: dict[object, set[AnchorKey]] = field(default_factory=dict)
    #: dead-letter list of observations that failed validation.
    quarantine: Quarantine = field(default_factory=Quarantine)
    #: persistent storage backend; None keeps the in-memory leaf list.
    backend: StorageBackend | None = None

    def __post_init__(self) -> None:
        if self.backend is not None and not self.leaves:
            self.leaves = self.backend.leaf_sequence()

    # -- ingestion ---------------------------------------------------------------

    def observe_leaf(self, leaf: ObservedLeaf, chain_roots: tuple[Certificate, ...] = ()) -> None:
        """Record one leaf (and any chain certificates seen with it)."""
        index = len(self.leaves)
        if isinstance(self.leaves, ShardedLeafList):
            # Disk-backed: shard the record by the anchoring root's
            # fingerprint, so per-root queries read one shard file.
            self.leaves.append(
                leaf,
                shard_key=shard_key_for(
                    chain_roots[0] if chain_roots else None,
                    leaf.certificate.issuer.normalized(),
                ),
            )
        else:
            self.leaves.append(leaf)
        leaf_key = identity_key(leaf.certificate)
        self._leaf_identity.append(leaf_key)
        self._observed.add(leaf_key)
        issuer_subject = leaf.certificate.issuer.normalized()
        self._by_issuer.setdefault(issuer_subject, []).append(index)
        touched = {issuer_subject}
        for intermediate in leaf.intermediates:
            inter_key = identity_key(intermediate)
            if inter_key not in self._observed:
                self._observed.add(inter_key)
                inter_issuer = intermediate.issuer.normalized()
                self._intermediates_by_issuer.setdefault(
                    inter_issuer, []
                ).append(intermediate)
                self._intermediate_issuers.setdefault(
                    intermediate.subject.normalized(), set()
                ).add(inter_issuer)
                # A new intermediate can connect its issuer's anchors to
                # leaves already observed under the intermediate's subject.
                touched.add(inter_issuer)
        for root in chain_roots:
            self._observed.add(identity_key(root))
        # Anchors reaching this leaf through an already-observed
        # intermediate named like its issuer are affected too.
        touched |= self._intermediate_issuers.get(issuer_subject, set())
        self._invalidate_subjects(touched)

    def ingest_leaf(
        self,
        leaf: ObservedLeaf,
        chain_roots: tuple[Certificate, ...] = (),
        *,
        payload: CertificateUpload | None = None,
        where: str = "",
    ) -> bool:
        """Validating :meth:`observe_leaf`: never raises.

        ``payload`` is the certificate as it actually arrived off the
        tap (possibly corrupted bytes); when it fails validation the
        observation is dead-lettered in :attr:`quarantine` and the
        database is left untouched. Returns True when ingested.
        """
        if payload is None:
            payload = CertificateUpload(payload=leaf.certificate)
        certificate = ingest_certificate(
            payload, self.quarantine, where or f"notary:{leaf.host}"
        )
        if certificate is None:
            return False
        if certificate is not leaf.certificate:
            leaf = replace(leaf, certificate=certificate)
        self.observe_leaf(leaf, chain_roots=chain_roots)
        return True

    def register_store(self, store: RootStore) -> None:
        """Load an official root store for comparison queries."""
        for certificate in store.certificates(include_disabled=True):
            self._registered.add(identity_key(certificate))

    # -- fast-path cache management ----------------------------------------------

    def _invalidate_subjects(self, subjects: set[object]) -> None:
        """Drop the memoized leaf sets and counts anchored at *subjects*."""
        dropped = 0
        for subject in subjects:
            anchor_keys = self._anchors_by_subject.pop(subject, None)
            if not anchor_keys:
                continue
            for anchor_key in anchor_keys:
                self._under_cache.pop(anchor_key, None)
                self._count_cache.pop((anchor_key, False), None)
                self._count_cache.pop((anchor_key, True), None)
                dropped += 1
        if dropped:
            obs.counter_inc("notary.index_invalidations", dropped)

    def reset_fastpath(self) -> None:
        """Drop every derived index (the benchmark's cold-start lever)."""
        self._under_cache.clear()
        self._count_cache.clear()
        self._anchors_by_subject.clear()

    def fastpath_index_sizes(self) -> dict[str, int]:
        """Current sizes of the notary-level memo layers."""
        return {
            "anchor_leaf_sets": len(self._under_cache),
            "count_memos": len(self._count_cache),
        }

    # -- record queries -----------------------------------------------------------

    def has_record(self, certificate: Certificate) -> bool:
        """True if the Notary knows this certificate at all (traffic or
        registered store)."""
        key = identity_key(certificate)
        return key in self._observed or key in self._registered

    def seen_in_traffic(self, certificate: Certificate) -> bool:
        """True if the certificate was observed in live traffic."""
        return identity_key(certificate) in self._observed

    # -- validation queries ----------------------------------------------------------

    def _leaf_expired(self, index: int) -> bool:
        """Expiry flag of one leaf, without rehydrating a disk record."""
        leaves = self.leaves
        if isinstance(leaves, ShardedLeafList):
            return leaves.expired_at(index)
        return leaves[index].expired

    def _leaf_sessions(self, index: int) -> int:
        """Session count of one leaf, without rehydrating a disk record."""
        leaves = self.leaves
        if isinstance(leaves, ShardedLeafList):
            return leaves.session_count_at(index)
        return leaves[index].session_count

    @property
    def total_certificates(self) -> int:
        """All recorded leaf certificates (the paper's 1.9 M analogue)."""
        return len(self.leaves)

    @property
    def current_certificates(self) -> int:
        """Non-expired leaves (the paper's ~1 M analogue)."""
        return sum(
            1 for index in range(len(self.leaves)) if not self._leaf_expired(index)
        )

    @property
    def total_sessions(self) -> int:
        """Total observed TLS sessions (the paper's 66 B analogue)."""
        return sum(
            self._leaf_sessions(index) for index in range(len(self.leaves))
        )

    @property
    def current_sessions(self) -> int:
        """Sessions carried by non-expired leaves."""
        return sum(
            self._leaf_sessions(index)
            for index in range(len(self.leaves))
            if not self._leaf_expired(index)
        )

    def _iter_leaf_indices_under(self, anchor: Certificate):
        """Yield indices of leaves whose chain resolves to *anchor*'s
        key: directly issued leaves plus leaves issued by an observed
        intermediate the anchor signed (one level, matching real web
        chain shapes)."""
        subject = anchor.subject.normalized()
        key = anchor.public_key
        for index in self._by_issuer.get(subject, ()):
            if verify_signature(self.leaves[index].certificate, key):
                yield index
        for intermediate in self._intermediates_by_issuer.get(subject, ()):
            if not verify_signature(intermediate, key):
                continue
            for index in self._by_issuer.get(
                intermediate.subject.normalized(), ()
            ):
                if verify_signature(
                    self.leaves[index].certificate, intermediate.public_key
                ):
                    yield index

    def _leaf_indices_under(self, anchor: Certificate) -> tuple[int, ...]:
        """The memoized root→leaf-set index (bypassed when the fast
        path is disabled)."""
        if not fastpath_enabled():
            return tuple(self._iter_leaf_indices_under(anchor))
        anchor_key = _anchor_key(anchor)
        cached = self._under_cache.get(anchor_key)
        if cached is None:
            cached = tuple(self._iter_leaf_indices_under(anchor))
            self._under_cache[anchor_key] = cached
            self._anchors_by_subject.setdefault(anchor_key[3], set()).add(
                anchor_key
            )
            obs.counter_inc("notary.index_builds")
        return cached

    def _leaves_under(self, anchor: Certificate):
        """Yield the leaves whose chain resolves to *anchor*'s key."""
        for index in self._leaf_indices_under(anchor):
            yield self.leaves[index]

    def validated_by_root(
        self, root: Certificate, *, include_expired: bool = False
    ) -> int:
        """Number of recorded leaves this root's key validates
        (directly or through an observed intermediate)."""
        use_cache = fastpath_enabled()
        if use_cache:
            count_key = (_anchor_key(root), include_expired)
            cached = self._count_cache.get(count_key)
            if cached is not None:
                return cached
        count = sum(
            1
            for index in self._leaf_indices_under(root)
            if include_expired or not self._leaf_expired(index)
        )
        if use_cache:
            self._count_cache[count_key] = count
        return count

    def validated_by_store(
        self, store: RootStore, *, include_expired: bool = False
    ) -> int:
        """Number of distinct recorded leaves the store validates.

        Equivalent roots (same key) validate the same leaves, so the sum
        is deduplicated by leaf.
        """
        seen: set[tuple[int, bytes]] = set()
        count = 0
        for root in store.certificates():
            for index in self._leaf_indices_under(root):
                if not include_expired and self._leaf_expired(index):
                    continue
                leaf_key = self._leaf_identity[index]
                if leaf_key in seen:
                    continue
                seen.add(leaf_key)
                count += 1
        return count

    def sessions_validated_by_store(self, store: RootStore) -> int:
        """Sessions (not certificates) whose leaf the store validates.

        §5.3's claim is phrased over *sessions*: "the subset of AOSP
        certificates that are also included on Mozilla root store can
        validate most TLS sessions" — the volume-weighted view.
        """
        seen: set[tuple[int, bytes]] = set()
        total = 0
        for root in store.certificates():
            for index in self._leaf_indices_under(root):
                if self._leaf_expired(index):
                    continue
                leaf_key = self._leaf_identity[index]
                if leaf_key in seen:
                    continue
                seen.add(leaf_key)
                total += self._leaf_sessions(index)
        return total


#: Most leaf plans materialized (and thus parsed leaves held) in RAM at
#: once on the parallel build path. Bounds build memory independently of
#: scale; each window is one deterministic fan-out, so the ingest order
#: — and therefore the database — is unchanged at any window size.
MATERIALIZE_WINDOW = 4096


def build_notary(
    factory: CertificateFactory | None = None,
    catalog: CaCatalog | None = None,
    *,
    scale: float = 1.0,
    register_stores: tuple[RootStore, ...] = (),
    injector: FaultInjector | None = None,
    executor: ParallelExecutor | None = None,
    generator: TlsTrafficGenerator | None = None,
    backend: StorageBackend | None = None,
) -> NotaryDatabase:
    """Generate the calibrated traffic population and ingest it.

    Roots that sign observed leaves are themselves marked observed
    (their certificates travel in the session chains the Notary taps).

    With an ``executor``, key generation and leaf materialization fan
    out across worker processes; the ingest loop itself stays serial in
    the same canonical (catalog-profile) order, so the database is
    byte-identical at any worker count.

    With a fault ``injector``, a configurable fraction of leaf
    observations arrive corrupted off the tap; they are dead-lettered
    in ``notary.quarantine`` instead of entering the database. Fault
    injection happens at observation time, after materialization, so it
    composes with the parallel build path unchanged.

    ``generator`` substitutes a pre-built (typically pre-warmed)
    traffic generator; its scale overrides the ``scale`` argument.

    With a storage ``backend``, leaves stream straight into the
    backend's sharded store as they are ingested; the parallel path
    then materializes in bounded windows (:data:`MATERIALIZE_WINDOW`)
    instead of all at once, so peak memory stays flat as scale grows.
    """
    if generator is not None:
        factory, catalog = generator.factory, generator.catalog
    else:
        factory = factory or CertificateFactory()
        catalog = catalog or default_catalog()
        generator = TlsTrafficGenerator(factory, catalog, scale=scale)
    notary = NotaryDatabase(backend=backend)
    profiles = list(catalog.all_profiles())
    build_span = obs.span(
        "notary.build",
        scale=getattr(generator, "scale", 0.0),
        profiles=len(profiles),
        workers=0 if executor is None else executor.workers,
        faults=injector is not None,
    )
    with build_span as span:
        for _ in ingest_leaves(
            notary,
            generator,
            profiles,
            factory,
            injector=injector,
            executor=executor,
        ):
            pass
        for store in register_stores:
            notary.register_store(store)
        span.set("leaves", notary.total_certificates)
        span.set("quarantined", len(notary.quarantine))
    return notary


def ingest_leaves(
    notary: NotaryDatabase,
    generator: TlsTrafficGenerator,
    profiles: list,
    factory: CertificateFactory,
    *,
    injector: FaultInjector | None = None,
    executor: ParallelExecutor | None = None,
):
    """Materialize and ingest the traffic universe one leaf at a time.

    The generator behind :func:`build_notary` and the stream engine's
    live tap: each step lands one leaf observation in *notary* (through
    the dead-lettering ingest path when a fault ``injector`` is active)
    and yields it. Materialization still happens in bounded windows of
    :data:`MATERIALIZE_WINDOW` plans when an ``executor`` is present —
    the fan-out is per window, but consumption stays per leaf — so peak
    memory is O(window) however the consumer paces itself. Draining the
    whole generator leaves the database byte-identical to a batch build
    at any worker count or pacing.
    """

    def drain_window(window):
        plans = [plan for _, group in window for plan in group]
        leaves = materialize_plans(generator, plans, executor)
        cursor = 0
        for profile, group in window:
            yield profile, leaves[cursor : cursor + len(group)]
            cursor += len(group)

    def profile_leaves():
        if executor is None:
            for profile in profiles:
                yield profile, generator.leaves_for_profile(profile)
            return
        generator.warm(executor)
        # Materialize in bounded windows: each window is its own
        # deterministic fan-out over the executor, and consumed leaves
        # are dropped before the next window is built, so peak memory
        # is O(window), not O(universe).
        window: list[tuple[object, list]] = []
        pending = 0
        for profile in profiles:
            group = list(generator.plans_for_profile(profile))
            window.append((profile, group))
            pending += len(group)
            if pending >= MATERIALIZE_WINDOW:
                yield from drain_window(window)
                window, pending = [], 0
        if window:
            yield from drain_window(window)

    for profile, profile_leaf_set in profile_leaves():
        root = factory.root_certificate(profile)
        for leaf in profile_leaf_set:
            if injector is not None:
                where = f"notary:{leaf.host}"
                corrupted = injector.corrupt_leaf(where, leaf.certificate)
                if corrupted is not None:
                    notary.ingest_leaf(
                        leaf, chain_roots=(root,), payload=corrupted, where=where
                    )
                    yield leaf
                    continue
            notary.observe_leaf(leaf, chain_roots=(root,))
            yield leaf
