"""Ecosystem reports over the Notary database.

The companion analyses the real Notary powers (Amann et al., the
paper's ref [16]) characterize the observed certificate ecosystem:
issuer concentration, chain shapes, validity periods, key sizes. The
same statistics over the simulated corpus both sanity-check the traffic
model and give downstream users the query surface they'd expect from a
notary."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.notary.database import NotaryDatabase


@dataclass(frozen=True)
class EcosystemReport:
    """Aggregate statistics over the observed leaf population."""

    total_leaves: int
    current_leaves: int
    expired_fraction: float
    issuing_ca_count: int
    top_issuers: tuple[tuple[str, int], ...]
    issuer_concentration_top10: float
    chain_depth_distribution: dict[int, int]
    via_intermediate_fraction: float
    key_size_distribution: dict[int, int]
    median_validity_days: float
    session_weighted_top10: float

    def render(self) -> str:
        """Human-readable report."""
        lines = [
            "Notary ecosystem report",
            f"  leaves: {self.total_leaves:,} "
            f"({self.expired_fraction:.0%} expired)",
            f"  issuing CAs observed: {self.issuing_ca_count}",
            f"  top-10 issuer share: {self.issuer_concentration_top10:.0%} of leaves, "
            f"{self.session_weighted_top10:.0%} of sessions",
            f"  leaves issued via intermediates: {self.via_intermediate_fraction:.0%}",
            f"  median leaf validity: {self.median_validity_days:.0f} days",
            "  top issuers:",
        ]
        for name, count in self.top_issuers:
            lines.append(f"    {count:>6,}  {name}")
        return "\n".join(lines)


def ecosystem_report(notary: NotaryDatabase, *, top: int = 10) -> EcosystemReport:
    """Compute the ecosystem statistics for a Notary."""
    if not notary.leaves:
        raise ValueError("empty notary")
    issuer_counts = Counter(leaf.issuer_name for leaf in notary.leaves)
    issuer_sessions = Counter()
    depth_counts: Counter = Counter()
    key_sizes: Counter = Counter()
    validity_days: list[float] = []
    via_intermediate = 0
    for leaf in notary.leaves:
        issuer_sessions[leaf.issuer_name] += leaf.session_count
        depth = 2 + len(leaf.intermediates)  # leaf + intermediates + root
        depth_counts[depth] += 1
        if leaf.intermediates:
            via_intermediate += 1
        key_sizes[leaf.certificate.public_key.bits] += 1
        window = leaf.certificate.not_after - leaf.certificate.not_before
        validity_days.append(window.total_seconds() / 86_400)

    total = len(notary.leaves)
    top_by_count = issuer_counts.most_common(top)
    top10_leaves = sum(count for _, count in issuer_counts.most_common(10))
    top10_sessions = sum(count for _, count in issuer_sessions.most_common(10))
    validity_days.sort()
    median = validity_days[len(validity_days) // 2]

    return EcosystemReport(
        total_leaves=total,
        current_leaves=notary.current_certificates,
        expired_fraction=1 - notary.current_certificates / total,
        issuing_ca_count=len(issuer_counts),
        top_issuers=tuple(top_by_count),
        issuer_concentration_top10=top10_leaves / total,
        chain_depth_distribution=dict(sorted(depth_counts.items())),
        via_intermediate_fraction=via_intermediate / total,
        key_size_distribution=dict(sorted(key_sizes.items())),
        median_validity_days=median,
        session_weighted_top10=top10_sessions / max(notary.total_sessions, 1),
    )
