"""RFC 6962 Merkle hash trees with inclusion and consistency proofs.

The hashing follows RFC 6962 §2.1 exactly: leaves are hashed with a
0x00 prefix and interior nodes with 0x01, the split point of an n-leaf
tree is the largest power of two smaller than n, and the empty tree
hashes to SHA-256 of the empty string.
"""

from __future__ import annotations

import hashlib
from typing import Sequence


def _leaf_hash(data: bytes) -> bytes:
    return hashlib.sha256(b"\x00" + data).digest()


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"\x01" + left + right).digest()


def _split_point(n: int) -> int:
    """The largest power of two strictly smaller than n (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


class MerkleTree:
    """An append-only Merkle tree over byte-string leaves."""

    def __init__(self, leaves: Sequence[bytes] = ()):
        self._leaves: list[bytes] = [bytes(leaf) for leaf in leaves]

    # -- structure ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._leaves)

    def append(self, leaf: bytes) -> int:
        """Append a leaf; returns its index."""
        self._leaves.append(bytes(leaf))
        return len(self._leaves) - 1

    def leaf(self, index: int) -> bytes:
        """The raw leaf data at an index."""
        return self._leaves[index]

    # -- hashing ------------------------------------------------------------------

    def root_hash(self, size: int | None = None) -> bytes:
        """The tree head over the first *size* leaves (default: all)."""
        size = len(self._leaves) if size is None else size
        if size > len(self._leaves) or size < 0:
            raise ValueError(f"invalid tree size {size}")
        return self._subtree_hash(0, size)

    def _subtree_hash(self, start: int, count: int) -> bytes:
        if count == 0:
            return hashlib.sha256(b"").digest()
        if count == 1:
            return _leaf_hash(self._leaves[start])
        k = _split_point(count)
        return _node_hash(
            self._subtree_hash(start, k), self._subtree_hash(start + k, count - k)
        )

    # -- proofs --------------------------------------------------------------------

    def inclusion_proof(self, index: int, size: int | None = None) -> list[bytes]:
        """RFC 6962 §2.1.1 audit path for leaf *index* in a *size* tree."""
        size = len(self._leaves) if size is None else size
        if not 0 <= index < size <= len(self._leaves):
            raise ValueError(f"invalid proof request index={index} size={size}")

        def path(start: int, count: int, target: int) -> list[bytes]:
            if count == 1:
                return []
            k = _split_point(count)
            if target < k:
                return path(start, k, target) + [
                    self._subtree_hash(start + k, count - k)
                ]
            return path(start + k, count - k, target - k) + [
                self._subtree_hash(start, k)
            ]

        return path(0, size, index)

    def consistency_proof(self, old_size: int, new_size: int | None = None) -> list[bytes]:
        """RFC 6962 §2.1.2 proof that the *old_size* tree is a prefix of
        the *new_size* tree."""
        new_size = len(self._leaves) if new_size is None else new_size
        if not 0 < old_size <= new_size <= len(self._leaves):
            raise ValueError(
                f"invalid consistency request {old_size} -> {new_size}"
            )
        if old_size == new_size:
            return []

        def proof(start: int, count: int, m: int, complete: bool) -> list[bytes]:
            if m == count:
                if complete:
                    return []
                return [self._subtree_hash(start, count)]
            k = _split_point(count)
            if m <= k:
                return proof(start, k, m, complete) + [
                    self._subtree_hash(start + k, count - k)
                ]
            return proof(start + k, count - k, m - k, False) + [
                self._subtree_hash(start, k)
            ]

        return proof(0, new_size, old_size, True)


def verify_inclusion(
    leaf_data: bytes,
    index: int,
    size: int,
    proof: Sequence[bytes],
    root: bytes,
) -> bool:
    """Verify an RFC 6962 inclusion proof."""
    if not 0 <= index < size:
        return False
    node = _leaf_hash(leaf_data)
    fn, sn = index, size - 1
    for sibling in proof:
        if fn % 2 == 1 or fn == sn:
            node = _node_hash(sibling, node)
            while fn % 2 == 0 and fn != 0:
                fn //= 2
                sn //= 2
        else:
            node = _node_hash(node, sibling)
        fn //= 2
        sn //= 2
    return sn == 0 and node == root


def verify_consistency(
    old_size: int,
    new_size: int,
    old_root: bytes,
    new_root: bytes,
    proof: Sequence[bytes],
) -> bool:
    """Verify an RFC 6962 consistency proof."""
    if old_size > new_size or old_size <= 0:
        return False
    if old_size == new_size:
        return old_root == new_root and not proof
    proof = list(proof)
    # When old_size is a power of two inside the new tree, the first
    # component of the walk is the old root itself.
    fn, sn = old_size - 1, new_size - 1
    while fn % 2 == 1:
        fn //= 2
        sn //= 2
    if fn == 0:
        nodes = [old_root] + proof
    else:
        nodes = proof
    if not nodes:
        return False
    old_node = nodes[0]
    new_node = nodes[0]
    for sibling in nodes[1:]:
        if sn == 0:
            return False
        if fn % 2 == 1 or fn == sn:
            old_node = _node_hash(sibling, old_node)
            new_node = _node_hash(sibling, new_node)
            while fn % 2 == 0 and fn != 0:
                fn //= 2
                sn //= 2
        else:
            new_node = _node_hash(new_node, sibling)
        fn //= 2
        sn //= 2
    return old_node == old_root and new_node == new_root and sn == 0
