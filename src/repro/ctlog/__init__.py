"""A Certificate-Transparency-style audit log (RFC 6962 profile).

§8 calls for "an audited and strictly controlled root store" and better
mis-issuance visibility. Certificate Transparency — emerging exactly in
the paper's time frame — is the deployed answer: an append-only,
Merkle-tree-backed public log plus monitors. This subpackage implements
that machinery from scratch (tree, inclusion and consistency proofs,
signed tree heads, monitor) and wires it to the study's threat cases:
a logged CRAZY-HOUSE-style certificate is caught by a monitor even
though the device user saw nothing.
"""

from repro.ctlog.merkle import MerkleTree, verify_consistency, verify_inclusion
from repro.ctlog.log import CertificateLog, LogEntry, SignedTreeHead
from repro.ctlog.monitor import LogMonitor, MonitorAlert
from repro.ctlog.sct import (
    CtPolicy,
    SignedCertificateTimestamp,
    attach_scts,
    scts_of,
)

__all__ = [
    "MerkleTree",
    "verify_inclusion",
    "verify_consistency",
    "CertificateLog",
    "LogEntry",
    "SignedTreeHead",
    "LogMonitor",
    "MonitorAlert",
    "CtPolicy",
    "SignedCertificateTimestamp",
    "attach_scts",
    "scts_of",
]
