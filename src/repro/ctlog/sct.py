"""Signed Certificate Timestamps: embedding CT proofs in certificates.

A simplified RFC 6962 §3.2 profile: the log signs (log name, timestamp,
certificate TBS bytes); the resulting SCT is embedded in the
certificate via a non-critical extension. A CT-enforcing client (the
``require_ct`` policy below) rejects leaves without a valid SCT from a
known log — the deployment path that eventually made §8's auditability
mandatory on the real web.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.asn1 import (
    ObjectIdentifier,
    decode,
    encode_octet_string,
    encode_sequence,
    encode_utf8_string,
)
from repro.asn1.encoder import encode_generalized_time
from repro.crypto.pkcs1 import SignatureError, sign as pkcs1_sign, verify as pkcs1_verify
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.x509.certificate import Certificate
from repro.x509.extensions import Extension

#: The real SCT-list extension OID (1.3.6.1.4.1.11129.2.4.2).
SCT_LIST_OID = ObjectIdentifier("1.3.6.1.4.1.11129.2.4.2")


@dataclass(frozen=True)
class SignedCertificateTimestamp:
    """One SCT: which log vouched, when, and its signature."""

    log_name: str
    timestamp: datetime.datetime
    signature: bytes

    @staticmethod
    def signed_payload(log_name: str, timestamp: datetime.datetime, tbs: bytes) -> bytes:
        """The octets a log signs for an SCT."""
        return (
            log_name.encode("utf-8")
            + b"\x00"
            + timestamp.isoformat().encode("ascii")
            + b"\x00"
            + tbs
        )

    def verify_over(self, tbs_bytes: bytes, log_key: RsaPublicKey) -> None:
        """Verify this SCT over given TBS bytes."""
        payload = self.signed_payload(self.log_name, self.timestamp, tbs_bytes)
        pkcs1_verify(log_key, "sha256", payload, self.signature)

    # -- codec ---------------------------------------------------------------------

    def to_der(self) -> bytes:
        """Encode as SEQUENCE { UTF8String, GeneralizedTime, OCTET STRING }."""
        return encode_sequence(
            [
                encode_utf8_string(self.log_name),
                encode_generalized_time(self.timestamp),
                encode_octet_string(self.signature),
            ]
        )

    @classmethod
    def from_der(cls, data: bytes) -> "SignedCertificateTimestamp":
        """Decode one SCT."""
        seq = decode(data)
        return cls(
            log_name=seq[0].as_string(),
            timestamp=seq[1].as_time(),
            signature=seq[2].as_octet_string(),
        )


def issue_sct(
    log_name: str,
    log_key: RsaPrivateKey,
    tbs_bytes: bytes,
    *,
    at: datetime.datetime | None = None,
) -> SignedCertificateTimestamp:
    """Sign an SCT over TBS bytes (performed by the log at submission).

    Note: the real protocol signs a *precertificate*; this profile signs
    the final TBS, which requires issuing the certificate first and
    re-issuing with the SCT attached (see :func:`attach_scts`).
    """
    timestamp = at or datetime.datetime(2014, 4, 1)
    payload = SignedCertificateTimestamp.signed_payload(log_name, timestamp, tbs_bytes)
    return SignedCertificateTimestamp(
        log_name=log_name,
        timestamp=timestamp,
        signature=pkcs1_sign(log_key, "sha256", payload),
    )


def sct_list_extension(scts: list[SignedCertificateTimestamp]) -> Extension:
    """The SCT-list certificate extension."""
    return Extension(
        SCT_LIST_OID,
        critical=False,
        value=encode_sequence(sct.to_der() for sct in scts),
    )


def scts_of(certificate: Certificate) -> list[SignedCertificateTimestamp]:
    """Parse the embedded SCT list (empty if absent)."""
    extension = certificate.extension(SCT_LIST_OID)
    if extension is None:
        return []
    return [
        SignedCertificateTimestamp.from_der(child.encoded)
        for child in decode(extension.value)
    ]


def attach_scts(
    certificate: Certificate,
    scts: list[SignedCertificateTimestamp],
    issuer_private_key: RsaPrivateKey,
) -> Certificate:
    """Re-issue a certificate with an SCT-list extension appended.

    The RFC 6962 precertificate flow, collapsed: the CA issues the
    certificate, submits it, receives SCTs signed over that (pre-SCT)
    TBS, and re-signs the final certificate with the SCT list embedded.
    """
    from repro.asn1 import (
        encode_bit_string,
        encode_explicit,
        encode_null,
        encode_oid,
    )
    from repro.asn1.objects import HASH_SIGNATURE_OIDS

    tbs = decode(certificate.tbs_encoded)
    parts = []
    extension_block_seen = False
    sct_der = sct_list_extension(scts).to_der()
    for child in tbs.children:
        if child.tag.is_context(3):
            extension_block_seen = True
            existing = [ext.encoded for ext in child.explicit_inner()]
            parts.append(
                encode_explicit(3, encode_sequence(existing + [sct_der]))
            )
        else:
            parts.append(child.encoded)
    if not extension_block_seen:
        parts.append(encode_explicit(3, encode_sequence([sct_der])))
    new_tbs = encode_sequence(parts)
    algorithm = encode_sequence(
        [encode_oid(HASH_SIGNATURE_OIDS[certificate.signature_hash]), encode_null()]
    )
    signature = pkcs1_sign(
        issuer_private_key, certificate.signature_hash, new_tbs
    )
    return Certificate.from_der(
        encode_sequence([new_tbs, algorithm, encode_bit_string(signature)])
    )


class CtPolicy:
    """A client-side CT requirement: leaves must carry a valid SCT from
    a known log. Plugs into handshake-level checks."""

    def __init__(self, known_logs: dict[str, RsaPublicKey]):
        self.known_logs = dict(known_logs)

    def check(self, certificate: Certificate) -> bool:
        """True if the certificate satisfies the CT requirement.

        The SCT must name a known log and verify over the certificate's
        pre-SCT (precertificate) TBS, reconstructed by stripping the
        SCT-list extension.
        """
        precursor = _precursor_tbs(certificate)
        if precursor is None:
            return False
        for sct in scts_of(certificate):
            key = self.known_logs.get(sct.log_name)
            if key is None:
                continue
            try:
                sct.verify_over(precursor, key)
            except SignatureError:
                continue
            return True
        return False


def _precursor_tbs(certificate: Certificate) -> bytes | None:
    """Reconstruct the TBS as it looked before the SCT extension was
    appended (the 'precertificate' this profile signs)."""
    from repro.asn1 import Asn1Error, encode_explicit, encode_sequence as enc_seq

    try:
        tbs = decode(certificate.tbs_encoded)
    except Asn1Error:
        return None
    parts = []
    for child in tbs.children:
        if child.tag.is_context(3):
            extensions = [
                ext.encoded
                for ext in child.explicit_inner()
                if ext[0].as_oid() != SCT_LIST_OID
            ]
            if extensions:
                parts.append(encode_explicit(3, enc_seq(extensions)))
        else:
            parts.append(child.encoded)
    return enc_seq(parts)
