"""The certificate log: append-only, signed tree heads, proof service."""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.crypto.pkcs1 import SignatureError, sign as pkcs1_sign, verify as pkcs1_verify
from repro.crypto.rng import derive_random
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.ctlog.merkle import MerkleTree
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import fingerprint


@dataclass(frozen=True)
class LogEntry:
    """One logged certificate."""

    index: int
    certificate: Certificate
    timestamp: datetime.datetime


@dataclass(frozen=True)
class SignedTreeHead:
    """An STH: (size, root hash) signed by the log key."""

    tree_size: int
    root_hash: bytes
    timestamp: datetime.datetime
    signature: bytes

    def signed_payload(self) -> bytes:
        """The octets the signature covers."""
        return (
            self.tree_size.to_bytes(8, "big")
            + self.root_hash
            + self.timestamp.isoformat().encode("ascii")
        )

    def verify(self, log_key: RsaPublicKey) -> None:
        """Verify the STH signature; raises SignatureError on failure."""
        pkcs1_verify(log_key, "sha256", self.signed_payload(), self.signature)


class CertificateLog:
    """An RFC 6962-style log server.

    Certificates are deduplicated by full DER; each append advances the
    Merkle tree and the log can issue signed tree heads, inclusion
    proofs for any (entry, STH) pair and consistency proofs between
    STHs.
    """

    def __init__(self, name: str = "tangled-log", *, seed: str = "ct-log"):
        self.name = name
        self._keypair: RsaKeyPair = generate_keypair(
            derive_random(seed, "log-key", name)
        )
        self._tree = MerkleTree()
        self._entries: list[LogEntry] = []
        self._by_fingerprint: dict[str, int] = {}

    @property
    def public_key(self) -> RsaPublicKey:
        """The log's verification key."""
        return self._keypair.public

    def __len__(self) -> int:
        return len(self._entries)

    # -- submission -----------------------------------------------------------------

    def submit(
        self, certificate: Certificate, *, at: datetime.datetime | None = None
    ) -> LogEntry:
        """Log a certificate (idempotent by DER)."""
        digest = fingerprint(certificate)
        if digest in self._by_fingerprint:
            return self._entries[self._by_fingerprint[digest]]
        index = self._tree.append(certificate.encoded)
        entry = LogEntry(
            index=index,
            certificate=certificate,
            timestamp=at or datetime.datetime(2014, 4, 1),
        )
        self._entries.append(entry)
        self._by_fingerprint[digest] = index
        return entry

    # -- queries ---------------------------------------------------------------------

    def issue_sct(
        self, certificate: Certificate, *, at: datetime.datetime | None = None
    ):
        """Log a (pre-)certificate and return the SCT for embedding."""
        from repro.ctlog.sct import issue_sct

        self.submit(certificate, at=at)
        return issue_sct(
            self.name, self._keypair.private, certificate.tbs_encoded, at=at
        )

    def contains(self, certificate: Certificate) -> bool:
        """True if the exact certificate was logged."""
        return fingerprint(certificate) in self._by_fingerprint

    def entries(self, start: int = 0, end: int | None = None) -> list[LogEntry]:
        """Entries in [start, end) — the monitor's fetch interface."""
        return self._entries[start : end if end is not None else len(self._entries)]

    def signed_tree_head(
        self, *, at: datetime.datetime | None = None
    ) -> SignedTreeHead:
        """Produce an STH over the current tree."""
        timestamp = at or datetime.datetime(2014, 4, 1)
        head = SignedTreeHead(
            tree_size=len(self._tree),
            root_hash=self._tree.root_hash(),
            timestamp=timestamp,
            signature=b"",
        )
        signature = pkcs1_sign(
            self._keypair.private, "sha256", head.signed_payload()
        )
        return SignedTreeHead(
            tree_size=head.tree_size,
            root_hash=head.root_hash,
            timestamp=timestamp,
            signature=signature,
        )

    def inclusion_proof(self, certificate: Certificate, tree_size: int) -> tuple[int, list[bytes]]:
        """(index, audit path) for a logged certificate at an STH size."""
        digest = fingerprint(certificate)
        if digest not in self._by_fingerprint:
            raise KeyError("certificate not logged")
        index = self._by_fingerprint[digest]
        return index, self._tree.inclusion_proof(index, tree_size)

    def consistency_proof(self, old_size: int, new_size: int) -> list[bytes]:
        """Proof that the old STH is a prefix of the new one."""
        return self._tree.consistency_proof(old_size, new_size)
