"""A log monitor: the auditing party §8's model needs.

The monitor tails a certificate log, verifies log behaviour
(consistency between tree heads, inclusion of fetched entries) and
raises alerts on suspicious issuance: certificates for watched domains
from unexpected issuers, and roots/leaves from issuers outside the
vetted store set. Run against the study's threat cases, a logged
CRAZY-HOUSE-style certificate triggers an alert even though the device
owner saw nothing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import PresenceClassifier
from repro.ctlog.log import CertificateLog, SignedTreeHead
from repro.ctlog.merkle import verify_consistency, verify_inclusion
from repro.rootstore.catalog import StorePresence
from repro.x509.certificate import Certificate


@dataclass(frozen=True)
class MonitorAlert:
    """One finding raised by the monitor."""

    kind: str  # "unexpected_issuer" | "unvetted_authority" | "log_misbehavior"
    message: str
    certificate: Certificate | None = None


@dataclass
class LogMonitor:
    """Tails a log, verifies it cryptographically, and screens entries."""

    log: CertificateLog
    classifier: PresenceClassifier | None = None
    #: hostname -> issuer CNs allowed to vouch for it.
    watched_domains: dict[str, set[str]] = field(default_factory=dict)
    alerts: list[MonitorAlert] = field(default_factory=list)
    _seen: int = 0
    _last_sth: SignedTreeHead | None = None

    def watch(self, hostname: str, *allowed_issuer_cns: str) -> None:
        """Watch a domain, alerting on issuance by anyone else."""
        self.watched_domains.setdefault(hostname.lower(), set()).update(
            allowed_issuer_cns
        )

    # -- polling -----------------------------------------------------------------

    def poll(self) -> list[MonitorAlert]:
        """Fetch new entries, verify the log, screen certificates."""
        new_alerts: list[MonitorAlert] = []
        sth = self.log.signed_tree_head()
        try:
            sth.verify(self.log.public_key)
        except Exception:
            new_alerts.append(
                MonitorAlert("log_misbehavior", "tree head signature invalid")
            )
        if self._last_sth is not None and sth.tree_size >= self._last_sth.tree_size:
            proof = self.log.consistency_proof(
                self._last_sth.tree_size, sth.tree_size
            )
            if not verify_consistency(
                self._last_sth.tree_size,
                sth.tree_size,
                self._last_sth.root_hash,
                sth.root_hash,
                proof,
            ):
                new_alerts.append(
                    MonitorAlert(
                        "log_misbehavior",
                        f"log not consistent between sizes "
                        f"{self._last_sth.tree_size} and {sth.tree_size}",
                    )
                )
        self._last_sth = sth

        for entry in self.log.entries(self._seen, sth.tree_size):
            index, proof = self.log.inclusion_proof(entry.certificate, sth.tree_size)
            if not verify_inclusion(
                entry.certificate.encoded, index, sth.tree_size, proof, sth.root_hash
            ):
                new_alerts.append(
                    MonitorAlert(
                        "log_misbehavior",
                        f"entry {index} fails inclusion against the tree head",
                        entry.certificate,
                    )
                )
            new_alerts.extend(self._screen(entry.certificate))
        self._seen = sth.tree_size
        self.alerts.extend(new_alerts)
        return new_alerts

    # -- screening -----------------------------------------------------------------

    def _screen(self, certificate: Certificate) -> list[MonitorAlert]:
        alerts: list[MonitorAlert] = []
        issuer_cn = certificate.issuer.common_name or str(certificate.issuer)
        names = certificate.subject_alternative_names or (
            (certificate.subject.common_name,)
            if certificate.subject.common_name
            else ()
        )
        for name in names:
            allowed = self.watched_domains.get((name or "").lower())
            if allowed is not None and issuer_cn not in allowed:
                alerts.append(
                    MonitorAlert(
                        "unexpected_issuer",
                        f"{name} certified by {issuer_cn!r}, expected one of "
                        f"{sorted(allowed)}",
                        certificate,
                    )
                )
        if self.classifier is not None and certificate.is_ca:
            presence = self.classifier.classify(certificate).presence
            if presence is StorePresence.NOT_RECORDED:
                alerts.append(
                    MonitorAlert(
                        "unvetted_authority",
                        f"CA certificate {certificate.subject.common_name!r} is in "
                        "no vetted store and unknown to the Notary",
                        certificate,
                    )
                )
        return alerts
