"""The synthetic device population, calibrated to the paper's marginals.

Every published population statistic is a generation target here:

* 15,970 sessions over >=3,835 handsets and ~435 models (§4.1);
* Table 2's top-5 device and manufacturer session counts;
* 39 % of sessions with extended root stores, 5 handsets with missing
  certificates (§5);
* 24 % of sessions on rooted handsets, ~6 % of those carrying
  rooted-exclusive certificates — CRAZY HOUSE on ~70 devices plus the
  Table 5 singletons (§6);
* exactly one proxied Nexus 7 on Android 4.4 (§7).

The generator is driven by one :class:`random.Random` seed; the same
seed reproduces the identical population, sessions and analysis output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.android.apps import FreedomLikeApp, VpnInterceptorApp
from repro.android.device import AndroidDevice, DeviceSpec
from repro.android.firmware import FirmwareBuilder
from repro.crypto.rng import derive_random
from repro.parallel.executor import ParallelExecutor
from repro.rootstore.catalog import CaCatalog, default_catalog
from repro.rootstore.factory import CertificateFactory
from repro.tlssim.endpoints import WHITELISTED_DOMAINS
from repro.tlssim.proxy import InterceptionProxy

#: Table 2-calibrated model mix: (manufacturer, model, target sessions).
MODEL_SESSION_TARGETS: tuple[tuple[str, str, int], ...] = (
    ("SAMSUNG", "Galaxy SIV", 2762),
    ("SAMSUNG", "Galaxy SIII", 2108),
    ("SAMSUNG", "Galaxy Note II", 700),
    ("SAMSUNG", "Galaxy SII", 650),
    ("SAMSUNG", "Galaxy Ace 2", 550),
    ("SAMSUNG", "Galaxy Nexus", 350),
    ("SAMSUNG", "Galaxy Tab 2", 589),
    ("LG", "Nexus 4", 1331),
    ("LG", "Nexus 5", 1010),
    ("LG", "G2", 300),
    ("LG", "Optimus G", 267),
    ("ASUS", "Nexus 7", 832),
    ("ASUS", "Transformer Pad", 544),
    ("ASUS", "MeMO Pad", 300),
    ("ASUS", "PadFone", 200),
    ("HTC", "One", 400),
    ("HTC", "One X", 313),
    ("HTC", "Desire HD", 250),
    ("MOTOROLA", "Droid RAZR HD", 437),
    ("MOTOROLA", "Moto G", 250),
    ("MOTOROLA", "Moto X", 150),
    ("SONY", "Xperia Z", 280),
    ("SONY", "Xperia SP", 200),
    ("HUAWEI", "Ascend P6", 150),
    ("HUAWEI", "Ascend Y300", 100),
)

#: Minor manufacturers filling the ~435-model long tail (§5.2 names
#: Pantech, Compal and Lenovo devices explicitly).
MINOR_MANUFACTURERS: tuple[tuple[str, int], ...] = (
    ("PANTECH", 30),
    ("COMPAL", 30),
    ("LENOVO", 50),
    ("ZTE", 80),
    ("ALCATEL", 70),
    ("KYOCERA", 50),
    ("SHARP", 50),
    ("ACER", 50),
)

#: Per-model OS version mixes (defaults below for unlisted models).
MODEL_VERSION_MIX: dict[str, dict[str, float]] = {
    "Nexus 5": {"4.4": 1.0},
    "Nexus 4": {"4.2": 0.2, "4.3": 0.3, "4.4": 0.5},
    "Nexus 7": {"4.3": 0.3, "4.4": 0.7},
    "Galaxy Nexus": {"4.2": 0.5, "4.3": 0.5},
    "Galaxy SIV": {"4.2": 0.4, "4.3": 0.4, "4.4": 0.2},
    "Galaxy SIII": {"4.1": 0.5, "4.3": 0.5},
    "Galaxy Note II": {"4.1": 0.6, "4.2": 0.4},
    "Galaxy SII": {"4.1": 1.0},
    "Galaxy Ace 2": {"4.1": 1.0},
    "Galaxy Tab 2": {"4.1": 0.6, "4.2": 0.4},
    "Moto G": {"4.3": 0.5, "4.4": 0.5},
    "Moto X": {"4.2": 0.3, "4.4": 0.7},
    "Droid RAZR HD": {"4.1": 1.0},
    "Xperia Z": {"4.1": 0.3, "4.2": 0.3, "4.3": 0.4},
    "Xperia SP": {"4.1": 0.5, "4.3": 0.5},
}

DEFAULT_VERSION_MIX = {"4.1": 0.35, "4.2": 0.25, "4.3": 0.15, "4.4": 0.25}

#: Mean sessions per rarely-seen (tail-model) device.
TAIL_MEAN_SESSIONS = 1.4

#: Carrier-exclusive models: (operator, probability). The Droid RAZR was
#: a Verizon device — the premise behind §5.1's "all of them subscribed
#: to Verizon Wireless" CertiSign observation.
MODEL_OPERATOR_BIAS: dict[str, tuple[str, float]] = {
    "Droid RAZR HD": ("VERIZON(US)", 0.85),
    "Galaxy Note II": ("T-MOBILE(US)", 0.35),
}

#: Operator pools by country, with country weights.
OPERATORS_BY_COUNTRY: dict[str, tuple[str, ...]] = {
    "US": ("AT&T(US)", "VERIZON(US)", "T-MOBILE(US)", "SPRINT(US)"),
    "GB": ("3(UK)", "EE(UK)"),
    "FR": ("ORANGE(FR)", "SFR(FR)", "BOUYGUES(FR)", "FREE(FR)"),
    "DE": ("VODAFONE(DE)",),
    "AU": ("TELSTRA(AU)",),
}
COUNTRY_WEIGHTS = {"US": 0.45, "GB": 0.15, "FR": 0.15, "DE": 0.10, "AU": 0.05, "XX": 0.10}

#: Fraction of devices whose firmware is operator-branded (carries the
#: vendor/operator additions); per manufacturer, tuned so ~39 % of
#: sessions see an extended store.
BRANDED_FRACTION: dict[str, float] = {
    "SAMSUNG": 0.45,
    "HTC": 0.85,
    "MOTOROLA": 0.80,
    "LG": 0.60,
    "SONY": 0.80,
    "ASUS": 0.30,
    "HUAWEI": 0.30,
}


@dataclass
class PopulationConfig:
    """Generation targets; ``scale`` shrinks everything proportionally."""

    seed: str = "tangled-mass"
    scale: float = 1.0
    total_sessions: int = 15_970
    mean_sessions_per_device: float = 4.16
    rooted_fraction: float = 0.24
    crazy_house_devices: int = 70
    user_vpn_cert_devices: int = 58
    missing_cert_devices: int = 5
    #: Fraction of devices attached to a network other than their
    #: subscription (travelers/roamers, §5.2).
    roaming_fraction: float = 0.03

    def scaled(self, value: int) -> int:
        """Scale an absolute device/session target."""
        return max(1, round(value * self.scale))


@dataclass
class DeviceRecord:
    """One generated handset plus its planned session count."""

    device: AndroidDevice
    session_count: int
    branded: bool


@dataclass
class Population:
    """The generated handset population."""

    records: list[DeviceRecord] = field(default_factory=list)
    proxied_device: AndroidDevice | None = None

    @property
    def devices(self) -> list[AndroidDevice]:
        """All generated devices."""
        return [record.device for record in self.records]

    @property
    def total_sessions(self) -> int:
        """Total planned sessions."""
        return sum(record.session_count for record in self.records)

    def rooted_session_fraction(self) -> float:
        """Fraction of sessions on rooted handsets."""
        rooted = sum(
            record.session_count for record in self.records if record.device.rooted
        )
        return rooted / self.total_sessions


class PopulationGenerator:
    """Generates the calibrated handset population."""

    def __init__(
        self,
        config: PopulationConfig | None = None,
        factory: CertificateFactory | None = None,
        catalog: CaCatalog | None = None,
    ):
        self.config = config or PopulationConfig()
        self.factory = factory or CertificateFactory(seed=self.config.seed)
        self.catalog = catalog or default_catalog()
        self.firmware = FirmwareBuilder(self.factory, self.catalog)

    # -- helpers -------------------------------------------------------------------

    def _pick_version(self, rng: random.Random, model: str) -> str:
        mix = MODEL_VERSION_MIX.get(model, DEFAULT_VERSION_MIX)
        versions = list(mix)
        return rng.choices(versions, weights=[mix[v] for v in versions])[0]

    def _pick_operator(self, rng: random.Random) -> tuple[str, str]:
        country = rng.choices(
            list(COUNTRY_WEIGHTS), weights=list(COUNTRY_WEIGHTS.values())
        )[0]
        operators = OPERATORS_BY_COUNTRY.get(country)
        if not operators:
            return "WIFI", country
        return rng.choice(operators), country

    def _session_count(self, rng: random.Random, mean: float | None = None) -> int:
        """Sessions per device: geometric with the calibrated mean."""
        p = 1.0 / (mean or self.config.mean_sessions_per_device)
        count = 1
        while rng.random() > p and count < 60:
            count += 1
        return count

    def _model_plan(self) -> list[tuple[str, str, int, bool]]:
        """(manufacturer, model, device_count, is_tail) for the population.

        Tail devices (the ~410 rarely-seen models that push the corpus
        to 435 distinct models) run ~1.5 sessions each, versus ~4.2 for
        the popular models.
        """
        mean = self.config.mean_sessions_per_device
        plan = [
            (manufacturer, model, max(1, round(sessions * self.config.scale / mean)), False)
            for manufacturer, model, sessions in MODEL_SESSION_TARGETS
        ]
        # Long tail: minor manufacturers, each with a pool of model names.
        tail_rng = derive_random(self.config.seed, "model-tail")
        remaining_sessions = self.config.total_sessions - sum(
            s for _, _, s in MODEL_SESSION_TARGETS
        )
        tail_devices = max(
            len(MINOR_MANUFACTURERS),
            round(remaining_sessions * self.config.scale / TAIL_MEAN_SESSIONS),
        )
        weights = [count for _, count in MINOR_MANUFACTURERS]
        for index in range(tail_devices):
            manufacturer = tail_rng.choices(
                [m for m, _ in MINOR_MANUFACTURERS], weights=weights
            )[0]
            model = f"{manufacturer.title()} M{tail_rng.randrange(100, 210)}"
            plan.append((manufacturer, model, 1, True))
        return plan

    # -- generation -----------------------------------------------------------------

    def generate(self, executor: "ParallelExecutor | None" = None) -> Population:
        """Build the full population.

        Sampling is one sequential RNG stream and stays serial; an
        ``executor`` pre-generates the CA keys firmware provisioning
        needs (the expensive part) in parallel first, which changes
        nothing about the output — each key lives in its own derived
        RNG stream.
        """
        if executor is not None and executor.parallel:
            self.factory.warm(
                (profile.name for profile in self.catalog.all_profiles()),
                executor,
            )
        rng = derive_random(self.config.seed, "population")
        # Roaming uses an independent stream so toggling the feature (or
        # its rate) cannot perturb the calibrated main sampling stream.
        roam_rng = derive_random(self.config.seed, "roaming")
        population = Population()
        serial = 0
        for manufacturer, model, device_count, is_tail in self._model_plan():
            for _ in range(device_count):
                serial += 1
                population.records.append(
                    self._make_device(
                        rng, manufacturer, model, serial, is_tail, roam_rng
                    )
                )
        self._inject_rooted_exclusive_certs(rng, population)
        self._inject_user_vpn_certs(rng, population)
        self._inject_missing_certs(rng, population)
        self._inject_proxied_device(population)
        return population

    def _make_device(
        self,
        rng: random.Random,
        manufacturer: str,
        model: str,
        serial: int,
        is_tail: bool = False,
        roam_rng: random.Random | None = None,
    ) -> DeviceRecord:
        version = self._pick_version(rng, model)
        bias = MODEL_OPERATOR_BIAS.get(model)
        if bias is not None and rng.random() < bias[1]:
            operator, country = bias[0], "US"
        else:
            operator, country = self._pick_operator(rng)
        spec = DeviceSpec(
            manufacturer=manufacturer,
            model=model,
            os_version=version,
            operator=operator,
            country=country,
        )
        branded = rng.random() < BRANDED_FRACTION.get(manufacturer, 0.25)
        rooted = rng.random() < self.config.rooted_fraction
        device = self.firmware.provision(
            spec,
            branded=branded,
            rooted=rooted,
            device_id=f"dev-{serial:05d}",
        )
        device.wifi_ssid = f"ssid-{rng.randrange(10_000)}"
        roam_rng = roam_rng or rng
        if roam_rng.random() < self.config.roaming_fraction:
            visited_operator, visited_country = self._pick_operator(roam_rng)
            if visited_operator not in ("WIFI", operator):
                device.attached_operator = visited_operator
                device.attached_country = visited_country
        device.public_ip = (
            f"{rng.randrange(1, 224)}.{rng.randrange(256)}."
            f"{rng.randrange(256)}.{rng.randrange(1, 255)}"
        )
        mean = TAIL_MEAN_SESSIONS if is_tail else None
        return DeviceRecord(
            device=device,
            session_count=self._session_count(rng, mean),
            branded=branded,
        )

    def _inject_rooted_exclusive_certs(
        self, rng: random.Random, population: Population
    ) -> None:
        """§6: the Freedom app's CA on ~70 rooted devices, plus the
        Table 5 singletons.

        Carriers are drawn from low-session rooted devices so the
        exclusive-cert *session* fraction lands near the paper's 6 % of
        rooted sessions despite CRAZY HOUSE's 70-device spread.
        """
        rooted_records = [r for r in population.records if r.device.rooted]
        if not rooted_records:
            return
        low_session = [r.device for r in rooted_records if r.session_count <= 3]
        rooted = [r.device for r in rooted_records]
        pool = low_session if len(low_session) >= 10 else rooted
        crazy_house = self.factory.root_certificate(
            self.catalog.by_name("CRAZY HOUSE")
        )
        target = min(self.config.scaled(self.config.crazy_house_devices), len(pool))
        for device in rng.sample(pool, target):
            device.install_app(FreedomLikeApp(ca_certificate=crazy_house))
        # Table 5 singletons: MIND OVERFLOW + USER_X share one device;
        # CDA on a rooted Nexus 7 (Senegal); CIRRUS on one more device.
        singles = [d for d in rooted if not d.apps]
        if len(singles) >= 3:
            shared = singles[0]
            shared.app_add_certificate(
                self.factory.root_certificate(self.catalog.by_name("MIND OVERFLOW")),
                "vpn-helper",
            )
            shared.app_add_certificate(
                self.factory.root_certificate(self.catalog.by_name("USER_X")),
                "vpn-helper",
            )
            nexus7 = next(
                (d for d in singles[1:] if d.spec.model == "Nexus 7"), singles[1]
            )
            nexus7.spec = DeviceSpec(  # type: ignore[misc]
                manufacturer=nexus7.spec.manufacturer,
                model=nexus7.spec.model,
                os_version=nexus7.spec.os_version,
                operator="WIFI",
                country="SN",
            )
            nexus7.user_add_certificate(
                self.factory.root_certificate(
                    self.catalog.by_name("CDA/EMAILADDRESS")
                )
            )
            other = next(d for d in singles[1:] if d is not nexus7)
            other.user_add_certificate(
                self.factory.root_certificate(self.catalog.by_name("CIRRUS, PRIVATE"))
            )

    def _inject_user_vpn_certs(
        self, rng: random.Random, population: Population
    ) -> None:
        """§5.2/§6: self-signed VPN roots, each on exactly one device.

        Placed on rooted handsets (the population that installs VPN
        tooling); they form the long tail of Table 5's singleton rows
        and keep the non-rooted §5 analysis at the calibrated 101
        additional certificates.
        """
        candidates = [
            r.device
            for r in population.records
            if r.device.rooted and not r.device.apps and r.session_count <= 3
        ]
        rng.shuffle(candidates)
        target = min(
            self.config.scaled(self.config.user_vpn_cert_devices), len(candidates)
        )
        vpn_profiles = [
            p for p in self.catalog.rooted_only if p.purpose == "vpn"
        ][:target]
        for profile, device in zip(vpn_profiles, candidates):
            device.user_add_certificate(self.factory.root_certificate(profile))

    def _inject_missing_certs(
        self, rng: random.Random, population: Population
    ) -> None:
        """§5: exactly five handsets missing AOSP certificates."""
        target = self.config.missing_cert_devices  # not scaled: paper absolute
        candidates = [r.device for r in population.records if not r.device.apps]
        for device in rng.sample(candidates, min(target, len(candidates))):
            aosp_certs = self.firmware.aosp.store_for(
                device.spec.os_version
            ).certificates()
            for certificate in rng.sample(aosp_certs, rng.randrange(1, 4)):
                device.user_disable_certificate(certificate)

    def _inject_proxied_device(self, population: Population) -> None:
        """§7: one Nexus 7 on 4.4 behind the Reality Mine proxy."""
        proxy = InterceptionProxy(
            whitelist=frozenset(e.hostport for e in WHITELISTED_DOMAINS),
            seed=f"{self.config.seed}/reality-mine",
        )
        spec = DeviceSpec(
            manufacturer="ASUS",
            model="Nexus 7",
            os_version="4.4",
            operator="WIFI",
            country="US",
        )
        device = self.firmware.provision(spec, branded=False, device_id="dev-proxied")
        device.wifi_ssid = "proxied-ap"
        device.install_app(VpnInterceptorApp(proxy=proxy))
        population.records.append(
            DeviceRecord(device=device, session_count=1, branded=False)
        )
        population.proxied_device = device
