"""Firmware images: how vendor and operator certificates reach devices.

§5.1's mechanism: hardware vendors build firmware images per model (and
often per operator, for subsidized handsets), seeding the system root
store with the official AOSP set plus their own additions. The
FirmwareBuilder resolves a device spec against the catalog's deployment
table to produce the exact store that spec ships with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.device import AndroidDevice, DeviceSpec
from repro.rootstore.aosp import AospStoreBuilder
from repro.rootstore.catalog import CaCatalog, default_catalog
from repro.rootstore.factory import CertificateFactory
from repro.rootstore.store import RootStore


@dataclass
class FirmwareImage:
    """A built firmware image for one (manufacturer, version, operator)."""

    spec_key: tuple[str, str, str]
    store: RootStore
    vendor_cert_names: tuple[str, ...]

    @property
    def addition_count(self) -> int:
        """Certificates beyond the AOSP baseline."""
        return len(self.vendor_cert_names)


class FirmwareBuilder:
    """Builds device root stores from the catalog's deployment table."""

    def __init__(
        self,
        factory: CertificateFactory | None = None,
        catalog: CaCatalog | None = None,
    ):
        self.factory = factory or CertificateFactory()
        self.catalog = catalog or default_catalog()
        self.aosp = AospStoreBuilder(self.factory, self.catalog)
        self._image_cache: dict[tuple[str, str, str], FirmwareImage] = {}

    def vendor_cert_names(self, spec: DeviceSpec, *, branded: bool = True) -> list[str]:
        """The additional certificates this spec's firmware ships.

        Nexus devices run stock AOSP; unbranded (``branded=False``)
        devices skip vendor additions too (retail unlocked firmware).
        Operator overlays apply to branded firmware only.
        """
        if spec.is_nexus or not branded:
            return []
        names: list[str] = []
        for deployment in self.catalog.deployments:
            if spec.os_version not in deployment.versions:
                continue
            if (
                deployment.manufacturer is not None
                and deployment.manufacturer != spec.manufacturer
            ):
                continue
            if deployment.operator is not None and deployment.operator != spec.operator:
                continue
            if deployment.manufacturer is None and deployment.operator is None:
                continue
            if deployment.cert_name not in names:
                names.append(deployment.cert_name)
        return names

    def build_image(self, spec: DeviceSpec, *, branded: bool = True) -> FirmwareImage:
        """Build (or fetch from cache) the firmware image for a spec."""
        names = self.vendor_cert_names(spec, branded=branded)
        key = (spec.manufacturer, spec.os_version, spec.operator if branded else "-")
        cached = self._image_cache.get(key)
        if cached is not None and cached.vendor_cert_names == tuple(names):
            return cached
        base = self.aosp.store_for(spec.os_version)
        store = base.copy(f"{spec.manufacturer}-{spec.os_version}", read_only=True)
        for name in names:
            certificate = self.factory.root_certificate(self.catalog.by_name(name))
            store.add(certificate, system=True, source="firmware")
        image = FirmwareImage(
            spec_key=key, store=store, vendor_cert_names=tuple(names)
        )
        self._image_cache[key] = image
        return image

    def provision(
        self,
        spec: DeviceSpec,
        *,
        branded: bool = True,
        rooted: bool = False,
        device_id: str = "",
    ) -> AndroidDevice:
        """Flash a fresh device with the right firmware image.

        Devices share the image's store object until their first local
        change (copy-on-write in :class:`AndroidDevice`), which keeps
        multi-thousand-device populations cheap.
        """
        image = self.build_image(spec, branded=branded)
        return AndroidDevice(
            spec,
            image.store,
            device_id=device_id,
            rooted=rooted,
            shared_store=True,
        )
