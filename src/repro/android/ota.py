"""OTA system updates and their effect on the root store.

An over-the-air update replaces the system partition — and with it the
system root store — while preserving user-installed certificates and
(on production devices) wiping root access. This models two of the
paper's observations:

* §5.1's Sony case: a 4.1 device carrying "a certificate ... which is
  also present in newer AOSP versions" — the residue of partial
  vendor backports and updates;
* the durability asymmetry §6 implies: app-injected roots live on the
  *system* partition and are wiped by an OTA, while user-installed
  certificates (stored separately) survive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.device import AndroidDevice, DeviceSpec
from repro.android.firmware import FirmwareBuilder
from repro.rootstore.catalog import ANDROID_VERSIONS
from repro.x509.certificate import Certificate


@dataclass
class OtaResult:
    """What an update did to the device's trust state."""

    from_version: str
    to_version: str
    system_roots_added: int
    system_roots_removed: int
    preserved_user_certs: tuple[Certificate, ...]
    wiped_app_certs: tuple[Certificate, ...]
    unrooted: bool


class OtaUpdater:
    """Applies version updates to devices."""

    def __init__(self, firmware: FirmwareBuilder):
        self.firmware = firmware

    def update(
        self,
        device: AndroidDevice,
        to_version: str,
        *,
        branded: bool = True,
        preserves_root: bool = False,
    ) -> OtaResult:
        """Flash *device* to *to_version*.

        The new system store comes from the target firmware image; user
        certificates carry over; app-injected system roots are wiped;
        root access is lost unless the update path preserves it.
        """
        if to_version not in ANDROID_VERSIONS:
            raise ValueError(f"unknown Android version {to_version!r}")
        from_version = device.spec.os_version
        if ANDROID_VERSIONS.index(to_version) <= ANDROID_VERSIONS.index(from_version):
            raise ValueError(
                f"cannot downgrade {from_version} -> {to_version}"
            )

        old_entries = device.store.entries()
        user_certs = tuple(
            entry.certificate for entry in old_entries if entry.source == "user"
        )
        app_certs = tuple(
            entry.certificate
            for entry in old_entries
            if entry.source.startswith("app:")
        )
        old_system = {
            entry.certificate
            for entry in old_entries
            if not entry.source.startswith("app:") and entry.source != "user"
        }

        new_spec = DeviceSpec(
            manufacturer=device.spec.manufacturer,
            model=device.spec.model,
            os_version=to_version,
            operator=device.spec.operator,
            country=device.spec.country,
        )
        image = self.firmware.build_image(new_spec, branded=branded)
        new_store = image.store.copy(f"device-{device.device_id}")
        for certificate in user_certs:
            new_store.add(certificate, system=True, source="user")

        new_system = set(image.store.certificates(include_disabled=True))
        device.spec = new_spec
        device.store = new_store
        device._store_shared = False
        unrooted = device.rooted and not preserves_root
        if unrooted:
            device.rooted = False

        return OtaResult(
            from_version=from_version,
            to_version=to_version,
            system_roots_added=len(new_system - old_system),
            system_roots_removed=len(old_system - new_system),
            preserved_user_certs=user_certs,
            wiped_app_certs=app_certs,
            unrooted=unrooted,
        )


def backport_certificate(
    device: AndroidDevice, certificate: Certificate
) -> None:
    """Vendor backport: ship a newer-AOSP root on an older firmware.

    The §5.1 Sony case — the certificate shows up as an "addition"
    relative to the device's own AOSP version even though it is an
    official root of a later version.
    """
    device.store.add(certificate, system=True, source="firmware-backport")
