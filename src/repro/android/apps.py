"""App models: permissions and the two behaviours the paper documents.

* :class:`FreedomLikeApp` — §6's case study: a root-requiring app (the
  "Freedom" in-app-purchase bypasser) that silently installs its own CA
  ("CRAZY HOUSE") into the system store.
* :class:`VpnInterceptorApp` — §7's case study: a Reality Mine-style
  market-research app that requests the VPN permission, routes all
  traffic through a tun interface to an HTTPS interception proxy, and
  needs *no* root-store change at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.device import AndroidDevice
from repro.tlssim.proxy import InterceptionProxy
from repro.tlssim.trustmanager import TrustProfile
from repro.x509.certificate import Certificate

#: Android permission strings used by the modeled apps.
PERM_INTERNET = "android.permission.INTERNET"
PERM_VPN = "android.permission.BIND_VPN_SERVICE"
PERM_NETWORK_SETTINGS = "android.permission.WRITE_SETTINGS"
PERM_ACCOUNTS = "android.permission.GET_ACCOUNTS"
PERM_PHONE_STATE = "android.permission.READ_PHONE_STATE"
PERM_CONTACTS = "android.permission.READ_CONTACTS"
PERM_SMS = "android.permission.READ_SMS"
PERM_LOCATION = "android.permission.ACCESS_FINE_LOCATION"
PERM_LOGS = "android.permission.READ_LOGS"
PERM_HISTORY = "com.android.browser.permission.READ_HISTORY_BOOKMARKS"


@dataclass
class App:
    """A generic installed application."""

    name: str
    permissions: frozenset[str] = frozenset({PERM_INTERNET})
    requires_root: bool = False

    def on_install(self, device: AndroidDevice) -> None:
        """Hook run at install time; benign apps do nothing."""


@dataclass
class FreedomLikeApp(App):
    """Root-requiring app that injects a CA into the system store (§6).

    The paper's instance compels the user to grant "egregious
    permissions" and installs the Madkit/CRAZY HOUSE certificate on 70
    observed handsets.
    """

    name: str = "Freedom"
    permissions: frozenset[str] = frozenset(
        {PERM_INTERNET, PERM_ACCOUNTS, PERM_PHONE_STATE, PERM_NETWORK_SETTINGS}
    )
    requires_root: bool = True
    ca_certificate: Certificate | None = None

    def on_install(self, device: AndroidDevice) -> None:
        """Silently add the app's CA -- no user dialog involved."""
        if self.ca_certificate is None:
            raise ValueError("FreedomLikeApp needs its CA certificate configured")
        device.app_add_certificate(self.ca_certificate, self.name)


@dataclass
class VpnInterceptorApp(App):
    """A traffic-profiling app using the VPN permission (§7).

    The permission set mirrors the Play-store listing the paper quotes:
    network-configuration change + traffic interception + extensive data
    access. The app points the device's network path at the operator's
    interception proxy; note it requires *no* root and installs *no*
    certificate.
    """

    name: str = "AnalyzeMe"
    permissions: frozenset[str] = frozenset(
        {
            PERM_INTERNET,
            PERM_VPN,
            PERM_NETWORK_SETTINGS,
            PERM_CONTACTS,
            PERM_SMS,
            PERM_LOCATION,
            PERM_PHONE_STATE,
            PERM_LOGS,
            PERM_HISTORY,
        }
    )
    requires_root: bool = False
    proxy: InterceptionProxy = field(default_factory=InterceptionProxy)

    def on_install(self, device: AndroidDevice) -> None:
        """Create the tun interface: all device traffic now relays
        through the proxy."""
        device.proxy = self.proxy

    @property
    def overreaching_permissions(self) -> frozenset[str]:
        """Permissions beyond what a benign VPN client needs (§8's
        'masking malicious intentions' discussion)."""
        benign = {PERM_INTERNET, PERM_VPN, PERM_NETWORK_SETTINGS}
        return self.permissions - frozenset(benign)


@dataclass
class VulnerableTrustApp(App):
    """An app shipping a broken TrustManager/HostnameVerifier.

    The "Danger is My Middle Name" population: the app needs no special
    permission and touches neither the store nor the network path — it
    just accepts chains the platform would reject. Installing it sets
    the device's app-level :class:`~repro.tlssim.trustmanager.
    TrustProfile`, which the Netalyzr client applies on every probe.
    """

    name: str = "WeakTrust"
    requires_root: bool = False
    profile: TrustProfile | None = None

    def on_install(self, device: AndroidDevice) -> None:
        """Route the device's TLS verdicts through the broken profile."""
        device.trust_profile = self.profile
