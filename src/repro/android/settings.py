"""The Security settings surface and its user-awareness signals.

§8 questions "whether users have sufficient awareness of the
consequences of their actions". This module models the surface that
awareness flows through: the credential-storage settings screen and the
OS-level signals real Android emits — the "Network may be monitored"
persistent warning once any user CA is installed, and the confirmation
dialog before disabling a system root. Every emitted event is recorded
so experiments can measure what a user was (or wasn't) told.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.android.device import AndroidDevice
from repro.x509.certificate import Certificate


class EventKind(enum.Enum):
    """The user-visible signal kinds."""

    INSTALL_PROMPT = "install_prompt"  # name-the-certificate dialog
    MONITORING_WARNING = "monitoring_warning"  # persistent status warning
    DISABLE_CONFIRMATION = "disable_confirmation"
    SILENT_CHANGE = "silent_change"  # store changed with NO signal (§6)


@dataclass(frozen=True)
class UserEvent:
    """One signal shown to (or withheld from) the user."""

    kind: EventKind
    message: str
    certificate: Certificate | None = None


@dataclass
class SecuritySettings:
    """The Settings > Security > Credential storage surface."""

    device: AndroidDevice
    events: list[UserEvent] = field(default_factory=list)

    # -- listing -----------------------------------------------------------------

    def system_credentials(self) -> list[Certificate]:
        """The system tab: firmware-shipped roots."""
        return [
            entry.certificate
            for entry in self.device.store.entries()
            if not entry.source.startswith("app:") and entry.source != "user"
        ]

    def user_credentials(self) -> list[Certificate]:
        """The user tab: everything the user (or an app) added."""
        return [
            entry.certificate
            for entry in self.device.store.entries()
            if entry.source == "user" or entry.source.startswith("app:")
        ]

    # -- user actions ----------------------------------------------------------------

    def install_certificate(self, certificate: Certificate, name: str = "") -> None:
        """The user-initiated install flow: prompt, install, then the
        persistent monitoring warning."""
        label = name or certificate.subject.common_name or "certificate"
        self.events.append(
            UserEvent(
                kind=EventKind.INSTALL_PROMPT,
                message=f'Name this certificate: "{label}"',
                certificate=certificate,
            )
        )
        self.device.user_add_certificate(certificate)
        self._raise_monitoring_warning()

    def disable_system_certificate(self, certificate: Certificate) -> bool:
        """The disable flow: confirmation dialog, then the change."""
        self.events.append(
            UserEvent(
                kind=EventKind.DISABLE_CONFIRMATION,
                message="Disable this certificate? Secure connections that "
                "depend on it will stop working.",
                certificate=certificate,
            )
        )
        return self.device.user_disable_certificate(certificate)

    # -- signals --------------------------------------------------------------------

    def _raise_monitoring_warning(self) -> None:
        if not any(
            event.kind is EventKind.MONITORING_WARNING for event in self.events
        ):
            self.events.append(
                UserEvent(
                    kind=EventKind.MONITORING_WARNING,
                    message="Network may be monitored by an unknown third party",
                )
            )

    def reconcile(self) -> list[UserEvent]:
        """Detect store changes that bypassed this surface (§6's gap).

        App-injected roots reached the store without any dialog; real
        Android raises no signal for them either — the reconciler
        records that silence explicitly as SILENT_CHANGE events.
        """
        signalled = {
            event.certificate.encoded
            for event in self.events
            if event.certificate is not None
        }
        silent = []
        for entry in self.device.store.entries():
            if (
                entry.source.startswith("app:")
                and entry.certificate.encoded not in signalled
            ):
                event = UserEvent(
                    kind=EventKind.SILENT_CHANGE,
                    message=f"{entry.certificate.subject.common_name} was added "
                    f"by {entry.source[4:]} without any user signal",
                    certificate=entry.certificate,
                )
                silent.append(event)
                self.events.append(event)
        return silent

    @property
    def monitoring_warning_active(self) -> bool:
        """Is the persistent warning currently shown?"""
        return any(
            event.kind is EventKind.MONITORING_WARNING for event in self.events
        )
