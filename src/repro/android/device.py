"""The AndroidDevice model.

A device couples a hardware identity (manufacturer/model), an OS build
(AOSP version + firmware customization), a network context (operator,
country), and the mutable runtime state the study measures: the root
store, installed apps, rooted status and any on-path proxy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.rootstore.store import RootStore, StorePermissionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.android.apps import App
    from repro.tlssim.proxy import InterceptionProxy


@dataclass(frozen=True)
class DeviceSpec:
    """The immutable identity of a handset."""

    manufacturer: str
    model: str
    os_version: str
    operator: str  # e.g. "VERIZON(US)"; "WIFI" for unsubsidized
    country: str = "US"

    @property
    def is_nexus(self) -> bool:
        """Nexus devices run stock AOSP firmware."""
        return "Nexus" in self.model


class AndroidDevice:
    """A handset with its runtime security state."""

    def __init__(
        self,
        spec: DeviceSpec,
        store: RootStore,
        *,
        device_id: str = "",
        rooted: bool = False,
        shared_store: bool = False,
    ):
        self.spec = spec
        self.store = store
        self.device_id = device_id or f"{spec.manufacturer}-{spec.model}"
        self.rooted = rooted
        #: Copy-on-write: a population shares one store object per
        #: firmware image; the first mutation privatizes this device's.
        self._store_shared = shared_store
        self.apps: list["App"] = []
        self.proxy: "InterceptionProxy | None" = None
        #: App-level validation override (a vulnerable TrustManager,
        #: :mod:`repro.tlssim.trustmanager`); None = the platform default.
        self.trust_profile = None
        #: WiFi SSID / cellular network currently attached (session context).
        self.wifi_ssid: str | None = None
        self.public_ip: str = "0.0.0.0"
        #: The network currently attached; differs from the subscription
        #: (``spec.operator``) when the user roams abroad (§5.2's
        #: Telefonica-on-Claro observations).
        self.attached_operator: str = spec.operator
        self.attached_country: str = spec.country

    # -- root store access paths -------------------------------------------------

    def _own_store(self) -> RootStore:
        """Privatize the store before the first mutation (copy-on-write)."""
        if self._store_shared:
            self.store = self.store.copy(f"device-{self.device_id}")
            self._store_shared = False
        return self.store

    def user_add_certificate(self, certificate) -> None:
        """The settings-UI path: any user can add a certificate (§2)."""
        self._own_store().add(certificate, system=True, source="user")

    def user_disable_certificate(self, certificate) -> bool:
        """The settings-UI path: any user can disable a system root (§2)."""
        return self._own_store().disable(certificate)

    def app_add_certificate(self, certificate, app_name: str) -> None:
        """The programmatic path: requires system permission, which on a
        rooted device any root-granted app effectively has (§6)."""
        if not self.rooted:
            raise StorePermissionError(
                f"{app_name} cannot modify the root store without root"
            )
        self._own_store().add(certificate, system=True, source=f"app:{app_name}")

    def app_remove_certificate(self, certificate, app_name: str) -> bool:
        """Root-privileged apps can also delete roots (§6)."""
        if not self.rooted:
            raise StorePermissionError(
                f"{app_name} cannot modify the root store without root"
            )
        return self._own_store().remove(certificate, system=True)

    # -- apps ------------------------------------------------------------------------

    def install_app(self, app: "App") -> None:
        """Install an app; the app's on_install hook runs immediately."""
        if app.requires_root and not self.rooted:
            raise PermissionError(
                f"{app.name} requires root and the device is not rooted"
            )
        self.apps.append(app)
        app.on_install(self)

    @property
    def app_names(self) -> list[str]:
        """Names of installed apps."""
        return [app.name for app in self.apps]

    def __repr__(self) -> str:
        return (
            f"<AndroidDevice {self.spec.manufacturer} {self.spec.model} "
            f"{self.spec.os_version} rooted={self.rooted} certs={len(self.store)}>"
        )
