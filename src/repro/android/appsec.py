"""App-level TLS validation stacks, correct and broken.

§2 notes that "SSL library developers delegate the responsibility to
implement such techniques to application developers ... apps frequently
do not employ those checks correctly", citing Fahl et al. and Georgiev
et al. This module models the notorious failure patterns those studies
catalogued, so their impact can be quantified against the same
simulated attackers the rest of the library uses:

* ``ACCEPT_ALL`` — the empty ``X509TrustManager`` that trusts anything;
* ``NO_HOSTNAME`` — chain validated, hostname never checked;
* ``ACCEPT_EXPIRED`` — validity window ignored;
* ``ACCEPT_SELF_SIGNED`` — any self-signed certificate accepted;
* ``CORRECT`` — full validation (the baseline);
* ``PINNED`` — full validation plus certificate pinning.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.rootstore.store import RootStore
from repro.tlssim.handshake import HandshakeResult, TlsServer
from repro.tlssim.pinning import PinStore
from repro.x509.chain import ChainVerifier, ValidationResult


class ValidationProfile(enum.Enum):
    """The validation behaviours observed in real app corpora."""

    CORRECT = "correct"
    PINNED = "pinned"
    ACCEPT_ALL = "accept_all"
    NO_HOSTNAME = "no_hostname"
    ACCEPT_EXPIRED = "accept_expired"
    ACCEPT_SELF_SIGNED = "accept_self_signed"


@dataclass
class AppTlsStack:
    """One app's TLS stack: a profile over a device store."""

    profile: ValidationProfile
    store: RootStore
    pins: PinStore = field(default_factory=PinStore)
    proxy: object | None = None

    def connect(self, server: TlsServer) -> HandshakeResult:
        """Run a handshake under this app's validation behaviour."""
        chain = server.present_chain()
        intercepted = False
        if self.proxy is not None:
            chain, intercepted = self.proxy.relay(server.host, server.port, chain)

        profile = self.profile
        if profile is ValidationProfile.ACCEPT_ALL:
            validation = ValidationResult(trusted=True, path=tuple(chain))
            pin_ok = True
        elif profile is ValidationProfile.ACCEPT_SELF_SIGNED and chain and chain[
            0
        ].is_self_signed:
            validation = ValidationResult(trusted=True, path=tuple(chain))
            pin_ok = True
        else:
            hostname = None if profile is ValidationProfile.NO_HOSTNAME else server.host
            verifier = ChainVerifier(
                self.store.certificates(),
                check_validity=profile is not ValidationProfile.ACCEPT_EXPIRED,
            )
            validation = verifier.validate(list(chain), hostname=hostname)
            pin_ok = (
                self.pins.check(server.host, tuple(chain))
                if profile is ValidationProfile.PINNED
                else True
            )
        return HandshakeResult(
            host=server.host,
            port=server.port,
            presented_chain=tuple(chain),
            validation=validation,
            pin_ok=pin_ok,
            intercepted=intercepted,
        )


@dataclass(frozen=True)
class AttackOutcome:
    """Did an attack succeed against a given stack?"""

    profile: ValidationProfile
    attack: str
    connection_accepted: bool


#: The attack repertoire of the Fahl/Georgiev MITM studies.
ATTACKS = (
    "self_signed",  # attacker presents a self-signed cert for the host
    "wrong_host",  # valid cert for a different hostname
    "expired",  # correctly-chained but expired cert
    "trusted_mitm",  # proxy root present in the device store (§6/§7)
)


def run_attack_matrix(
    stacks: dict[ValidationProfile, AppTlsStack],
    servers: dict[str, TlsServer],
) -> list[AttackOutcome]:
    """Evaluate every attack against every stack.

    ``servers`` maps each attack name to a server presenting that
    attack's chain (built by the caller from the traffic generator and
    proxy; see ``examples/app_validation_study.py``).
    """
    outcomes = []
    for attack in ATTACKS:
        server = servers.get(attack)
        if server is None:
            continue
        for profile, stack in stacks.items():
            result = stack.connect(server)
            outcomes.append(
                AttackOutcome(
                    profile=profile,
                    attack=attack,
                    connection_accepted=result.trusted,
                )
            )
    return outcomes


def exposure_summary(outcomes: list[AttackOutcome]) -> dict[ValidationProfile, int]:
    """Attacks each profile falls to (the study's headline count)."""
    summary: dict[ValidationProfile, int] = {}
    for outcome in outcomes:
        summary.setdefault(outcome.profile, 0)
        if outcome.connection_accepted:
            summary[outcome.profile] += 1
    return summary
