"""The Android device substrate: devices, firmware, apps, populations.

Models the parts of Android the paper's measurements touch: the
system-wide read-only root store and its settings API, vendor/operator
firmware customization, rooting, and the two app behaviours the paper
documents (root-store injection by root-privileged apps, and VPN-based
traffic interception).
"""

from repro.android.device import AndroidDevice, DeviceSpec
from repro.android.firmware import FirmwareBuilder, FirmwareImage
from repro.android.apps import App, FreedomLikeApp, VpnInterceptorApp
from repro.android.population import PopulationConfig, PopulationGenerator
from repro.android.ota import OtaResult, OtaUpdater
from repro.android.appsec import AppTlsStack, ValidationProfile

__all__ = [
    "AndroidDevice",
    "DeviceSpec",
    "FirmwareBuilder",
    "FirmwareImage",
    "App",
    "FreedomLikeApp",
    "VpnInterceptorApp",
    "PopulationConfig",
    "PopulationGenerator",
    "OtaResult",
    "OtaUpdater",
    "AppTlsStack",
    "ValidationProfile",
]
