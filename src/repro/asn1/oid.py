"""OBJECT IDENTIFIER type and its DER arc codec."""

from __future__ import annotations

from typing import Iterable, Iterator


class ObjectIdentifier:
    """An immutable OBJECT IDENTIFIER (dotted sequence of integer arcs).

    Instances are hashable and compare by value, so they can key OID
    registries (see :mod:`repro.asn1.objects`).
    """

    __slots__ = ("_arcs", "_dotted")

    def __init__(self, dotted_or_arcs: str | Iterable[int]):
        if isinstance(dotted_or_arcs, str):
            parts = dotted_or_arcs.split(".")
            if len(parts) < 2:
                raise ValueError(f"OID needs at least two arcs: {dotted_or_arcs!r}")
            try:
                arcs = tuple(int(part) for part in parts)
            except ValueError as exc:
                raise ValueError(f"invalid OID string {dotted_or_arcs!r}") from exc
        else:
            arcs = tuple(int(arc) for arc in dotted_or_arcs)
            if len(arcs) < 2:
                raise ValueError("OID needs at least two arcs")
        if any(arc < 0 for arc in arcs):
            raise ValueError("OID arcs must be non-negative")
        if arcs[0] > 2 or (arcs[0] < 2 and arcs[1] > 39):
            raise ValueError(f"invalid leading OID arcs {arcs[:2]}")
        self._arcs = arcs

    @property
    def arcs(self) -> tuple[int, ...]:
        """The arc tuple, e.g. ``(2, 5, 4, 3)`` for commonName."""
        return self._arcs

    @property
    def dotted(self) -> str:
        """Dotted-decimal form, e.g. ``"2.5.4.3"``.

        Cached: name normalization renders the same few registry OIDs
        millions of times across a study.
        """
        dotted = getattr(self, "_dotted", None)
        if dotted is None:
            dotted = self._dotted = ".".join(str(arc) for arc in self._arcs)
        return dotted

    def encode_value(self) -> bytes:
        """DER content octets (without tag/length) for this OID."""
        first = 40 * self._arcs[0] + self._arcs[1]
        out = bytearray(_encode_base128(first))
        for arc in self._arcs[2:]:
            out += _encode_base128(arc)
        return bytes(out)

    @classmethod
    def decode_value(cls, data: bytes) -> "ObjectIdentifier":
        """Decode DER content octets into an :class:`ObjectIdentifier`."""
        if not data:
            raise ValueError("empty OID content")
        if data[-1] & 0x80:
            raise ValueError("truncated OID: final arc octet has continuation bit")
        arcs: list[int] = []
        for value in _iter_base128(data):
            if not arcs:
                if value < 40:
                    arcs.extend((0, value))
                elif value < 80:
                    arcs.extend((1, value - 40))
                else:
                    arcs.extend((2, value - 80))
            else:
                arcs.append(value)
        return cls(arcs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectIdentifier):
            return self._arcs == other._arcs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._arcs)

    def __lt__(self, other: "ObjectIdentifier") -> bool:
        return self._arcs < other._arcs

    def __repr__(self) -> str:
        return f"ObjectIdentifier({self.dotted!r})"

    def __str__(self) -> str:
        return self.dotted


def _encode_base128(value: int) -> bytes:
    """Encode one arc in base-128 with continuation bits (minimal form)."""
    if value == 0:
        return b"\x00"
    chunks = []
    while value:
        chunks.append(value & 0x7F)
        value >>= 7
    chunks.reverse()
    out = bytearray(chunk | 0x80 for chunk in chunks[:-1])
    out.append(chunks[-1])
    return bytes(out)


def _iter_base128(data: bytes) -> Iterator[int]:
    """Yield arc values from base-128 content octets, rejecting padding."""
    value = 0
    start = True
    for octet in data:
        if start and octet == 0x80:
            raise ValueError("non-minimal base-128 arc encoding")
        value = (value << 7) | (octet & 0x7F)
        if octet & 0x80:
            start = False
        else:
            yield value
            value = 0
            start = True
