"""Canonical DER encoding of the universal types used by X.509."""

from __future__ import annotations

import datetime
from typing import Iterable

from repro.asn1.oid import ObjectIdentifier
from repro.asn1.tags import CONSTRUCTED, Tag, TagClass, UniversalTag


def encode_length(length: int) -> bytes:
    """Encode a definite length in minimal DER form."""
    if length < 0:
        raise ValueError("length must be non-negative")
    if length < 0x80:
        return bytes([length])
    octets = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(octets)]) + octets


def encode_tlv(tag: Tag | int, content: bytes) -> bytes:
    """Encode a full TLV from a tag (or raw identifier octet) and content."""
    identifier = tag.identifier_octet if isinstance(tag, Tag) else tag
    return bytes([identifier]) + encode_length(len(content)) + content


def encode_boolean(value: bool) -> bytes:
    """DER BOOLEAN: TRUE is 0xFF, FALSE is 0x00."""
    return encode_tlv(Tag.universal(UniversalTag.BOOLEAN), b"\xff" if value else b"\x00")


def encode_integer(value: int) -> bytes:
    """DER INTEGER (two's complement, minimal octets)."""
    if value == 0:
        content = b"\x00"
    else:
        length = (value.bit_length() + 8) // 8  # +8 leaves room for sign bit
        content = value.to_bytes(length, "big", signed=True)
        # Strip a redundant leading octet if the sign bit still matches.
        if len(content) > 1 and (
            (content[0] == 0x00 and not content[1] & 0x80)
            or (content[0] == 0xFF and content[1] & 0x80)
        ):
            content = content[1:]
    return encode_tlv(Tag.universal(UniversalTag.INTEGER), content)


def encode_bit_string(data: bytes, unused_bits: int = 0) -> bytes:
    """DER BIT STRING with the given number of unused trailing bits."""
    if not 0 <= unused_bits <= 7:
        raise ValueError("unused_bits must be in [0, 7]")
    if unused_bits and not data:
        raise ValueError("empty BIT STRING cannot have unused bits")
    return encode_tlv(
        Tag.universal(UniversalTag.BIT_STRING), bytes([unused_bits]) + data
    )


def encode_octet_string(data: bytes) -> bytes:
    """DER OCTET STRING."""
    return encode_tlv(Tag.universal(UniversalTag.OCTET_STRING), data)


def encode_null() -> bytes:
    """DER NULL."""
    return encode_tlv(Tag.universal(UniversalTag.NULL), b"")


def encode_oid(oid: ObjectIdentifier | str) -> bytes:
    """DER OBJECT IDENTIFIER."""
    if isinstance(oid, str):
        oid = ObjectIdentifier(oid)
    return encode_tlv(Tag.universal(UniversalTag.OBJECT_IDENTIFIER), oid.encode_value())


_PRINTABLE_CHARS = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 '()+,-./:=?"
)


def is_printable(text: str) -> bool:
    """True if *text* fits the ASN.1 PrintableString character set."""
    return all(char in _PRINTABLE_CHARS for char in text)


def encode_printable_string(text: str) -> bytes:
    """DER PrintableString; rejects characters outside the allowed set."""
    if not is_printable(text):
        raise ValueError(f"not a PrintableString: {text!r}")
    return encode_tlv(Tag.universal(UniversalTag.PRINTABLE_STRING), text.encode("ascii"))


def encode_utf8_string(text: str) -> bytes:
    """DER UTF8String."""
    return encode_tlv(Tag.universal(UniversalTag.UTF8_STRING), text.encode("utf-8"))


def encode_ia5_string(text: str) -> bytes:
    """DER IA5String (ASCII)."""
    return encode_tlv(Tag.universal(UniversalTag.IA5_STRING), text.encode("ascii"))


def encode_utc_time(moment: datetime.datetime) -> bytes:
    """DER UTCTime (``YYMMDDHHMMSSZ``); valid for years 1950-2049."""
    moment = _as_utc(moment)
    if not 1950 <= moment.year <= 2049:
        raise ValueError(f"UTCTime cannot represent year {moment.year}")
    text = moment.strftime("%y%m%d%H%M%SZ")
    return encode_tlv(Tag.universal(UniversalTag.UTC_TIME), text.encode("ascii"))


def encode_generalized_time(moment: datetime.datetime) -> bytes:
    """DER GeneralizedTime (``YYYYMMDDHHMMSSZ``)."""
    moment = _as_utc(moment)
    text = moment.strftime("%Y%m%d%H%M%SZ")
    return encode_tlv(Tag.universal(UniversalTag.GENERALIZED_TIME), text.encode("ascii"))


def encode_x509_time(moment: datetime.datetime) -> bytes:
    """RFC 5280 Time: UTCTime through 2049, GeneralizedTime after."""
    moment = _as_utc(moment)
    if moment.year <= 2049:
        return encode_utc_time(moment)
    return encode_generalized_time(moment)


def encode_sequence(components: Iterable[bytes]) -> bytes:
    """DER SEQUENCE of pre-encoded components."""
    return encode_tlv(
        Tag.universal(UniversalTag.SEQUENCE, constructed=True), b"".join(components)
    )


def encode_set(components: Iterable[bytes]) -> bytes:
    """DER SET OF: components sorted by encoding, per DER canonical rules."""
    ordered = sorted(components)
    return encode_tlv(
        Tag.universal(UniversalTag.SET, constructed=True), b"".join(ordered)
    )


def encode_explicit(number: int, inner: bytes) -> bytes:
    """Explicitly tagged ``[number]`` wrapper around a complete TLV."""
    return encode_tlv(Tag.context(number, constructed=True), inner)


def encode_implicit(number: int, inner: bytes, constructed: bool | None = None) -> bytes:
    """Implicitly retag a complete TLV as context ``[number]``.

    The constructed bit is preserved from the inner encoding unless
    overridden.
    """
    if not inner:
        raise ValueError("cannot retag empty encoding")
    if constructed is None:
        constructed = bool(inner[0] & CONSTRUCTED)
    identifier = int(TagClass.CONTEXT) | number
    if constructed:
        identifier |= CONSTRUCTED
    # Skip the original identifier octet; keep length + content.
    return bytes([identifier]) + inner[1:]


def _as_utc(moment: datetime.datetime) -> datetime.datetime:
    """Normalize a datetime to naive-UTC with whole-second resolution."""
    if moment.tzinfo is not None:
        moment = moment.astimezone(datetime.timezone.utc).replace(tzinfo=None)
    return moment.replace(microsecond=0)
