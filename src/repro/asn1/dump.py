"""DER structure pretty-printer (the ``openssl asn1parse`` equivalent)."""

from __future__ import annotations

from repro.asn1.decoder import Asn1Error, Asn1Object, decode_all
from repro.asn1.tags import STRING_TAGS, TIME_TAGS, TagClass, UniversalTag


def _summarize_primitive(obj: Asn1Object) -> str:
    """A short rendering of a primitive value."""
    tag = obj.tag
    if tag.tag_class is TagClass.UNIVERSAL:
        number = tag.number
        try:
            if number == int(UniversalTag.INTEGER):
                value = obj.as_integer()
                if value.bit_length() > 64:
                    return f"{value:#x}"
                return str(value)
            if number == int(UniversalTag.BOOLEAN):
                return str(obj.as_boolean())
            if number == int(UniversalTag.OBJECT_IDENTIFIER):
                return obj.as_oid().dotted
            if number == int(UniversalTag.NULL):
                return ""
            if number in {int(t) for t in STRING_TAGS}:
                return repr(obj.as_string())
            if number in {int(t) for t in TIME_TAGS}:
                return obj.as_time().isoformat()
            if number == int(UniversalTag.BIT_STRING):
                data, unused = obj.as_bit_string()
                return f"{len(data)} bytes, {unused} unused bits"
            if number == int(UniversalTag.OCTET_STRING):
                body = obj.content.hex()
                return body if len(body) <= 32 else body[:32] + "..."
        except Asn1Error:
            pass
    body = obj.content.hex()
    return body if len(body) <= 32 else body[:32] + "..."


def dump_der(data: bytes, *, indent: str = "  ") -> str:
    """Render a DER blob as an indented structural listing.

    Constructed context-specific values are descended into when their
    content parses as DER (the common EXPLICIT-tag case).
    """
    lines: list[str] = []

    def walk(obj: Asn1Object, depth: int, offset: int) -> None:
        header = f"{offset:>5}: {indent * depth}{obj.tag}"
        if obj.tag.constructed:
            lines.append(f"{header} ({len(obj.content)} bytes)")
            child_offset = offset + len(obj.encoded) - len(obj.content)
            try:
                children = obj.children
            except Asn1Error:
                lines.append(
                    f"{offset:>5}: {indent * (depth + 1)}<opaque constructed body>"
                )
                return
            for child in children:
                walk(child, depth + 1, child_offset)
                child_offset += len(child.encoded)
        else:
            summary = _summarize_primitive(obj)
            lines.append(f"{header}: {summary}" if summary else header)

    offset = 0
    for obj in decode_all(data):
        walk(obj, 0, offset)
        offset += len(obj.encoded)
    return "\n".join(lines)
