"""Pure-Python DER (Distinguished Encoding Rules) substrate.

This subpackage implements the subset of ASN.1/DER needed to build and
parse real X.509 certificates from scratch: the universal types used by
RFC 5280 (INTEGER, BIT STRING, OCTET STRING, NULL, OBJECT IDENTIFIER,
UTF8String/PrintableString/IA5String, UTCTime/GeneralizedTime, SEQUENCE,
SET, BOOLEAN) plus context-specific tagging.

The encoder produces canonical DER; the decoder is strict and rejects
non-minimal lengths, trailing garbage and malformed structures, which the
test suite exercises with deliberately corrupted inputs.
"""

from repro.asn1.tags import Tag, TagClass, UniversalTag
from repro.asn1.oid import ObjectIdentifier
from repro.asn1.encoder import (
    encode_tlv,
    encode_boolean,
    encode_integer,
    encode_bit_string,
    encode_octet_string,
    encode_null,
    encode_oid,
    encode_printable_string,
    encode_utf8_string,
    encode_ia5_string,
    encode_utc_time,
    encode_generalized_time,
    encode_sequence,
    encode_set,
    encode_explicit,
    encode_implicit,
)
from repro.asn1.decoder import Asn1Error, Asn1Object, decode, decode_all

__all__ = [
    "Tag",
    "TagClass",
    "UniversalTag",
    "ObjectIdentifier",
    "Asn1Error",
    "Asn1Object",
    "decode",
    "decode_all",
    "encode_tlv",
    "encode_boolean",
    "encode_integer",
    "encode_bit_string",
    "encode_octet_string",
    "encode_null",
    "encode_oid",
    "encode_printable_string",
    "encode_utf8_string",
    "encode_ia5_string",
    "encode_utc_time",
    "encode_generalized_time",
    "encode_sequence",
    "encode_set",
    "encode_explicit",
    "encode_implicit",
]
