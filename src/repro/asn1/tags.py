"""ASN.1 tag model: classes, universal tag numbers, identifier octets.

DER identifiers used by X.509 fit in a single identifier octet (tag
numbers < 31), so the codec supports only low-tag-number form; high tag
numbers are rejected explicitly rather than mis-parsed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TagClass(enum.IntEnum):
    """The two-bit tag class of an ASN.1 identifier octet."""

    UNIVERSAL = 0x00
    APPLICATION = 0x40
    CONTEXT = 0x80
    PRIVATE = 0xC0


class UniversalTag(enum.IntEnum):
    """Universal tag numbers used by X.509 (RFC 5280) structures."""

    BOOLEAN = 0x01
    INTEGER = 0x02
    BIT_STRING = 0x03
    OCTET_STRING = 0x04
    NULL = 0x05
    OBJECT_IDENTIFIER = 0x06
    UTF8_STRING = 0x0C
    SEQUENCE = 0x10
    SET = 0x11
    PRINTABLE_STRING = 0x13
    T61_STRING = 0x14
    IA5_STRING = 0x16
    UTC_TIME = 0x17
    GENERALIZED_TIME = 0x18
    BMP_STRING = 0x1E


#: Identifier-octet bit marking a constructed (vs primitive) encoding.
CONSTRUCTED = 0x20

#: String types whose value octets decode to text.
STRING_TAGS = frozenset(
    {
        UniversalTag.UTF8_STRING,
        UniversalTag.PRINTABLE_STRING,
        UniversalTag.T61_STRING,
        UniversalTag.IA5_STRING,
        UniversalTag.BMP_STRING,
    }
)

#: Time types.
TIME_TAGS = frozenset({UniversalTag.UTC_TIME, UniversalTag.GENERALIZED_TIME})


@dataclass(frozen=True)
class Tag:
    """A decoded ASN.1 tag: class bits, constructed flag and tag number."""

    tag_class: TagClass
    constructed: bool
    number: int

    def __post_init__(self) -> None:
        if not 0 <= self.number < 31:
            raise ValueError(
                f"only low-tag-number form supported, got tag number {self.number}"
            )

    @property
    def identifier_octet(self) -> int:
        """The single DER identifier octet for this tag."""
        octet = int(self.tag_class) | self.number
        if self.constructed:
            octet |= CONSTRUCTED
        return octet

    @classmethod
    def from_octet(cls, octet: int) -> "Tag":
        """Decode a single identifier octet into a :class:`Tag`."""
        number = octet & 0x1F
        if number == 0x1F:
            raise ValueError("high-tag-number form is not supported")
        return cls(
            tag_class=TagClass(octet & 0xC0),
            constructed=bool(octet & CONSTRUCTED),
            number=number,
        )

    @classmethod
    def universal(cls, number: UniversalTag, constructed: bool = False) -> "Tag":
        """Build a universal-class tag."""
        return cls(TagClass.UNIVERSAL, constructed, int(number))

    @classmethod
    def context(cls, number: int, constructed: bool = True) -> "Tag":
        """Build a context-specific tag (as used by X.509 [0]..[3])."""
        return cls(TagClass.CONTEXT, constructed, number)

    def is_universal(self, number: UniversalTag) -> bool:
        """True if this is the universal tag with the given number."""
        return self.tag_class is TagClass.UNIVERSAL and self.number == int(number)

    def is_context(self, number: int) -> bool:
        """True if this is the context-specific tag with the given number."""
        return self.tag_class is TagClass.CONTEXT and self.number == number

    def __str__(self) -> str:
        if self.tag_class is TagClass.UNIVERSAL:
            try:
                return UniversalTag(self.number).name
            except ValueError:
                return f"UNIVERSAL {self.number}"
        return f"{self.tag_class.name}[{self.number}]"
