"""Strict DER decoder producing a navigable :class:`Asn1Object` tree.

The decoder enforces DER canonical form: definite, minimal lengths;
minimal INTEGER content; no trailing garbage when asked to decode a
single object. Lenient parsing would hide exactly the certificate
malformations the test suite wants to detect.
"""

from __future__ import annotations

import datetime
from typing import Iterator

from repro.asn1.oid import ObjectIdentifier
from repro.asn1.tags import STRING_TAGS, Tag, TagClass, UniversalTag


class Asn1Error(ValueError):
    """Raised on any malformed or non-DER input."""


class Asn1Object:
    """One decoded TLV.

    Constructed objects expose their children via :attr:`children` and
    indexing; primitive objects expose typed accessors
    (:meth:`as_integer`, :meth:`as_oid`, ...) that validate the tag.
    """

    __slots__ = ("tag", "content", "_children", "encoded")

    def __init__(self, tag: Tag, content: bytes, encoded: bytes):
        self.tag = tag
        self.content = content
        self.encoded = encoded
        self._children: list[Asn1Object] | None = None

    # -- structure ---------------------------------------------------------

    @property
    def children(self) -> list["Asn1Object"]:
        """Child TLVs of a constructed object (decoded lazily)."""
        if not self.tag.constructed:
            raise Asn1Error(f"{self.tag} is primitive, has no children")
        if self._children is None:
            self._children = list(_iter_tlvs(self.content))
        return self._children

    def __len__(self) -> int:
        return len(self.children)

    def __getitem__(self, index: int) -> "Asn1Object":
        return self.children[index]

    def __iter__(self) -> Iterator["Asn1Object"]:
        return iter(self.children)

    # -- typed accessors ----------------------------------------------------

    def _expect(self, number: UniversalTag) -> None:
        if not self.tag.is_universal(number):
            raise Asn1Error(f"expected {number.name}, found {self.tag}")

    def as_boolean(self) -> bool:
        """Decode a BOOLEAN (DER requires 0x00 or 0xFF)."""
        self._expect(UniversalTag.BOOLEAN)
        if self.content not in (b"\x00", b"\xff"):
            raise Asn1Error(f"non-DER BOOLEAN content {self.content!r}")
        return self.content == b"\xff"

    def as_integer(self) -> int:
        """Decode an INTEGER, enforcing minimal content octets."""
        self._expect(UniversalTag.INTEGER)
        content = self.content
        if not content:
            raise Asn1Error("empty INTEGER content")
        if len(content) > 1 and (
            (content[0] == 0x00 and not content[1] & 0x80)
            or (content[0] == 0xFF and content[1] & 0x80)
        ):
            raise Asn1Error("non-minimal INTEGER encoding")
        return int.from_bytes(content, "big", signed=True)

    def as_bit_string(self) -> tuple[bytes, int]:
        """Decode a BIT STRING into ``(data, unused_bits)``."""
        self._expect(UniversalTag.BIT_STRING)
        if not self.content:
            raise Asn1Error("empty BIT STRING content")
        unused = self.content[0]
        if unused > 7 or (unused and len(self.content) == 1):
            raise Asn1Error(f"invalid BIT STRING unused-bit count {unused}")
        return self.content[1:], unused

    def as_octet_string(self) -> bytes:
        """Decode an OCTET STRING."""
        self._expect(UniversalTag.OCTET_STRING)
        return self.content

    def as_null(self) -> None:
        """Decode a NULL (must have empty content)."""
        self._expect(UniversalTag.NULL)
        if self.content:
            raise Asn1Error("NULL with non-empty content")

    def as_oid(self) -> ObjectIdentifier:
        """Decode an OBJECT IDENTIFIER."""
        self._expect(UniversalTag.OBJECT_IDENTIFIER)
        try:
            return ObjectIdentifier.decode_value(self.content)
        except ValueError as exc:
            raise Asn1Error(str(exc)) from exc

    def as_string(self) -> str:
        """Decode any supported character-string type to ``str``."""
        if self.tag.tag_class is not TagClass.UNIVERSAL or (
            self.tag.number not in {int(t) for t in STRING_TAGS}
        ):
            raise Asn1Error(f"expected a string type, found {self.tag}")
        if self.tag.number == int(UniversalTag.BMP_STRING):
            return self.content.decode("utf-16-be")
        if self.tag.number == int(UniversalTag.T61_STRING):
            return self.content.decode("latin-1")
        encoding = "utf-8" if self.tag.number == int(UniversalTag.UTF8_STRING) else "ascii"
        try:
            return self.content.decode(encoding)
        except UnicodeDecodeError as exc:
            raise Asn1Error(f"bad {self.tag} content: {exc}") from exc

    def as_time(self) -> datetime.datetime:
        """Decode UTCTime or GeneralizedTime to a naive-UTC datetime."""
        text = self.content.decode("ascii", errors="replace")
        if self.tag.is_universal(UniversalTag.UTC_TIME):
            return _parse_utc_time(text)
        if self.tag.is_universal(UniversalTag.GENERALIZED_TIME):
            return _parse_generalized_time(text)
        raise Asn1Error(f"expected a time type, found {self.tag}")

    def explicit_inner(self) -> "Asn1Object":
        """Unwrap an EXPLICIT context tag, returning the single inner TLV."""
        if self.tag.tag_class is not TagClass.CONTEXT or not self.tag.constructed:
            raise Asn1Error(f"expected constructed context tag, found {self.tag}")
        inner = list(_iter_tlvs(self.content))
        if len(inner) != 1:
            raise Asn1Error(
                f"explicit tag must wrap exactly one TLV, found {len(inner)}"
            )
        return inner[0]

    def __repr__(self) -> str:
        return f"<Asn1Object {self.tag} len={len(self.content)}>"


def _read_tlv(data: bytes, offset: int) -> tuple[Asn1Object, int]:
    """Read one TLV at *offset*; return the object and the next offset."""
    start = offset
    if offset >= len(data):
        raise Asn1Error("truncated input: missing identifier octet")
    try:
        tag = Tag.from_octet(data[offset])
    except ValueError as exc:
        raise Asn1Error(str(exc)) from exc
    offset += 1
    if offset >= len(data):
        raise Asn1Error("truncated input: missing length octet")
    first = data[offset]
    offset += 1
    if first < 0x80:
        length = first
    elif first == 0x80:
        raise Asn1Error("indefinite length is not DER")
    else:
        count = first & 0x7F
        if offset + count > len(data):
            raise Asn1Error("truncated input: long-form length")
        raw = data[offset : offset + count]
        offset += count
        if raw[0] == 0x00:
            raise Asn1Error("non-minimal long-form length (leading zero)")
        length = int.from_bytes(raw, "big")
        if length < 0x80:
            raise Asn1Error("non-minimal long-form length (fits short form)")
    if offset + length > len(data):
        raise Asn1Error("truncated input: content shorter than declared length")
    content = data[offset : offset + length]
    end = offset + length
    return Asn1Object(tag, content, bytes(data[start:end])), end


def _iter_tlvs(data: bytes) -> Iterator[Asn1Object]:
    """Yield consecutive TLVs covering *data* exactly."""
    offset = 0
    while offset < len(data):
        obj, offset = _read_tlv(data, offset)
        yield obj


def decode(data: bytes) -> Asn1Object:
    """Decode exactly one DER object; reject trailing bytes."""
    obj, end = _read_tlv(bytes(data), 0)
    if end != len(data):
        raise Asn1Error(f"{len(data) - end} trailing bytes after DER object")
    return obj


def decode_all(data: bytes) -> list[Asn1Object]:
    """Decode a concatenation of DER objects covering *data* exactly."""
    return list(_iter_tlvs(bytes(data)))


def _parse_utc_time(text: str) -> datetime.datetime:
    """Parse DER UTCTime ``YYMMDDHHMMSSZ`` (RFC 5280 mandates seconds+Z)."""
    if len(text) != 13 or not text.endswith("Z"):
        raise Asn1Error(f"malformed UTCTime {text!r}")
    try:
        parsed = datetime.datetime.strptime(text, "%y%m%d%H%M%SZ")
    except ValueError as exc:
        raise Asn1Error(f"malformed UTCTime {text!r}") from exc
    # RFC 5280: two-digit years 00-49 are 20xx, 50-99 are 19xx -- this is
    # what strptime already does (pivot 69), so re-pivot explicitly.
    year = int(text[:2])
    century = 2000 if year < 50 else 1900
    return parsed.replace(year=century + year)


def _parse_generalized_time(text: str) -> datetime.datetime:
    """Parse DER GeneralizedTime ``YYYYMMDDHHMMSSZ``."""
    if len(text) != 15 or not text.endswith("Z"):
        raise Asn1Error(f"malformed GeneralizedTime {text!r}")
    try:
        return datetime.datetime.strptime(text, "%Y%m%d%H%M%SZ")
    except ValueError as exc:
        raise Asn1Error(f"malformed GeneralizedTime {text!r}") from exc
