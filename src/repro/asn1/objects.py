"""Registry of the OBJECT IDENTIFIERs used by the X.509 layer.

Covers signature algorithms, public-key algorithms, distinguished-name
attribute types, and the certificate extensions RFC 5280 profiles.
"""

from __future__ import annotations

from repro.asn1.oid import ObjectIdentifier

# -- public-key algorithms ---------------------------------------------------

RSA_ENCRYPTION = ObjectIdentifier("1.2.840.113549.1.1.1")

# -- signature algorithms ----------------------------------------------------

MD5_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.4")
SHA1_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.5")
SHA256_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.11")
SHA384_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.12")
SHA512_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.13")

#: signature-algorithm OID -> hash name understood by hashlib
SIGNATURE_HASHES: dict[ObjectIdentifier, str] = {
    MD5_WITH_RSA: "md5",
    SHA1_WITH_RSA: "sha1",
    SHA256_WITH_RSA: "sha256",
    SHA384_WITH_RSA: "sha384",
    SHA512_WITH_RSA: "sha512",
}

#: hash name -> signature-algorithm OID
HASH_SIGNATURE_OIDS: dict[str, ObjectIdentifier] = {
    name: oid for oid, name in SIGNATURE_HASHES.items()
}

# -- DigestInfo digest-algorithm OIDs (PKCS#1 v1.5) ---------------------------

DIGEST_ALGORITHM_OIDS: dict[str, ObjectIdentifier] = {
    "md5": ObjectIdentifier("1.2.840.113549.2.5"),
    "sha1": ObjectIdentifier("1.3.14.3.2.26"),
    "sha256": ObjectIdentifier("2.16.840.1.101.3.4.2.1"),
    "sha384": ObjectIdentifier("2.16.840.1.101.3.4.2.2"),
    "sha512": ObjectIdentifier("2.16.840.1.101.3.4.2.3"),
}

# -- distinguished-name attribute types ---------------------------------------

COMMON_NAME = ObjectIdentifier("2.5.4.3")
SURNAME = ObjectIdentifier("2.5.4.4")
SERIAL_NUMBER_ATTR = ObjectIdentifier("2.5.4.5")
COUNTRY = ObjectIdentifier("2.5.4.6")
LOCALITY = ObjectIdentifier("2.5.4.7")
STATE_OR_PROVINCE = ObjectIdentifier("2.5.4.8")
STREET_ADDRESS = ObjectIdentifier("2.5.4.9")
ORGANIZATION = ObjectIdentifier("2.5.4.10")
ORGANIZATIONAL_UNIT = ObjectIdentifier("2.5.4.11")
EMAIL_ADDRESS = ObjectIdentifier("1.2.840.113549.1.9.1")
DOMAIN_COMPONENT = ObjectIdentifier("0.9.2342.19200300.100.1.25")

#: attribute OID -> short name used in RFC 4514-style DN strings
DN_SHORT_NAMES: dict[ObjectIdentifier, str] = {
    COMMON_NAME: "CN",
    SURNAME: "SN",
    SERIAL_NUMBER_ATTR: "serialNumber",
    COUNTRY: "C",
    LOCALITY: "L",
    STATE_OR_PROVINCE: "ST",
    STREET_ADDRESS: "street",
    ORGANIZATION: "O",
    ORGANIZATIONAL_UNIT: "OU",
    EMAIL_ADDRESS: "emailAddress",
    DOMAIN_COMPONENT: "DC",
}

#: short name -> attribute OID (case-insensitive lookup helper below)
DN_OIDS_BY_NAME: dict[str, ObjectIdentifier] = {
    name.upper(): oid for oid, name in DN_SHORT_NAMES.items()
}

#: attributes whose values must stay PrintableString per RFC 5280
PRINTABLE_ONLY_ATTRS = frozenset({COUNTRY, SERIAL_NUMBER_ATTR})

# -- certificate extensions ----------------------------------------------------

SUBJECT_KEY_IDENTIFIER = ObjectIdentifier("2.5.29.14")
KEY_USAGE = ObjectIdentifier("2.5.29.15")
SUBJECT_ALT_NAME = ObjectIdentifier("2.5.29.17")
BASIC_CONSTRAINTS = ObjectIdentifier("2.5.29.19")
CRL_DISTRIBUTION_POINTS = ObjectIdentifier("2.5.29.31")
CERTIFICATE_POLICIES = ObjectIdentifier("2.5.29.32")
AUTHORITY_KEY_IDENTIFIER = ObjectIdentifier("2.5.29.35")
EXTENDED_KEY_USAGE = ObjectIdentifier("2.5.29.37")

# -- extended key usage purposes ------------------------------------------------

EKU_SERVER_AUTH = ObjectIdentifier("1.3.6.1.5.5.7.3.1")
EKU_CLIENT_AUTH = ObjectIdentifier("1.3.6.1.5.5.7.3.2")
EKU_CODE_SIGNING = ObjectIdentifier("1.3.6.1.5.5.7.3.3")
EKU_EMAIL_PROTECTION = ObjectIdentifier("1.3.6.1.5.5.7.3.4")
EKU_TIME_STAMPING = ObjectIdentifier("1.3.6.1.5.5.7.3.8")

EKU_NAMES: dict[ObjectIdentifier, str] = {
    EKU_SERVER_AUTH: "serverAuth",
    EKU_CLIENT_AUTH: "clientAuth",
    EKU_CODE_SIGNING: "codeSigning",
    EKU_EMAIL_PROTECTION: "emailProtection",
    EKU_TIME_STAMPING: "timeStamping",
}


def dn_attribute_oid(name: str) -> ObjectIdentifier:
    """Resolve a DN attribute short name (``"CN"``) or dotted OID string."""
    key = name.strip().upper()
    if key in DN_OIDS_BY_NAME:
        return DN_OIDS_BY_NAME[key]
    if key and key[0].isdigit():
        return ObjectIdentifier(name)
    raise ValueError(f"unknown DN attribute {name!r}")
