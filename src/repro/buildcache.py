"""Persistent build-artifact cache for PKI universes.

Building a universe — hundreds of RSA keys, tens of thousands of signed
leaves — dominates a cold study run, yet the result is a pure function
of (seed, scale, key size) and the generator code itself. This cache
content-addresses serialized build artifacts by exactly those inputs:

* the artifact kind and its build parameters,
* the cache format's :data:`CACHE_SCHEMA`,
* a :func:`generator_fingerprint` hashing the source of every module
  that participates in building, so any code change — a new encoder, a
  different catalog — invalidates every cached universe automatically.

Entries are written atomically (temp file + ``os.replace``) and carry
the engine-wide MAGIC + SHA-256 integrity envelope
(:mod:`repro.storage.envelope` — the same discipline the certificate
segments use). A truncated, bit-flipped, or otherwise unreadable entry
is *never* trusted: it is dead-lettered into the cache's
:class:`~repro.faults.quarantine.Quarantine` (category
``cache-corruption``), deleted, and reported as a miss so the caller
simply rebuilds — corruption can cost time, never correctness.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import pathlib
import pickle
from functools import lru_cache

from repro import obs
from repro.faults.quarantine import ErrorCategory, Quarantine
from repro.storage.envelope import EnvelopeError, atomic_write, read_envelope, write_envelope

#: Leading magic of every cache entry (name + format revision).
MAGIC = b"RPBC0001"

#: Cache format schema. Bump when the envelope or the pickled artifact
#: shapes change incompatibly; old entries then read as misses.
CACHE_SCHEMA = 1

#: Modules whose source participates in building a universe. Hashing
#: their bytes into every cache key makes code changes self-invalidating
#: without any manual version bookkeeping.
_FINGERPRINT_MODULES: tuple[str, ...] = (
    "repro.asn1.encoder",
    "repro.crypto.fastlane",
    "repro.crypto.primes",
    "repro.crypto.rng",
    "repro.crypto.rsa",
    "repro.crypto.pkcs1",
    "repro.x509.builder",
    "repro.x509.certificate",
    "repro.x509.extensions",
    "repro.x509.name",
    "repro.rootstore.catalog",
    "repro.rootstore.factory",
    "repro.rootstore.vendors",
    "repro.tlssim.traffic",
    "repro.notary.database",
    "repro.android.population",
    "repro.netalyzr.collector",
)


@lru_cache(maxsize=1)
def generator_fingerprint() -> str:
    """SHA-256 over the source bytes of every build-path module."""
    digest = hashlib.sha256()
    for name in _FINGERPRINT_MODULES:
        module = importlib.import_module(name)
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(pathlib.Path(module.__file__).read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


class BuildCache:
    """A directory of content-addressed, integrity-checked artifacts.

    ``get`` returns ``None`` on any miss *or* corruption (after
    quarantining and deleting the bad entry); ``put`` writes atomically
    so a concurrent or interrupted writer can never publish a partial
    entry under the final name.
    """

    def __init__(self, root: str | os.PathLike, *, quarantine: Quarantine | None = None):
        self.root = pathlib.Path(root)
        self.quarantine = quarantine if quarantine is not None else Quarantine()
        self.hits = 0
        self.misses = 0

    def cache_key(self, kind: str, params: dict) -> str:
        """The content address of one artifact (hex SHA-256)."""
        canonical = json.dumps(
            {
                "kind": kind,
                "schema": CACHE_SCHEMA,
                "generator": generator_fingerprint(),
                "params": params,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def path_for(self, kind: str, params: dict) -> pathlib.Path:
        """Where the artifact for (kind, params) lives on disk."""
        return self.root / f"{kind}-{self.cache_key(kind, params)[:32]}.bin"

    # -- read --------------------------------------------------------------------

    def get(self, kind: str, params: dict) -> object | None:
        """The cached artifact, or None on miss/corruption."""
        path = self.path_for(kind, params)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            obs.counter_inc("buildcache.misses")
            obs.event("buildcache.get", kind=kind, outcome="miss")
            return None
        except OSError as exc:
            self._corrupt(path, f"unreadable cache entry: {exc}", None)
            return None
        try:
            body = read_envelope(MAGIC, blob)
        except EnvelopeError as exc:
            self._corrupt(path, f"{exc.reason}: {exc.detail}", blob)
            return None
        try:
            value = pickle.loads(body)
        except Exception as exc:  # unpickling garbage raises ~anything
            self._corrupt(path, f"undecodable payload: {exc}", blob)
            return None
        self.hits += 1
        obs.counter_inc("buildcache.hits")
        obs.event(
            "buildcache.get", kind=kind, outcome="hit", bytes=len(blob)
        )
        return value

    def _corrupt(self, path: pathlib.Path, detail: str, blob: bytes | None) -> None:
        """Quarantine + delete a bad entry; the caller rebuilds."""
        self.misses += 1
        obs.counter_inc("buildcache.misses")
        obs.counter_inc("buildcache.corruption")
        obs.event("buildcache.corrupt", entry=path.name, detail=detail[:120])
        self.quarantine.add(
            ErrorCategory.CACHE_CORRUPTION,
            f"buildcache:{path.name}",
            detail,
            payload=blob,
        )
        try:
            path.unlink()
        except OSError:
            pass

    # -- write -------------------------------------------------------------------

    def put(self, kind: str, params: dict, value: object) -> pathlib.Path:
        """Serialize and atomically publish one artifact."""
        path = self.path_for(kind, params)
        body = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = write_envelope(MAGIC, body)
        atomic_write(path, blob)
        obs.counter_inc("buildcache.puts")
        obs.event("buildcache.put", kind=kind, bytes=len(blob))
        return path
