"""The CA catalog: the certificate universe the study is calibrated on.

The wild datasets behind the paper are closed, so this module encodes
their *published structure* as ground truth for the simulator:

* the AOSP 4.1/4.2/4.3/4.4 store sizes (139/140/146/150) and their
  overlap with Mozilla (117 identical + 13 equivalent re-issues = the
  130-root Table 4 category) and iOS7 (227);
* the ~100 vendor/operator "additional" certificates named on
  Figure 2's x-axis, with their cross-store presence class and the
  manufacturer/operator profiles that ship them;
* per-root traffic weights calibrated so the Notary simulator
  reproduces Table 3's near-identical validated-certificate counts and
  Table 4 / Figure 3's "fraction validating nothing" offsets;
* the rooted-device-only certificates of Table 5.

Every certificate in the simulation traces back to a
:class:`CaProfile` in this catalog.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from functools import lru_cache

#: Android versions the study covers, oldest first.
ANDROID_VERSIONS = ("4.1", "4.2", "4.3", "4.4")

#: Official AOSP store sizes (Table 1).
AOSP_SIZES = {"4.1": 139, "4.2": 140, "4.3": 146, "4.4": 150}
MOZILLA_SIZE = 153
IOS7_SIZE = 227


class CaKind(enum.Enum):
    """Broad provenance categories used in §5's discussion."""

    PUBLIC_WEB = "public_web"  # commercial WebTrust-style CA
    GOVERNMENT = "government"  # government-operated CA
    VENDOR = "vendor"  # hardware-vendor special purpose (FOTA, SUPL, ...)
    OPERATOR = "operator"  # mobile-operator service CA
    PAYMENT = "payment"  # payment-network CA
    LEGACY = "legacy"  # defunct/obsolete commercial CA
    USER = "user"  # user/app-installed (rooted devices, VPNs)
    PRIVATE = "private"  # private CA never in any store (Notary tail)


class StorePresence(enum.Enum):
    """Figure 2's cross-store presence classes for additional certs."""

    MOZILLA_AND_IOS7 = "mozilla_and_ios7"
    MOZILLA_ONLY = "mozilla_only"
    IOS7_ONLY = "ios7_only"
    ANDROID_ONLY = "android_only"  # recorded by the Notary, Android stores only
    NOT_RECORDED = "not_recorded"  # the Notary has no record at all


@dataclass(frozen=True)
class CaProfile:
    """Ground truth for one root certificate in the simulated universe."""

    name: str  # display name as on Figure 2's axis
    kind: CaKind = CaKind.PUBLIC_WEB
    country: str = "US"
    #: AOSP version that first shipped it; None = never in AOSP.
    aosp_since: str | None = None
    in_mozilla: bool = False
    in_ios7: bool = False
    #: Mozilla/iOS7 carry a re-issued twin (same subject+key, new dates)
    #: rather than the byte-identical certificate.
    reissued_in_mozilla: bool = False
    #: Number of current (non-expired) Notary leaves this root signs.
    current_leaves: int = 0
    #: Number of expired Notary leaves (historical traffic).
    expired_leaves: int = 0
    #: True for the AOSP root that expired in Oct 2013 (Firmaprofesional).
    expired_root: bool = False
    #: Purpose tag for special-purpose roots (fota/supl/code/drm/...).
    purpose: str = "tls"

    def in_aosp(self, version: str) -> bool:
        """True if this root ships in the given AOSP version."""
        if self.aosp_since is None:
            return False
        return ANDROID_VERSIONS.index(version) >= ANDROID_VERSIONS.index(
            self.aosp_since
        )

    @property
    def seen_in_traffic(self) -> bool:
        """True if the Notary ever observed this root in live traffic."""
        return self.current_leaves > 0 or self.expired_leaves > 0

    @property
    def presence(self) -> StorePresence:
        """The Figure 2 presence class (for non-AOSP additions)."""
        if self.in_mozilla and self.in_ios7:
            return StorePresence.MOZILLA_AND_IOS7
        if self.in_mozilla:
            return StorePresence.MOZILLA_ONLY
        if self.in_ios7:
            return StorePresence.IOS7_ONLY
        if self.seen_in_traffic:
            return StorePresence.ANDROID_ONLY
        return StorePresence.NOT_RECORDED


@dataclass(frozen=True)
class Deployment:
    """Where an additional certificate is found in the wild: which
    manufacturer firmware and/or operator customization ships it."""

    cert_name: str
    manufacturer: str | None = None  # None = any manufacturer
    operator: str | None = None  # None = any operator
    versions: tuple[str, ...] = ANDROID_VERSIONS


# ---------------------------------------------------------------------------
# AOSP core store composition
# ---------------------------------------------------------------------------

#: Real-world CA family names used to synthesize the AOSP/Mozilla core.
_CORE_CA_FAMILIES = (
    "VeriSign", "GeoTrust", "Thawte", "Comodo", "GlobalSign", "DigiCert",
    "Entrust", "GoDaddy", "Starfield", "Baltimore CyberTrust", "AddTrust",
    "UTN UserFirst", "Equifax Secure", "QuoVadis", "SwissSign", "StartCom",
    "Certum", "TC TrustCenter", "Deutsche Telekom", "T-TeleSec", "Izenpe",
    "Camerfirma", "Buypass", "TWCA", "Chunghwa Telecom", "SECOM",
    "Security Communication", "NetLock", "Microsec", "Hongkong Post",
    "KEYNECTIS", "Certinomis", "Actalis", "ACEDICOM", "Serasa",
    "Certigna", "E-Tugra", "Atos TrustedRoot", "Staat der Nederlanden",
)

#: Suffix pool used to expand families into distinct roots.
_CORE_SUFFIXES = (
    "Root CA", "Root CA - G2", "Root CA - G3", "Class 1 Root",
    "Class 2 Root", "Class 3 Root", "EV Root CA", "Universal Root CA",
)

#: AOSP roots never in Mozilla (the 150-130=20 Table 4 remainder),
#: including the expired Firmaprofesional root the paper singles out and
#: compromised-then-kept CAs (§2 names Comodo and Türktrust).
_AOSP_ONLY_ROOTS: tuple[tuple[str, CaKind, str, bool, int], ...] = (
    # (name, kind, country, expired_root, current_leaves)
    ("Autoridad de Certificacion Firmaprofesional", CaKind.PUBLIC_WEB, "ES", True, 0),
    ("TÜRKTRUST Elektronik Sertifika Hizmet", CaKind.PUBLIC_WEB, "TR", False, 30),
    ("Japan Certification Services RootCA1", CaKind.PUBLIC_WEB, "JP", False, 20),
    ("Government Root Certification Authority TW", CaKind.GOVERNMENT, "TW", False, 15),
    ("ComSign Secured CA", CaKind.PUBLIC_WEB, "IL", False, 0),
    ("Swisscom Root CA 1", CaKind.PUBLIC_WEB, "CH", False, 0),
    ("EBG Elektronik Sertifika", CaKind.PUBLIC_WEB, "TR", False, 0),
    ("KISA RootCA 1", CaKind.GOVERNMENT, "KR", False, 0),
    ("KISA RootCA 3", CaKind.GOVERNMENT, "KR", False, 0),
    ("CNNIC Root", CaKind.GOVERNMENT, "CN", False, 0),
    ("ePKI Root Certification Authority", CaKind.PUBLIC_WEB, "TW", False, 0),
    ("Sonera Class2 CA", CaKind.PUBLIC_WEB, "FI", False, 0),
    ("UCA Root", CaKind.PUBLIC_WEB, "CN", False, 0),
    ("UCA Global Root", CaKind.PUBLIC_WEB, "CN", False, 0),
    ("Wells Fargo Root CA", CaKind.PUBLIC_WEB, "US", False, 0),
    ("America Online Root CA 1", CaKind.LEGACY, "US", False, 0),
    ("America Online Root CA 2", CaKind.LEGACY, "US", False, 0),
    ("GTE CyberTrust Global Root", CaKind.LEGACY, "US", False, 0),
    ("Equifax Secure eBusiness CA", CaKind.LEGACY, "US", False, 0),
    ("beTRUSTed Root CA", CaKind.LEGACY, "US", False, 0),
)

#: Version growth: names of roots first shipped after 4.1.
#: 4.2 adds 1 (validates nothing -> AOSP 4.1/4.2 tie in Table 3);
#: 4.3 adds 6 (their traffic explains Table 3's +34-flavored bump);
#: 4.4 adds 4 (+14-flavored bump).
_ADDED_IN_42 = ("E-Tugra Certification Authority H5",)
_ADDED_IN_43 = (
    "D-TRUST Root Class 3 CA 2 2009",
    "D-TRUST Root Class 3 CA 2 EV 2009",
    "Swisscom Root CA 2",
    "Swisscom Root EV CA 2",
    "CA Disig Root R1",
    "CA Disig Root R2",
)
_ADDED_IN_44 = (
    "ACCVRAIZ1",
    "TeliaSonera Root CA v1",
    "E-Tugra Certification Authority H6",
    "Autoridad de Certificacion Firmaprofesional CIF A62634068",
)

# ---------------------------------------------------------------------------
# Additional (non-AOSP) certificates -- Figure 2's x-axis, transcribed
# ---------------------------------------------------------------------------
# Class targets (distinct certs), calibrated to Table 4 and Figure 2:
#   MOZILLA_AND_IOS7: 7   MOZILLA_ONLY: 9   (together the 16 "found on
#   Mozilla's"), IOS7_ONLY: 14, ANDROID_ONLY: 33, NOT_RECORDED: 38
#   -> 101 additional certs, 85 of them outside Mozilla.

#: (name, country, kind, purpose) -> in Mozilla AND iOS7; all validate
#: real traffic except the flagged ones (6 of the 16 Mozilla-member
#: extras validate nothing, per Table 4's 38%).
_EXTRA_BOTH = (
    ("AddTrust Class 1 CA Root", "SE", CaKind.PUBLIC_WEB, 9),
    ("COMODO RSA CA", "GB", CaKind.PUBLIC_WEB, 8),
    ("GlobalSign Root CA - R3", "BE", CaKind.PUBLIC_WEB, 7),
    ("GoDaddy Inc", "US", CaKind.PUBLIC_WEB, 6),
    ("Starfield Services Root CA", "US", CaKind.PUBLIC_WEB, 5),
    ("Deutsche Telekom Root CA 1", "DE", CaKind.PUBLIC_WEB, 0),
    ("Sonera Class1 CA", "FI", CaKind.PUBLIC_WEB, 0),
)

#: In Mozilla but not iOS7.
_EXTRA_MOZILLA_ONLY = (
    ("AddTrust Public CA Root", "SE", CaKind.PUBLIC_WEB, 6),
    ("AddTrust Qualified CA Root", "SE", CaKind.PUBLIC_WEB, 5),
    ("Certplus Class 1 Primary CA", "FR", CaKind.PUBLIC_WEB, 4),
    ("Certplus Class 3 Primary CA", "FR", CaKind.PUBLIC_WEB, 3),
    ("Certplus Class 3P Primary CA", "FR", CaKind.PUBLIC_WEB, 2),
    ("SecureSign Root CA3 Japan", "JP", CaKind.PUBLIC_WEB, 0),
    ("TC TrustCenter Class 1 CA", "DE", CaKind.PUBLIC_WEB, 0),
    ("TrustCenter Class 2 CA", "DE", CaKind.PUBLIC_WEB, 0),
    ("TrustCenter Class 3 CA", "DE", CaKind.PUBLIC_WEB, 0),
)

#: In iOS7 but not Mozilla (iOS7 keeps many legacy roots).
_EXTRA_IOS7_ONLY = (
    ("DoD CLASS 3 Root CA", "US", CaKind.GOVERNMENT, 4),  # Intranet CA per Mozilla
    ("Thawte Premium Server CA", "ZA", CaKind.LEGACY, 9),
    ("Thawte Server CA", "ZA", CaKind.LEGACY, 8),
    ("VeriSign Class 3 Public Primary CA", "US", CaKind.LEGACY, 6),
    ("VeriSign Class 1 Public Primary CA", "US", CaKind.LEGACY, 3),
    ("AOL Time Warner Root CA 1", "US", CaKind.LEGACY, 0),
    ("AOL Time Warner Root CA 2", "US", CaKind.LEGACY, 0),
    ("Xcert EZ by DST", "US", CaKind.LEGACY, 0),
    ("Baltimore EZ by DST", "US", CaKind.LEGACY, 0),
    ("Visa Information Delivery Root CA", "US", CaKind.PAYMENT, 0),
    ("SecureSign Root CA2 Japan", "JP", CaKind.PUBLIC_WEB, 0),
    ("VeriSign Class 2 Public Primary CA", "US", CaKind.LEGACY, 0),
    ("VeriSign Trust Network", "US", CaKind.LEGACY, 0),
    ("Thawte Timestamping CA", "ZA", CaKind.LEGACY, 0),
)

#: Recorded by the Notary in traffic but in no official store.
#: (name, country, kind, current_leaves, expired_leaves)
_EXTRA_ANDROID_ONLY = (
    ("Entrust.net CA", "US", CaKind.LEGACY, 8, 4),
    ("Entrust.net Secure Server CA", "US", CaKind.LEGACY, 7, 3),
    ("Entrust CA - L1B", "US", CaKind.PUBLIC_WEB, 6, 0),
    ("VeriSign Class 3 Secure Server CA", "US", CaKind.LEGACY, 6, 5),
    ("VeriSign Class 3 Secure Server CA - G3", "US", CaKind.PUBLIC_WEB, 5, 0),
    ("VeriSign Class 3 International Server CA - G3", "US", CaKind.PUBLIC_WEB, 4, 0),
    ("VeriSign Class 3 Extended Validation SSL SGC CA", "US", CaKind.PUBLIC_WEB, 3, 0),
    ("UserTrust RSA Extended Val. Sec. Server CA", "US", CaKind.PUBLIC_WEB, 3, 0),
    ("UserTrust UTN-USERFirst", "US", CaKind.PUBLIC_WEB, 3, 0),
    ("COMODO Secure Certificate Services", "GB", CaKind.PUBLIC_WEB, 2, 0),
    ("COMODO Trusted Certificate Services", "GB", CaKind.PUBLIC_WEB, 2, 0),
    ("Thawte Personal Freemail CA", "ZA", CaKind.LEGACY, 2, 2),
    ("Microsoft Secure Server Authority", "US", CaKind.PUBLIC_WEB, 2, 0),
    ("GeoTrust True Credentials CA 2", "US", CaKind.PUBLIC_WEB, 1, 0),
    ("Sprint Nextel Root Authority", "US", CaKind.OPERATOR, 1, 0),
    ("Vodafone (Operator Domain)", "DE", CaKind.OPERATOR, 1, 0),
    ("Wells Fargo CA 01", "US", CaKind.PUBLIC_WEB, 1, 0),
    ("First Data Digital CA", "US", CaKind.PAYMENT, 1, 0),
    ("SIA Secure Server CA", "IT", CaKind.PUBLIC_WEB, 1, 0),
    # The remaining android-only roots appear in traffic only via
    # now-expired leaves -> they count as "recorded" but validate no
    # current certificate (the mechanism behind Table 4's offsets).
    ("Entrust.net Client CA", "US", CaKind.LEGACY, 0, 3),
    ("Entrust.net Client CA 2", "US", CaKind.LEGACY, 0, 2),
    ("DST-Entrust GTI CA", "US", CaKind.LEGACY, 0, 2),
    ("DST Root CA X1", "US", CaKind.LEGACY, 0, 2),
    ("DST RootCA X2", "US", CaKind.LEGACY, 0, 1),
    ("Thawte Personal Basic CA", "ZA", CaKind.LEGACY, 0, 1),
    ("Thawte Personal Premium CA", "ZA", CaKind.LEGACY, 0, 1),
    ("RSA Data Security CA", "US", CaKind.LEGACY, 0, 1),
    ("SIA Secure Client CA", "IT", CaKind.LEGACY, 0, 1),
    ("VeriSign Trust Network 2", "US", CaKind.LEGACY, 0, 1),
    ("VeriSign Trust Network 3", "US", CaKind.LEGACY, 0, 1),
    ("VeriSign CPS", "US", CaKind.LEGACY, 0, 1),
    ("UserTrust Client Auth. and Email", "US", CaKind.LEGACY, 0, 1),
    ("Free SSL CA", "US", CaKind.LEGACY, 0, 1),
)

#: Never recorded by the Notary: offline/special-purpose roots
#: (code signing, firmware updates, SUPL, operator APIs, governments).
_EXTRA_NOT_RECORDED = (
    ("Motorola FOTA Root CA", "US", CaKind.VENDOR, "fota"),
    ("Motorola SUPL Server Root CA", "US", CaKind.VENDOR, "supl"),
    ("GeoTrust CA for UTI", "US", CaKind.VENDOR, "code"),
    ("GeoTrust CA for Adobe", "US", CaKind.VENDOR, "code"),
    ("GeoTrust Mobile Device Root - Privileged", "US", CaKind.VENDOR, "code"),
    ("GeoTrust Mobile Device Root", "US", CaKind.VENDOR, "code"),
    ("Sony Computer DNAS Root 05", "JP", CaKind.VENDOR, "drm"),
    ("Sony Ericsson Secure E2E", "JP", CaKind.VENDOR, "vendor"),
    ("Certisign AC1S", "BR", CaKind.PUBLIC_WEB, "tls"),
    ("Certisign AC2", "BR", CaKind.PUBLIC_WEB, "tls"),
    ("Certisign AC3S", "BR", CaKind.PUBLIC_WEB, "tls"),
    ("Certisign AC4", "BR", CaKind.PUBLIC_WEB, "tls"),
    ("PTT Post Root CA. KeyMail", "NL", CaKind.LEGACY, "email"),
    ("Cingular Preferred Root CA", "US", CaKind.OPERATOR, "operator"),
    ("Cingular Trusted Root CA", "US", CaKind.OPERATOR, "operator"),
    ("Sprint XCA01", "US", CaKind.OPERATOR, "operator"),
    ("Vodafone (Widget Operator Domain)", "DE", CaKind.OPERATOR, "widget"),
    ("CFCA Root CA", "CN", CaKind.GOVERNMENT, "tls"),
    ("CFCA Identity CA", "CN", CaKind.GOVERNMENT, "tls"),
    ("CFCA Payment CA", "CN", CaKind.GOVERNMENT, "payment"),
    ("CFCA Enterprise CA", "CN", CaKind.GOVERNMENT, "tls"),
    ("Venezuelan National CA", "VE", CaKind.GOVERNMENT, "tls"),
    ("Meditel Root CA", "MA", CaKind.OPERATOR, "operator"),
    ("Telefonica Moviles Root CA", "ES", CaKind.OPERATOR, "operator"),
    ("Telefonica OpenAPI Root CA", "ES", CaKind.OPERATOR, "operator"),
    ("Verizon Network API Root", "US", CaKind.OPERATOR, "operator"),
    ("ABA.ECOM Root CA", "US", CaKind.LEGACY, "tls"),
    ("eSign Imperito Primary Root CA", "AU", CaKind.LEGACY, "tls"),
    ("eSign. Gatekeeper Root CA", "AU", CaKind.LEGACY, "tls"),
    ("eSign. Primary Utility Root CA", "AU", CaKind.LEGACY, "tls"),
    ("EUnet International Root CA", "EU", CaKind.LEGACY, "tls"),
    ("FESTE Public Notary Certs", "ES", CaKind.LEGACY, "notary"),
    ("FESTE Verified Certs", "ES", CaKind.LEGACY, "notary"),
    ("IPS CA CLASE1", "ES", CaKind.LEGACY, "tls"),
    ("IPS CA CLASE3", "ES", CaKind.LEGACY, "tls"),
    ("IPS CA CLASEA1 CA", "ES", CaKind.LEGACY, "tls"),
    ("IPS CA Timestamping CA", "ES", CaKind.LEGACY, "timestamp"),
    ("SEVEN Open Channel Primary CA", "US", CaKind.VENDOR, "push"),
)

# ---------------------------------------------------------------------------
# Rooted-device-only certificates (Table 5 + §5.2 singletons)
# ---------------------------------------------------------------------------

#: (name, country, device_count) -- Table 5's CAs, installed by apps or
#: users on rooted handsets; none ever appear in Notary traffic.
ROOTED_ONLY_CAS = (
    ("CRAZY HOUSE", "UA", 70),  # installed by the Freedom-like app
    ("MIND OVERFLOW", "??", 1),
    ("USER_X", "??", 1),
    ("CDA/EMAILADDRESS", "SN", 1),
    ("CIRRUS, PRIVATE", "??", 1),
)

#: Count of additional self-signed singleton certs (user VPN roots,
#: §5.2's "each recorded exclusively on a single device").
USER_SELF_SIGNED_COUNT = 58

# ---------------------------------------------------------------------------
# Notary traffic calibration
# ---------------------------------------------------------------------------

#: Core roots (AOSP∩Mozilla) that validate nothing: 20 of 130 (15%).
CORE_VALIDATES_NOTHING = 20

#: Leaves signed by the validating core roots (Zipf-distributed).
CORE_CURRENT_LEAVES = 14_700
CORE_EXPIRED_LEAVES = 2_000

#: Zipf skew for core CA popularity.
CORE_ZIPF_EXPONENT = 1.15

#: Leaves signed by AOSP-only roots present since 4.1 (Table 3: AOSP 4.1
#: validates ~281 more than Mozilla at paper scale). Must exceed the
#: Mozilla-member extras' contribution (55) so Mozilla ranks lowest.
AOSP_ONLY_BASE_LEAVES = 65

#: iOS7-exclusive roots (in no Android/Mozilla store): 227 total minus
#: core (130) and extra members (7 both + 14 iOS7-only).
IOS7_EXCLUSIVE_COUNT = IOS7_SIZE - 130 - len(_EXTRA_BOTH) - len(_EXTRA_IOS7_ONLY)
IOS7_EXCLUSIVE_VALIDATING = 14
IOS7_EXCLUSIVE_LEAVES = 120

#: Mozilla-only roots never observed on devices: 153 - 130 - 16.
MOZILLA_EXCLUSIVE_COUNT = MOZILLA_SIZE - 130 - len(_EXTRA_BOTH) - len(_EXTRA_MOZILLA_ONLY)

#: Private CAs signing the ~25% of Notary leaves no store validates.
PRIVATE_CA_COUNT = 60
PRIVATE_CURRENT_LEAVES = 4_985
PRIVATE_EXPIRED_LEAVES = 900


def _core_names() -> list[str]:
    """Synthesize 130 distinct core CA names from real family names."""
    names = []
    for family, suffix in itertools.product(_CORE_CA_FAMILIES, _CORE_SUFFIXES):
        names.append(f"{family} {suffix}")
    # Deterministic order, trimmed to the core size.
    return names[:130]


def _zipf_allocation(total: int, count: int, exponent: float) -> list[int]:
    """Split *total* leaves over *count* roots with a Zipf-like skew.

    Deterministic (largest-remainder rounding) so Table 3's small deltas
    are exact by construction rather than sampled.
    """
    weights = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
    scale = total / sum(weights)
    raw = [w * scale for w in weights]
    floors = [int(x) for x in raw]
    remainder = total - sum(floors)
    by_fraction = sorted(
        range(count), key=lambda i: raw[i] - floors[i], reverse=True
    )
    for i in by_fraction[:remainder]:
        floors[i] += 1
    return floors


@dataclass
class CaCatalog:
    """The full certificate universe, grouped the way the analysis
    pipeline consumes it."""

    core: list[CaProfile] = field(default_factory=list)  # AOSP∩Mozilla (130)
    aosp_only: list[CaProfile] = field(default_factory=list)  # 20
    mozilla_exclusive: list[CaProfile] = field(default_factory=list)  # 7
    ios7_exclusive: list[CaProfile] = field(default_factory=list)  # 76
    extras: list[CaProfile] = field(default_factory=list)  # 101
    rooted_only: list[CaProfile] = field(default_factory=list)  # 63
    private: list[CaProfile] = field(default_factory=list)  # 60
    deployments: list[Deployment] = field(default_factory=list)

    # -- convenience views -----------------------------------------------------

    def all_profiles(self) -> list[CaProfile]:
        """Every profile in the universe."""
        return (
            self.core
            + self.aosp_only
            + self.mozilla_exclusive
            + self.ios7_exclusive
            + self.extras
            + self.rooted_only
            + self.private
        )

    def by_name(self, name: str) -> CaProfile:
        """Look up a profile by display name."""
        for profile in self.all_profiles():
            if profile.name == name:
                return profile
        raise KeyError(name)

    def aosp_profiles(self, version: str) -> list[CaProfile]:
        """Profiles shipped in the given AOSP version."""
        return [
            p for p in self.core + self.aosp_only if p.in_aosp(version)
        ]

    def mozilla_profiles(self) -> list[CaProfile]:
        """Profiles in Mozilla's store."""
        return [p for p in self.all_profiles() if p.in_mozilla]

    def ios7_profiles(self) -> list[CaProfile]:
        """Profiles in iOS7's store."""
        return [p for p in self.all_profiles() if p.in_ios7]

    def extra_profiles(self) -> list[CaProfile]:
        """The non-AOSP additional certificates (Figure 2's population)."""
        return list(self.extras)

    def deployments_for_cert(self, name: str) -> list[Deployment]:
        """All deployments shipping the named certificate."""
        return [d for d in self.deployments if d.cert_name == name]

    # -- integrity -----------------------------------------------------------------

    def validate_calibration(self) -> None:
        """Assert the published structural numbers hold. Called by tests."""
        for version, size in AOSP_SIZES.items():
            actual = len(self.aosp_profiles(version))
            if actual != size:
                raise AssertionError(f"AOSP {version}: {actual} != {size}")
        if len(self.mozilla_profiles()) != MOZILLA_SIZE:
            raise AssertionError(f"Mozilla: {len(self.mozilla_profiles())}")
        if len(self.ios7_profiles()) != IOS7_SIZE:
            raise AssertionError(f"iOS7: {len(self.ios7_profiles())}")
        if len(self.extras) != 101:
            raise AssertionError(f"extras: {len(self.extras)} != 101")
        non_mozilla_extras = [p for p in self.extras if not p.in_mozilla]
        if len(non_mozilla_extras) != 85:
            raise AssertionError(f"non-Mozilla extras: {len(non_mozilla_extras)}")
        total_unique = len(self.core) + len(self.aosp_only) + len(self.extras) + len(
            self.rooted_only
        )
        if total_unique != 314:
            raise AssertionError(f"device-observable uniques: {total_unique} != 314")
        names = [p.name for p in self.all_profiles()]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise AssertionError(f"duplicate CA names: {sorted(duplicates)}")
        extra_names = {p.name for p in self.extras}
        bad = {d.cert_name for d in self.deployments if d.cert_name not in extra_names}
        if bad:
            raise AssertionError(f"deployments reference non-extra certs: {sorted(bad)}")
        undeployed = extra_names - {d.cert_name for d in self.deployments}
        if len(undeployed) > len(extra_names) // 3:
            raise AssertionError(
                f"{len(undeployed)} extras have no deployment: {sorted(undeployed)[:5]}..."
            )


def build_catalog() -> CaCatalog:
    """Construct the default calibrated catalog."""
    catalog = CaCatalog()

    # -- core (AOSP∩Mozilla, 130 = 117 identical + 13 reissued) -------------
    core_names = _core_names()
    validating = len(core_names) - CORE_VALIDATES_NOTHING
    core_leaves = _zipf_allocation(CORE_CURRENT_LEAVES, validating, CORE_ZIPF_EXPONENT)
    expired_leaves = _zipf_allocation(CORE_EXPIRED_LEAVES, validating, CORE_ZIPF_EXPONENT)
    for index, name in enumerate(core_names):
        # 13 mid-popularity roots are carried by Mozilla/iOS7 as
        # re-issued twins (active CAs; §4.2's "only the expiration date
        # change" cases involve roots actually validating traffic).
        reissued = 50 <= index < 63
        current = core_leaves[index] if index < validating else 0
        expired = expired_leaves[index] if index < validating else 0
        catalog.core.append(
            CaProfile(
                name=name,
                kind=CaKind.PUBLIC_WEB,
                aosp_since="4.1",
                in_mozilla=True,
                in_ios7=True,
                reissued_in_mozilla=reissued,
                current_leaves=current,
                expired_leaves=expired,
            )
        )

    # -- AOSP-only roots (20), including the version-growth entries ----------
    base_only = [
        CaProfile(
            name=name,
            kind=kind,
            country=country,
            aosp_since="4.1",
            expired_root=expired,
            current_leaves=leaves,
            expired_leaves=2 if leaves else 0,
        )
        for name, kind, country, expired, leaves in _AOSP_ONLY_ROOTS[
            : 20 - len(_ADDED_IN_42) - len(_ADDED_IN_43) - len(_ADDED_IN_44)
        ]
    ]
    catalog.aosp_only.extend(base_only)
    for name in _ADDED_IN_42:
        catalog.aosp_only.append(
            CaProfile(name=name, country="TR", aosp_since="4.2", current_leaves=0)
        )
    for index, name in enumerate(_ADDED_IN_43):
        # The six 4.3 additions jointly validate a small leaf population.
        leaves = (5, 2, 0, 0, 0, 0)[index]
        catalog.aosp_only.append(
            CaProfile(name=name, country="DE", aosp_since="4.3", current_leaves=leaves)
        )
    for index, name in enumerate(_ADDED_IN_44):
        leaves = (3, 0, 0, 0)[index]
        catalog.aosp_only.append(
            CaProfile(name=name, country="ES", aosp_since="4.4", current_leaves=leaves)
        )

    # -- Mozilla-exclusive roots (7, never seen on devices) -------------------
    for index in range(MOZILLA_EXCLUSIVE_COUNT):
        catalog.mozilla_exclusive.append(
            CaProfile(
                name=f"Mozilla Program Root {index + 1}",
                in_mozilla=True,
                current_leaves=0,
            )
        )

    # -- iOS7-exclusive roots (76, 14 of them validating) ---------------------
    ios7_leaves = _zipf_allocation(
        IOS7_EXCLUSIVE_LEAVES, IOS7_EXCLUSIVE_VALIDATING, 1.0
    )
    for index in range(IOS7_EXCLUSIVE_COUNT):
        current = ios7_leaves[index] if index < IOS7_EXCLUSIVE_VALIDATING else 0
        catalog.ios7_exclusive.append(
            CaProfile(
                name=f"Apple Legacy Root {index + 1}",
                kind=CaKind.LEGACY,
                in_ios7=True,
                current_leaves=current,
            )
        )

    # -- additional certificates (Figure 2) ------------------------------------
    for name, country, kind, leaves in _EXTRA_BOTH:
        catalog.extras.append(
            CaProfile(
                name=name,
                country=country,
                kind=kind,
                in_mozilla=True,
                in_ios7=True,
                current_leaves=leaves,
                expired_leaves=1 if leaves else 0,
            )
        )
    for name, country, kind, leaves in _EXTRA_MOZILLA_ONLY:
        catalog.extras.append(
            CaProfile(
                name=name,
                country=country,
                kind=kind,
                in_mozilla=True,
                current_leaves=leaves,
            )
        )
    for name, country, kind, leaves in _EXTRA_IOS7_ONLY:
        catalog.extras.append(
            CaProfile(
                name=name,
                country=country,
                kind=kind,
                in_ios7=True,
                current_leaves=leaves,
                expired_leaves=1 if leaves else 0,
            )
        )
    for name, country, kind, current, expired in _EXTRA_ANDROID_ONLY:
        catalog.extras.append(
            CaProfile(
                name=name,
                country=country,
                kind=kind,
                current_leaves=current,
                expired_leaves=expired,
            )
        )
    for name, country, kind, purpose in _EXTRA_NOT_RECORDED:
        catalog.extras.append(
            CaProfile(name=name, country=country, kind=kind, purpose=purpose)
        )

    # -- rooted-only certificates ------------------------------------------------
    for name, country, _count in ROOTED_ONLY_CAS:
        catalog.rooted_only.append(
            CaProfile(name=name, country=country, kind=CaKind.USER, purpose="user")
        )
    for index in range(USER_SELF_SIGNED_COUNT):
        catalog.rooted_only.append(
            CaProfile(
                name=f"Self-Signed VPN Root {index + 1}",
                kind=CaKind.USER,
                purpose="vpn",
            )
        )

    # -- private CAs (Notary tail validated by no store) --------------------------
    private_leaves = _zipf_allocation(PRIVATE_CURRENT_LEAVES, PRIVATE_CA_COUNT, 0.8)
    private_expired = _zipf_allocation(PRIVATE_EXPIRED_LEAVES, PRIVATE_CA_COUNT, 0.8)
    for index in range(PRIVATE_CA_COUNT):
        catalog.private.append(
            CaProfile(
                name=f"Private Enterprise CA {index + 1}",
                kind=CaKind.PRIVATE,
                current_leaves=private_leaves[index],
                expired_leaves=private_expired[index],
            )
        )

    catalog.deployments = _build_deployments(catalog)
    return catalog


def _build_deployments(catalog: CaCatalog) -> list[Deployment]:
    """Assign each additional certificate to the firmware/operator
    profiles that ship it (the structure behind Figures 1 and 2)."""
    deployments: list[Deployment] = []

    def ship(names, manufacturer=None, operator=None, versions=ANDROID_VERSIONS):
        for name in names:
            deployments.append(
                Deployment(
                    cert_name=name,
                    manufacturer=manufacturer,
                    operator=operator,
                    versions=tuple(versions),
                )
            )

    # HTC ships a large legacy set on every version (Fig 1: HTC among the
    # biggest extenders, >40 additions on 4.1/4.2).
    htc_set = [
        "AddTrust Class 1 CA Root", "AddTrust Public CA Root",
        "AddTrust Qualified CA Root", "Deutsche Telekom Root CA 1",
        "Sonera Class1 CA", "DoD CLASS 3 Root CA",
        "Thawte Premium Server CA", "Thawte Server CA",
        "Thawte Personal Basic CA", "Thawte Personal Freemail CA",
        "Thawte Personal Premium CA", "Thawte Timestamping CA",
        "VeriSign Class 1 Public Primary CA", "VeriSign Class 2 Public Primary CA",
        "VeriSign Class 3 Public Primary CA", "VeriSign Class 3 Secure Server CA",
        "VeriSign Trust Network", "VeriSign Trust Network 2",
        "VeriSign Trust Network 3", "VeriSign CPS",
        "Entrust.net CA", "Entrust.net Client CA", "Entrust.net Client CA 2",
        "Entrust.net Secure Server CA", "Certplus Class 1 Primary CA",
        "Certplus Class 3 Primary CA", "Certplus Class 3P Primary CA",
        "IPS CA CLASE1", "IPS CA CLASE3", "IPS CA CLASEA1 CA",
        "IPS CA Timestamping CA", "FESTE Public Notary Certs",
        "FESTE Verified Certs", "EUnet International Root CA",
        "ABA.ECOM Root CA", "eSign Imperito Primary Root CA",
        "eSign. Gatekeeper Root CA", "eSign. Primary Utility Root CA",
        "Xcert EZ by DST", "Baltimore EZ by DST",
        "AOL Time Warner Root CA 1", "AOL Time Warner Root CA 2",
        "RSA Data Security CA", "First Data Digital CA",
        "TC TrustCenter Class 1 CA",
    ]
    ship(htc_set, manufacturer="HTC", versions=("4.1", "4.2"))
    ship(htc_set[:30], manufacturer="HTC", versions=("4.3", "4.4"))

    # Samsung: 4.1/4.2 share a moderate set; 4.3/4.4 are extended (§5.1 fn3).
    samsung_base = [
        "AddTrust Class 1 CA Root", "AddTrust Public CA Root",
        "Deutsche Telekom Root CA 1", "Sonera Class1 CA",
        "DoD CLASS 3 Root CA", "GlobalSign Root CA - R3",
        "Thawte Premium Server CA", "Thawte Server CA",
        "VeriSign Class 3 Public Primary CA",
        "VeriSign Class 3 Secure Server CA - G3",
        "VeriSign Class 3 International Server CA - G3",
        "COMODO RSA CA", "COMODO Secure Certificate Services",
        "COMODO Trusted Certificate Services",
        "SecureSign Root CA2 Japan", "SecureSign Root CA3 Japan",
        "TrustCenter Class 2 CA", "TrustCenter Class 3 CA",
        "Visa Information Delivery Root CA",
        "Wells Fargo CA 01", "SIA Secure Client CA", "SIA Secure Server CA",
    ]
    ship(samsung_base, manufacturer="SAMSUNG", versions=("4.1", "4.2"))
    ship(["GeoTrust CA for UTI"], manufacturer="SAMSUNG", versions=("4.2", "4.3"))
    samsung_extended = samsung_base + [
        "GoDaddy Inc", "Starfield Services Root CA",
        "Entrust CA - L1B", "Entrust.net CA", "Entrust.net Secure Server CA",
        "UserTrust RSA Extended Val. Sec. Server CA", "UserTrust UTN-USERFirst",
        "UserTrust Client Auth. and Email",
        "VeriSign Class 3 Extended Validation SSL SGC CA",
        "VeriSign Class 1 Public Primary CA",
        "VeriSign Class 2 Public Primary CA",
        "GeoTrust True Credentials CA 2",
        "GeoTrust CA for Adobe",
        "GeoTrust Mobile Device Root", "GeoTrust Mobile Device Root - Privileged",
        "Thawte Personal Freemail CA", "Thawte Timestamping CA",
        "Free SSL CA", "DST Root CA X1", "DST RootCA X2",
    ]
    ship(samsung_extended, manufacturer="SAMSUNG", versions=("4.3", "4.4"))

    # Motorola 4.1/4.2 firmware carries the legacy set too (Fig 1 places
    # Motorola 4.1/4.2 in the >40-addition group; 4.3/4.4 are near-stock).
    ship(htc_set[:38], manufacturer="MOTOROLA", versions=("4.1", "4.2"))
    # Motorola 4.1 / Verizon (§5.1: CertiSign + ptt-post.nl on 60-70% of
    # Motorola 4.1 devices, all on Verizon; FOTA/SUPL are Motorola-wide).
    ship(
        ["Motorola FOTA Root CA", "Motorola SUPL Server Root CA"],
        manufacturer="MOTOROLA",
    )
    ship(
        [
            "Certisign AC1S", "Certisign AC2", "Certisign AC3S", "Certisign AC4",
            "PTT Post Root CA. KeyMail",
        ],
        manufacturer="MOTOROLA",
        operator="VERIZON(US)",
        versions=("4.1",),
    )
    ship(
        ["Microsoft Secure Server Authority", "Cingular Preferred Root CA",
         "Cingular Trusted Root CA"],
        manufacturer="MOTOROLA",
        operator="AT&T(US)",
        versions=("4.1",),
    )
    ship(
        ["Telefonica Moviles Root CA", "Telefonica OpenAPI Root CA"],
        manufacturer="MOTOROLA",
        versions=("4.1",),
    )

    # Sony 4.3 vendor roots.
    ship(
        ["Sony Computer DNAS Root 05", "Sony Ericsson Secure E2E",
         "SEVEN Open Channel Primary CA"],
        manufacturer="SONY",
        versions=("4.3",),
    )

    # LG non-Nexus devices mirror the HTC legacy set on 4.1/4.2 (Fig 1
    # shows LG 4.1/4.2 among the >40-addition group).
    ship(htc_set[:42], manufacturer="LG", versions=("4.1", "4.2"))

    # Operator overlays (any manufacturer).
    ship(["Sprint Nextel Root Authority", "Sprint XCA01"], operator="SPRINT(US)")
    ship(
        ["Vodafone (Operator Domain)", "Vodafone (Widget Operator Domain)"],
        operator="VODAFONE(DE)",
    )
    ship(["Verizon Network API Root"], operator="VERIZON(US)")
    ship(["Meditel Root CA"], operator="3(UK)")
    # §5.2: CFCA roots "found in HTC, Motorola and Lenovo devices from a
    # number of countries" -- shipped by manufacturers, so they surface
    # under whatever operator/country the handset lands in.
    cfca = ["CFCA Root CA", "CFCA Identity CA", "CFCA Payment CA",
            "CFCA Enterprise CA"]
    ship(cfca, manufacturer="LENOVO")
    ship(cfca, manufacturer="HTC", versions=("4.3", "4.4"))
    ship(cfca, manufacturer="MOTOROLA", versions=("4.3", "4.4"))
    ship(["Venezuelan National CA"], operator="TELSTRA(AU)")
    ship(["DST-Entrust GTI CA", "DST Root CA X1"], operator="EE(UK)")
    ship(["Certplus Class 1 Primary CA", "Certplus Class 3 Primary CA"],
         operator="ORANGE(FR)")
    ship(["Certplus Class 3P Primary CA"], operator="SFR(FR)")
    ship(["EUnet International Root CA"], operator="BOUYGUES(FR)")
    ship(["Free SSL CA"], operator="FREE(FR)")

    return deployments


@lru_cache(maxsize=1)
def default_catalog() -> CaCatalog:
    """The default calibrated catalog (cached singleton)."""
    catalog = build_catalog()
    catalog.validate_calibration()
    return catalog
