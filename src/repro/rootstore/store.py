"""The RootStore container.

A root store is a named, ordered set of trusted root certificates. The
model captures the platform differences the paper highlights (§2):

* Android's system store is **read-only** to normal code; only processes
  with system (or root) permission may modify it. Users may *disable*
  entries through system settings without deleting them.
* Android attaches **no trust-level restrictions** to entries — any root
  may vouch for any operation "from TLS server verification to code
  signing". Mozilla, by contrast, scopes each root with trust bits.

:class:`TrustFlags` models the Mozilla-style scoping so the library can
express both policies; for Android stores every entry carries
``TrustFlags.all()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.x509.certificate import Certificate
from repro.x509.fingerprint import equivalence_key, identity_key


class StorePermissionError(PermissionError):
    """Raised when modifying a read-only store without system permission."""


@dataclass(frozen=True)
class TrustFlags:
    """Mozilla-style per-root trust scoping."""

    server_auth: bool = True
    email: bool = True
    code_signing: bool = True

    @classmethod
    def all(cls) -> "TrustFlags":
        """Android's policy: trusted for everything."""
        return cls(True, True, True)

    @classmethod
    def websites_only(cls) -> "TrustFlags":
        """The scoped policy Mozilla applies to most TLS roots."""
        return cls(server_auth=True, email=False, code_signing=False)


@dataclass
class StoreEntry:
    """One root-store entry: a certificate plus store-level metadata."""

    certificate: Certificate
    trust: TrustFlags = field(default_factory=TrustFlags.all)
    enabled: bool = True
    source: str = "system"

    @property
    def subject(self):
        """The certificate subject name."""
        return self.certificate.subject


class RootStore:
    """A named collection of trusted roots.

    Entries are keyed by the strict identity of §4.1 (RSA modulus +
    signature). ``read_only=True`` models Android's system store: writes
    require ``system=True`` (granted to platform code and root-privileged
    processes).
    """

    def __init__(
        self,
        name: str,
        certificates: Iterable[Certificate] = (),
        *,
        read_only: bool = False,
    ):
        self.name = name
        self.read_only = read_only
        self._entries: dict[tuple[int, bytes], StoreEntry] = {}
        for certificate in certificates:
            self._entries[identity_key(certificate)] = StoreEntry(certificate)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Certificate]:
        return (entry.certificate for entry in self._entries.values())

    def __contains__(self, certificate: Certificate) -> bool:
        return identity_key(certificate) in self._entries

    def entries(self) -> list[StoreEntry]:
        """All entries, including disabled ones."""
        return list(self._entries.values())

    def certificates(self, *, include_disabled: bool = False) -> list[Certificate]:
        """The trusted certificates (disabled entries excluded by default)."""
        return [
            entry.certificate
            for entry in self._entries.values()
            if entry.enabled or include_disabled
        ]

    def entry_for(self, certificate: Certificate) -> StoreEntry | None:
        """The entry holding exactly this certificate, if present."""
        return self._entries.get(identity_key(certificate))

    def contains_equivalent(self, certificate: Certificate) -> bool:
        """True if an entry is §4.2-equivalent (same subject + modulus).

        Catches re-issued roots that differ only in validity dates.
        """
        wanted = equivalence_key(certificate)
        return any(
            equivalence_key(entry.certificate) == wanted
            for entry in self._entries.values()
        )

    def find_by_subject(self, subject) -> list[Certificate]:
        """All certificates with the given subject name."""
        return [
            entry.certificate
            for entry in self._entries.values()
            if entry.certificate.subject == subject
        ]

    # -- mutation -----------------------------------------------------------------

    def _check_writable(self, system: bool) -> None:
        if self.read_only and not system:
            raise StorePermissionError(
                f"root store {self.name!r} is read-only; "
                "system permission required to modify it"
            )

    def add(
        self,
        certificate: Certificate,
        *,
        system: bool = False,
        source: str = "system",
        trust: TrustFlags | None = None,
    ) -> StoreEntry:
        """Add a certificate; returns the (possibly existing) entry."""
        self._check_writable(system)
        key = identity_key(certificate)
        if key in self._entries:
            return self._entries[key]
        entry = StoreEntry(
            certificate, trust=trust or TrustFlags.all(), source=source
        )
        self._entries[key] = entry
        return entry

    def remove(self, certificate: Certificate, *, system: bool = False) -> bool:
        """Remove a certificate; True if it was present."""
        self._check_writable(system)
        return self._entries.pop(identity_key(certificate), None) is not None

    def disable(self, certificate: Certificate) -> bool:
        """Disable an entry via system settings (no system permission needed).

        Mirrors Android's settings UI, which lets any user disable a
        system root without removing it (§2).
        """
        entry = self._entries.get(identity_key(certificate))
        if entry is None:
            return False
        entry.enabled = False
        return True

    def enable(self, certificate: Certificate) -> bool:
        """Re-enable a disabled entry."""
        entry = self._entries.get(identity_key(certificate))
        if entry is None:
            return False
        entry.enabled = True
        return True

    def copy(self, name: str | None = None, *, read_only: bool | None = None) -> "RootStore":
        """An independent copy (entries are copied, certificates shared)."""
        clone = RootStore.__new__(RootStore)
        clone.name = name or self.name
        clone.read_only = self.read_only if read_only is None else read_only
        clone._entries = {
            key: replace(entry) for key, entry in self._entries.items()
        }
        return clone

    def __repr__(self) -> str:
        return f"<RootStore {self.name!r} certs={len(self)} read_only={self.read_only}>"
