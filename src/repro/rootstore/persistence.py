"""Persisting a CertificateFactory's PKI universe to disk.

Key generation dominates cold-start time (~6 s for the full catalog);
persisting the factory lets separate CLI invocations and notebook
sessions share one universe byte-for-byte. The format is a single JSON
document holding the RSA key material (n, e, d) plus the issued
certificates as PEM, keyed by CA name.
"""

from __future__ import annotations

import json
import pathlib

from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey, crt_parameters
from repro.rootstore.factory import CertificateFactory
from repro.x509.certificate import Certificate
from repro.x509.pem import pem_decode, pem_encode

#: Format version. Version 2 added the CRT primes (p, q) so restored
#: keys keep the fast signing path; version-1 files still load, their
#: keys signing through the CRT-free fallback.
SCHEMA_VERSION = 2

#: Schema versions this codec can read.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


def _key_record(private: RsaPrivateKey) -> dict:
    record = {
        "n": str(private.modulus),
        "e": private.public_exponent,
        "d": str(private.private_exponent),
    }
    if private.has_crt:
        record["p"] = str(private.prime_p)
        record["q"] = str(private.prime_q)
    return record


def save_factory(factory: CertificateFactory, path: str | pathlib.Path) -> pathlib.Path:
    """Write the factory's cached keys and certificates to *path*.

    Only materialized entries are saved; loading re-creates exactly the
    cached state (misses will still be generated deterministically from
    the seed, so a partial save is always safe).
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "seed": factory.seed,
        "key_bits": factory.key_bits,
        "keys": {
            name: _key_record(keypair.private)
            for name, keypair in factory._keypairs.items()
        },
        "roots": {
            name: pem_encode(certificate.encoded)
            for name, certificate in factory._roots.items()
        },
        "reissues": {
            name: pem_encode(certificate.encoded)
            for name, certificate in factory._reissues.items()
        },
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload))
    return path


def load_factory(path: str | pathlib.Path) -> CertificateFactory:
    """Restore a factory saved by :func:`save_factory`.

    Certificates are verified to carry the restored keys; a corrupted
    or mismatched file raises ``ValueError``.
    """
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("schema") not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(f"unsupported factory schema {payload.get('schema')!r}")
    factory = CertificateFactory(
        seed=payload["seed"], key_bits=payload["key_bits"]
    )
    for name, key in payload["keys"].items():
        d = int(key["d"])
        crt: dict[str, int] = {}
        if "p" in key and "q" in key:
            p, q = int(key["p"]), int(key["q"])
            if p * q != int(key["n"]):
                raise ValueError(
                    f"stored primes for {name!r} do not multiply to the modulus"
                )
            crt = crt_parameters(p, q, d)
        factory._keypairs[name] = RsaKeyPair(
            private=RsaPrivateKey(
                modulus=int(key["n"]),
                public_exponent=int(key["e"]),
                private_exponent=d,
                **crt,
            )
        )
    for attribute, table in (("_roots", "roots"), ("_reissues", "reissues")):
        cache = getattr(factory, attribute)
        for name, pem in payload[table].items():
            certificate = Certificate.from_der(pem_decode(pem))
            keypair = factory._keypairs.get(name)
            if keypair is None or certificate.public_key != keypair.public:
                raise ValueError(
                    f"certificate for {name!r} does not match its stored key"
                )
            cache[name] = certificate
    return factory
