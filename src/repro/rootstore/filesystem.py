"""Emulation of Android's on-disk root store layout.

Android keeps system roots as individual PEM files named by subject
hash (``<hash>.0``) under ``/system/etc/security/cacerts/`` (§2 fn2) on
a read-only system partition. Rooting the device allows remounting the
partition read-write, which is precisely how apps like "Freedom" inject
roots (§6). This module reproduces that mechanism over a real directory
tree so the measurement client can *enumerate files* the way Netalyzr
does, instead of being handed a Python list.
"""

from __future__ import annotations

import pathlib

from repro.rootstore.store import RootStore
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import subject_hash
from repro.x509.pem import pem_decode_all, pem_encode

#: The canonical Android location (relative inside our sandbox roots).
CACERTS_PATH = "system/etc/security/cacerts"


class ReadOnlyStoreError(PermissionError):
    """Raised when writing to the cacerts dir of a non-rooted device."""


class CacertsDirectory:
    """A directory of ``<subject_hash>.N`` PEM files, like Android's.

    The ``mounted_rw`` flag models the system-partition mount state:
    writes require a prior :meth:`remount_rw`, which itself requires
    root. Hash-collision handling matches Android/OpenSSL: the suffix
    counts up (``.0``, ``.1``, ...).
    """

    def __init__(self, base_dir: str | pathlib.Path, *, rooted: bool = False):
        self.base = pathlib.Path(base_dir) / CACERTS_PATH
        self.base.mkdir(parents=True, exist_ok=True)
        self.rooted = rooted
        self.mounted_rw = False

    # -- mount state -------------------------------------------------------------

    def remount_rw(self) -> None:
        """Remount the system partition read-write (requires root)."""
        if not self.rooted:
            raise ReadOnlyStoreError(
                "remounting /system read-write requires root privileges"
            )
        self.mounted_rw = True

    def remount_ro(self) -> None:
        """Restore the read-only mount."""
        self.mounted_rw = False

    def _check_writable(self, *, system: bool) -> None:
        if system:
            return  # firmware build steps write before the image ships
        if not self.mounted_rw:
            raise ReadOnlyStoreError(
                "cacerts directory is on a read-only mount; remount_rw() first"
            )

    # -- file operations -----------------------------------------------------------

    def _path_for(self, certificate: Certificate) -> pathlib.Path:
        """The file path this certificate would occupy, handling hash
        collisions with increasing suffixes."""
        base_hash = subject_hash(certificate)
        for suffix in range(16):
            path = self.base / f"{base_hash}.{suffix}"
            if not path.exists():
                return path
            existing = pem_decode_all(path.read_text())
            if existing and existing[0] == certificate.encoded:
                return path
        raise RuntimeError(f"too many hash collisions for {base_hash}")

    def install(self, certificate: Certificate, *, system: bool = False) -> pathlib.Path:
        """Write a certificate file; returns its path."""
        self._check_writable(system=system)
        path = self._path_for(certificate)
        path.write_text(pem_encode(certificate.encoded))
        return path

    def remove(self, certificate: Certificate, *, system: bool = False) -> bool:
        """Delete the file holding this certificate; True if found."""
        self._check_writable(system=system)
        for path in self.base.glob("*.*"):
            blocks = pem_decode_all(path.read_text())
            if blocks and blocks[0] == certificate.encoded:
                path.unlink()
                return True
        return False

    def list_files(self) -> list[pathlib.Path]:
        """All certificate files, sorted by name (what Netalyzr reads)."""
        return sorted(self.base.glob("*.*"))

    def load_store(self, name: str = "device", *, strict: bool = False) -> RootStore:
        """Parse every file back into a RootStore.

        By default corrupt files are skipped (recorded in
        :attr:`load_errors`), matching Android's tolerant loader — a
        half-written file must not brick the trust store. With
        ``strict=True`` the first bad file raises.
        """
        certificates = []
        self.load_errors: list[tuple[pathlib.Path, str]] = []
        for path in self.list_files():
            try:
                for der in pem_decode_all(path.read_text()):
                    certificates.append(Certificate.from_der(der))
            except (ValueError, UnicodeDecodeError) as exc:
                if strict:
                    raise
                self.load_errors.append((path, str(exc)))
        return RootStore(name, certificates, read_only=not self.mounted_rw)

    def populate(self, store: RootStore) -> int:
        """Write every certificate of a store (firmware-build step)."""
        count = 0
        for certificate in store.certificates(include_disabled=True):
            self.install(certificate, system=True)
            count += 1
        return count
