"""Mozilla and iOS7 root stores, plus the bundled platform-store set.

Mozilla entries carry scoped trust bits (websites-only for TLS roots);
Android and iOS entries are trusted for everything, which is exactly the
policy gap §2 and §8 call out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rootstore.aosp import AospStoreBuilder
from repro.rootstore.catalog import CaCatalog, CaKind, default_catalog
from repro.rootstore.factory import CertificateFactory
from repro.rootstore.store import RootStore, TrustFlags


def build_mozilla_store(
    factory: CertificateFactory, catalog: CaCatalog | None = None
) -> RootStore:
    """The Mozilla root store (153 roots, scoped trust)."""
    catalog = catalog or default_catalog()
    store = RootStore("Mozilla", read_only=False)
    for profile in catalog.mozilla_profiles():
        certificate = factory.store_certificate(profile, "mozilla")
        trust = (
            TrustFlags.websites_only()
            if profile.kind in (CaKind.PUBLIC_WEB, CaKind.LEGACY)
            else TrustFlags.all()
        )
        store.add(certificate, trust=trust, source="mozilla-program")
    return store


def build_ios7_store(
    factory: CertificateFactory, catalog: CaCatalog | None = None
) -> RootStore:
    """The iOS7 root store (227 roots, the largest of the set)."""
    catalog = catalog or default_catalog()
    store = RootStore("iOS7", read_only=True)
    for profile in catalog.ios7_profiles():
        store.add(
            factory.store_certificate(profile, "ios7"),
            system=True,
            source="apple",
        )
    return store


@dataclass
class PlatformStores:
    """The full set of official platform stores used by the analysis."""

    aosp: dict[str, RootStore]
    mozilla: RootStore
    ios7: RootStore

    def table1_sizes(self) -> dict[str, int]:
        """Store sizes as reported in Table 1."""
        sizes = {f"AOSP {version}": len(store) for version, store in self.aosp.items()}
        sizes["iOS7"] = len(self.ios7)
        sizes["Mozilla"] = len(self.mozilla)
        return sizes


def build_platform_stores(
    factory: CertificateFactory | None = None,
    catalog: CaCatalog | None = None,
) -> PlatformStores:
    """Build AOSP 4.1-4.4, Mozilla and iOS7 stores from one factory."""
    factory = factory or CertificateFactory()
    catalog = catalog or default_catalog()
    builder = AospStoreBuilder(factory, catalog)
    return PlatformStores(
        aosp=builder.all_stores(),
        mozilla=build_mozilla_store(factory, catalog),
        ios7=build_ios7_store(factory, catalog),
    )
