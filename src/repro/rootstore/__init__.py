"""Root-store models: stores, diffing, the CA catalog, and filesystem layout.

This subpackage models what the paper studies: the sets of trusted root
certificates shipped by the AOSP, Mozilla and iOS7 platforms, extended
by hardware vendors and mobile operators, and laid out on Android's
``/system/etc/security/cacerts/`` partition.
"""

from repro.rootstore.store import RootStore, StoreEntry, TrustFlags
from repro.rootstore.diff import StoreDiff, diff_stores
from repro.rootstore.catalog import (
    CaCatalog,
    CaProfile,
    StorePresence,
    default_catalog,
)
from repro.rootstore.factory import CertificateFactory
from repro.rootstore.aosp import AOSP_STORE_SIZES, AospStoreBuilder
from repro.rootstore.vendors import PlatformStores, build_platform_stores
from repro.rootstore.filesystem import CacertsDirectory, ReadOnlyStoreError

__all__ = [
    "RootStore",
    "StoreEntry",
    "TrustFlags",
    "StoreDiff",
    "diff_stores",
    "CaCatalog",
    "CaProfile",
    "StorePresence",
    "default_catalog",
    "CertificateFactory",
    "AOSP_STORE_SIZES",
    "AospStoreBuilder",
    "PlatformStores",
    "build_platform_stores",
    "CacertsDirectory",
    "ReadOnlyStoreError",
]
