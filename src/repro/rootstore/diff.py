"""Root-store diffing — the comparison step of the paper's methodology.

Given a device store and its reference AOSP store, the diff classifies
each entry as *shared*, *added* (the paper's "additional certificates")
or *missing*, under either identity notion:

* strict — RSA modulus + signature (§4.1's identity);
* equivalent — subject + modulus (§4.2's cross-store equivalence, which
  treats a re-issued root with a new expiry as the same root).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rootstore.store import RootStore
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import equivalence_key, identity_key


@dataclass(frozen=True)
class StoreDiff:
    """The outcome of comparing a store against a reference store."""

    store_name: str
    reference_name: str
    shared: tuple[Certificate, ...]
    added: tuple[Certificate, ...]
    missing: tuple[Certificate, ...]
    #: Pairs (store cert, reference cert) that are equivalent but not
    #: byte/signature-identical — the §4.2 re-issue cases.
    equivalent_only: tuple[tuple[Certificate, Certificate], ...] = ()

    @property
    def is_stock(self) -> bool:
        """True if the store matches the reference exactly."""
        return not self.added and not self.missing

    @property
    def added_count(self) -> int:
        """Number of additional certificates."""
        return len(self.added)

    @property
    def missing_count(self) -> int:
        """Number of reference certificates absent from the store."""
        return len(self.missing)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.store_name} vs {self.reference_name}: "
            f"{len(self.shared)} shared, {len(self.added)} added, "
            f"{len(self.missing)} missing"
            + (f", {len(self.equivalent_only)} equivalent-only" if self.equivalent_only else "")
        )


def diff_stores(
    store: RootStore,
    reference: RootStore,
    *,
    use_equivalence: bool = True,
) -> StoreDiff:
    """Compare *store* against *reference*.

    With ``use_equivalence`` (the paper's method), certificates that are
    §4.2-equivalent to a reference entry count as shared and are also
    reported in ``equivalent_only``; with strict identity they would
    appear as simultaneously added and missing.
    """
    store_certs = store.certificates(include_disabled=True)
    reference_certs = reference.certificates(include_disabled=True)

    reference_by_identity = {identity_key(c): c for c in reference_certs}
    store_identities = {identity_key(c) for c in store_certs}

    shared: list[Certificate] = []
    added: list[Certificate] = []
    equivalent_only: list[tuple[Certificate, Certificate]] = []

    reference_by_equivalence: dict[object, Certificate] = {}
    if use_equivalence:
        for certificate in reference_certs:
            reference_by_equivalence.setdefault(
                equivalence_key(certificate), certificate
            )

    matched_reference_ids: set[tuple[int, bytes]] = set()
    for certificate in store_certs:
        strict = identity_key(certificate)
        if strict in reference_by_identity:
            shared.append(certificate)
            matched_reference_ids.add(strict)
            continue
        if use_equivalence:
            twin = reference_by_equivalence.get(equivalence_key(certificate))
            if twin is not None:
                shared.append(certificate)
                equivalent_only.append((certificate, twin))
                matched_reference_ids.add(identity_key(twin))
                continue
        added.append(certificate)

    missing = [
        certificate
        for strict, certificate in reference_by_identity.items()
        if strict not in matched_reference_ids
        and not (
            use_equivalence
            and any(
                equivalence_key(certificate) == equivalence_key(c)
                for c in store_certs
            )
        )
    ]

    return StoreDiff(
        store_name=store.name,
        reference_name=reference.name,
        shared=tuple(shared),
        added=tuple(added),
        missing=tuple(missing),
        equivalent_only=tuple(equivalent_only),
    )


def overlap_count(a: RootStore, b: RootStore, *, use_equivalence: bool = False) -> int:
    """Number of certificates of *a* present in *b*.

    With strict identity this reproduces §2's "117 of AOSP 4.4's 150
    certificates also exist in Mozilla's root store"; with equivalence it
    reproduces Table 4's larger AOSP∩Mozilla category (130).
    """
    if not use_equivalence:
        b_ids = {identity_key(c) for c in b.certificates(include_disabled=True)}
        return sum(
            1
            for c in a.certificates(include_disabled=True)
            if identity_key(c) in b_ids
        )
    b_eq = {equivalence_key(c) for c in b.certificates(include_disabled=True)}
    return sum(
        1
        for c in a.certificates(include_disabled=True)
        if equivalence_key(c) in b_eq
    )
