"""Root-store import/export: PEM bundles and JSON metadata.

The formats a downstream operator actually exchanges: a concatenated
PEM bundle (what ``update-ca-certificates`` style tooling consumes) and
a JSON sidecar carrying the store-level metadata PEM cannot (trust
flags, enabled state, provenance).
"""

from __future__ import annotations

import json
import pathlib

from repro.rootstore.store import RootStore, TrustFlags
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import fingerprint
from repro.x509.pem import pem_decode_all, pem_encode

#: Schema version for the JSON sidecar.
SCHEMA_VERSION = 1


def store_to_pem(store: RootStore, *, include_disabled: bool = True) -> str:
    """Serialize a store as a concatenated PEM bundle."""
    blocks = []
    for entry in store.entries():
        if not entry.enabled and not include_disabled:
            continue
        blocks.append(pem_encode(entry.certificate.encoded))
    return "".join(blocks)


def store_from_pem(text: str, name: str = "imported") -> RootStore:
    """Parse a PEM bundle into a store (all entries enabled/system)."""
    store = RootStore(name)
    for der in pem_decode_all(text):
        store.add(Certificate.from_der(der))
    return store


def store_to_json(store: RootStore) -> str:
    """Serialize a store with full metadata (certificates as PEM)."""
    entries = []
    for entry in store.entries():
        entries.append(
            {
                "pem": pem_encode(entry.certificate.encoded),
                "sha256": fingerprint(entry.certificate),
                "subject": str(entry.certificate.subject),
                "enabled": entry.enabled,
                "source": entry.source,
                "trust": {
                    "server_auth": entry.trust.server_auth,
                    "email": entry.trust.email,
                    "code_signing": entry.trust.code_signing,
                },
            }
        )
    return json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "name": store.name,
            "read_only": store.read_only,
            "entries": entries,
        },
        indent=2,
    )


def store_from_json(text: str) -> RootStore:
    """Parse the JSON form back into a store, verifying fingerprints."""
    payload = json.loads(text)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported store schema {payload.get('schema')!r}")
    store = RootStore(payload["name"], read_only=payload.get("read_only", False))
    for item in payload["entries"]:
        ders = pem_decode_all(item["pem"])
        if len(ders) != 1:
            raise ValueError("each entry must hold exactly one certificate")
        certificate = Certificate.from_der(ders[0])
        if fingerprint(certificate) != item["sha256"]:
            raise ValueError(
                f"fingerprint mismatch for {item.get('subject', '?')}"
            )
        trust = item.get("trust", {})
        entry = store.add(
            certificate,
            system=True,
            source=item.get("source", "imported"),
            trust=TrustFlags(
                server_auth=trust.get("server_auth", True),
                email=trust.get("email", True),
                code_signing=trust.get("code_signing", True),
            ),
        )
        if not item.get("enabled", True):
            entry.enabled = False
    return store


def save_store(store: RootStore, path: str | pathlib.Path) -> pathlib.Path:
    """Write a store to disk; format chosen by suffix (.pem or .json)."""
    path = pathlib.Path(path)
    if path.suffix == ".pem":
        path.write_text(store_to_pem(store))
    elif path.suffix == ".json":
        path.write_text(store_to_json(store))
    else:
        raise ValueError(f"unsupported store format {path.suffix!r}")
    return path


def load_store(path: str | pathlib.Path, name: str | None = None) -> RootStore:
    """Read a store from disk; format chosen by suffix (.pem or .json)."""
    path = pathlib.Path(path)
    if path.suffix == ".pem":
        return store_from_pem(path.read_text(), name or path.stem)
    if path.suffix == ".json":
        return store_from_json(path.read_text())
    raise ValueError(f"unsupported store format {path.suffix!r}")
