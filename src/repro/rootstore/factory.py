"""Certificate factory: deterministic, cached materialization of profiles.

Turning a :class:`~repro.rootstore.catalog.CaProfile` into an actual
signed certificate requires an RSA keypair (the expensive part), so the
factory memoizes both keypairs and certificates by profile name. A
given study seed always produces byte-identical certificates.
"""

from __future__ import annotations

import datetime
from typing import Iterable, Sequence

from repro.crypto.rng import derive_random
from repro.crypto.rsa import RsaKeyPair, generate_keypair
from repro.parallel.executor import ParallelExecutor
from repro.rootstore.catalog import CaProfile
from repro.x509.builder import CertificateBuilder
from repro.x509.certificate import Certificate
from repro.x509.name import Name

#: One keypair-generation request: the ``derive_random`` label tuple
#: naming the RNG stream, plus the modulus size.
KeySpec = tuple[tuple, int]


def _keygen_chunk(payload: object, chunk: range) -> list[RsaKeyPair]:
    """Worker chunk fn: generate the keypairs for one span of specs.

    Each spec owns an independent derived RNG stream, so the generated
    key depends only on the spec — never on which chunk, worker, or
    order it was generated in. That is the whole determinism argument
    for parallel key generation.
    """
    seed, specs = payload
    results = []
    for index in chunk:
        labels, bits = specs[index]
        results.append(generate_keypair(derive_random(seed, *labels), bits=bits))
    return results


def generate_keypairs(
    seed: str, specs: Sequence[KeySpec], executor: ParallelExecutor | None
) -> list[RsaKeyPair]:
    """Generate one keypair per spec, fanning out across *executor*.

    Returns keypairs in spec order, byte-identical at any worker count
    (``executor=None`` runs fully serial).
    """
    if executor is None:
        executor = ParallelExecutor()
    return executor.map_chunked(_keygen_chunk, (seed, list(specs)), len(specs))

#: Reference "now" for the study (§4.1: data collected Nov 2013-Apr 2014).
STUDY_NOW = datetime.datetime(2014, 4, 1)

#: Validity window for ordinary roots.
_ROOT_NOT_BEFORE = datetime.datetime(2000, 1, 1)
_ROOT_NOT_AFTER = datetime.datetime(2030, 1, 1)

#: The expired Firmaprofesional-style root expired in Oct 2013 (§2).
_EXPIRED_ROOT_NOT_AFTER = datetime.datetime(2013, 10, 1)

#: Re-issued twins extend validity by five years.
_REISSUE_NOT_AFTER = datetime.datetime(2035, 1, 1)


class CertificateFactory:
    """Builds and caches root certificates (and their keys) per profile.

    One factory corresponds to one study seed; independent seeds yield
    entirely disjoint PKI universes.
    """

    def __init__(self, seed: str = "tangled-mass", key_bits: int = 512):
        self.seed = seed
        self.key_bits = key_bits
        self._keypairs: dict[str, RsaKeyPair] = {}
        self._roots: dict[str, Certificate] = {}
        self._reissues: dict[str, Certificate] = {}

    def keypair_for(self, name: str) -> RsaKeyPair:
        """The deterministic keypair for a CA name."""
        if name not in self._keypairs:
            rng = derive_random(self.seed, "ca-key", name)
            self._keypairs[name] = generate_keypair(rng, bits=self.key_bits)
        return self._keypairs[name]

    def warm(self, names: Iterable[str], executor: ParallelExecutor) -> int:
        """Pre-generate the keypairs for *names* across *executor*.

        Key generation dominates cold-start cost and every key lives in
        its own derived RNG stream, so the fan-out produces exactly the
        keys :meth:`keypair_for` would have made lazily. Returns the
        number of keys generated.
        """
        missing = [name for name in names if name not in self._keypairs]
        specs: list[KeySpec] = [
            (("ca-key", name), self.key_bits) for name in missing
        ]
        for name, keypair in zip(
            missing, generate_keypairs(self.seed, specs, executor)
        ):
            self._keypairs[name] = keypair
        return len(missing)

    def subject_for(self, profile: CaProfile) -> Name:
        """The subject DN for a profile."""
        organization = profile.name.split(" ")[0] or profile.name
        country = profile.country if len(profile.country) == 2 else "US"
        return Name.build(CN=profile.name, O=organization, C=country)

    def root_certificate(self, profile: CaProfile) -> Certificate:
        """The canonical self-signed root for a profile."""
        if profile.name not in self._roots:
            keypair = self.keypair_for(profile.name)
            not_after = (
                _EXPIRED_ROOT_NOT_AFTER if profile.expired_root else _ROOT_NOT_AFTER
            )
            serial_rng = derive_random(self.seed, "serial", profile.name)
            self._roots[profile.name] = (
                CertificateBuilder()
                .subject(self.subject_for(profile))
                .public_key(keypair.public)
                .serial_number(serial_rng.randrange(1, 2**64))
                .validity(_ROOT_NOT_BEFORE, not_after)
                .ca(True)
                .self_sign(keypair.private)
            )
        return self._roots[profile.name]

    def reissued_certificate(self, profile: CaProfile) -> Certificate:
        """A re-issued twin: same subject and key, new validity window.

        This is the §4.2 equivalence case — byte-inequivalent to the
        canonical root but able to validate the same children.
        """
        if profile.name not in self._reissues:
            keypair = self.keypair_for(profile.name)
            serial_rng = derive_random(self.seed, "reissue-serial", profile.name)
            self._reissues[profile.name] = (
                CertificateBuilder()
                .subject(self.subject_for(profile))
                .public_key(keypair.public)
                .serial_number(serial_rng.randrange(1, 2**64))
                .validity(_ROOT_NOT_BEFORE, _REISSUE_NOT_AFTER)
                .ca(True)
                .self_sign(keypair.private)
            )
        return self._reissues[profile.name]

    def store_certificate(self, profile: CaProfile, store: str) -> Certificate:
        """The certificate a given store ships for this profile.

        Mozilla (and iOS7) carry the re-issued twin for profiles flagged
        ``reissued_in_mozilla``; all other stores carry the canonical
        root.
        """
        if profile.reissued_in_mozilla and store in ("mozilla", "ios7"):
            return self.reissued_certificate(profile)
        return self.root_certificate(profile)
