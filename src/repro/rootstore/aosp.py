"""Builders for the official AOSP root stores (4.1-4.4).

Reproduces the Table 1 sizes (139/140/146/150) and §2's structural
facts: the version-over-version growth, the expired Firmaprofesional
root, and the 117-certificate strict overlap with Mozilla.
"""

from __future__ import annotations

from repro.rootstore.catalog import ANDROID_VERSIONS, CaCatalog, default_catalog
from repro.rootstore.factory import CertificateFactory
from repro.rootstore.store import RootStore

#: Table 1: number of certificates in each official AOSP distribution.
AOSP_STORE_SIZES = {"4.1": 139, "4.2": 140, "4.3": 146, "4.4": 150}


class AospStoreBuilder:
    """Materializes the official AOSP store for each Android version."""

    def __init__(
        self,
        factory: CertificateFactory | None = None,
        catalog: CaCatalog | None = None,
    ):
        self.factory = factory or CertificateFactory()
        self.catalog = catalog or default_catalog()
        self._cache: dict[str, RootStore] = {}

    def store_for(self, version: str) -> RootStore:
        """The official (read-only) AOSP store for an Android version."""
        if version not in ANDROID_VERSIONS:
            raise ValueError(f"unknown Android version {version!r}")
        if version not in self._cache:
            certificates = [
                self.factory.root_certificate(profile)
                for profile in self.catalog.aosp_profiles(version)
            ]
            self._cache[version] = RootStore(
                f"AOSP {version}", certificates, read_only=True
            )
        return self._cache[version]

    def all_stores(self) -> dict[str, RootStore]:
        """Stores for every modeled version."""
        return {version: self.store_for(version) for version in ANDROID_VERSIONS}
