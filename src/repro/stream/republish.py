"""Cadence-driven snapshot republication for the live study engine.

The :class:`Republisher` sits between a :class:`~repro.stream.engine.
StreamEngine` and a snapshot sink (in fleet mode,
:meth:`repro.serve.supervisor.Supervisor.broadcast_snapshot`; in tests,
a plain holder swap). It decides *when* a fresh
:class:`~repro.serve.snapshot.StudySnapshot` is worth building — every
N ingested sessions, every T seconds, or both — stamps each build with
a monotonically increasing generation, and tracks snapshot freshness:
how stale the oldest unpublished ingest was by the time a snapshot
containing it finished building. The p99 of those samples is the
freshness bound ``BENCH_stream.json`` gates on.
"""

from __future__ import annotations

import math
import time

from repro.stream.engine import StreamEngine


class Republisher:
    """Rebuild-and-push policy over a stream engine."""

    def __init__(
        self,
        engine: StreamEngine,
        sink=None,
        *,
        every_sessions: int = 0,
        every_seconds: float = 0.0,
        clock=time.monotonic,
    ):
        self.engine = engine
        #: called with each freshly built snapshot; None builds only.
        self.sink = sink
        self.every_sessions = every_sessions
        self.every_seconds = every_seconds
        self._clock = clock
        self.generation = 0
        self.last_snapshot = None
        self.freshness_samples: list[float] = []
        self._published_sessions = 0
        self._published_events = 0
        self._last_publish_at = clock()
        self._oldest_pending: float | None = None

    # -- cadence -----------------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Events ingested since the last build."""
        ingested = self.engine.ingested_sessions + self.engine.ingested_leaves
        return ingested - self._published_events

    def note_ingest(self) -> None:
        """Record that new events landed; starts the freshness clock."""
        if self._oldest_pending is None and self.pending_events:
            self._oldest_pending = self._clock()

    def due(self) -> bool:
        """True when the configured cadence calls for a republish.

        Never due before the first session diff exists (the analysis
        tail needs at least one) or when nothing new was ingested.
        """
        if not self.pending_events or not self.engine.diffs:
            return False
        if self.every_sessions and (
            self.engine.ingested_sessions - self._published_sessions
            >= self.every_sessions
        ):
            return True
        if self.every_seconds and (
            self._clock() - self._last_publish_at >= self.every_seconds
        ):
            return True
        return False

    def maybe_publish(self):
        """Publish if due; returns the snapshot or None."""
        if self.due():
            return self.publish()
        return None

    # -- building ----------------------------------------------------------------

    def build(self):
        """Build the next-generation snapshot (no push).

        This is the parent-side ``app.reloader`` in stream fleets: a
        worker-forwarded ``POST /admin/reload`` forces a fresh build
        and the supervisor broadcasts the returned snapshot itself.
        """
        self.generation += 1
        snapshot = self.engine.snapshot(self.generation)
        now = self._clock()
        if self._oldest_pending is not None:
            # Freshness: the oldest unpublished ingest waited this long
            # for a snapshot containing it to finish building. (The
            # sink's own push time is the transport's, not ours.)
            self.freshness_samples.append(now - self._oldest_pending)
            self._oldest_pending = None
        self._last_publish_at = now
        self._published_sessions = self.engine.ingested_sessions
        self._published_events = (
            self.engine.ingested_sessions + self.engine.ingested_leaves
        )
        self.last_snapshot = snapshot
        return snapshot

    def publish(self):
        """Build the next-generation snapshot and push it to the sink."""
        snapshot = self.build()
        if self.sink is not None:
            self.sink(snapshot)
        return snapshot

    # -- reporting ---------------------------------------------------------------

    def freshness(self) -> dict:
        """Summary of the freshness samples collected so far."""
        samples = sorted(self.freshness_samples)
        if not samples:
            return {"publishes": 0}

        def quantile(fraction: float) -> float:
            index = min(
                len(samples) - 1, max(0, math.ceil(fraction * len(samples)) - 1)
            )
            return samples[index]

        return {
            "publishes": len(samples),
            "p50_s": round(quantile(0.50), 3),
            "p99_s": round(quantile(0.99), 3),
            "max_s": round(samples[-1], 3),
        }


def drain(engine: StreamEngine, republisher: Republisher, *, batch: int = 256):
    """Pump *engine* dry on *republisher*'s cadence; returns the final
    snapshot (every ingested event published exactly once)."""
    while not engine.exhausted:
        if engine.pump(batch):
            republisher.note_ingest()
            republisher.maybe_publish()
    if republisher.pending_events:
        return republisher.publish()
    return republisher.last_snapshot
