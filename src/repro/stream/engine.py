"""The stream engine: continuous ingestion over incremental indexes.

:class:`StreamEngine` owns the same substrates a batch study builds —
population, dataset, notary, per-session diffs — but consumes the
session and leaf event generators (:func:`~repro.netalyzr.collector.
ingest_sessions`, :func:`~repro.notary.database.ingest_leaves`)
incrementally, a bounded batch per :meth:`StreamEngine.pump` call. Per
ingested session the engine immediately computes the session's store
diff (the expensive per-record analysis) and renders its API payload;
the dataset's summary counters and the notary's per-subject validation
memos update incrementally on their own (the PR 2 invalidation and
PR 6 sharding paths). A :meth:`StreamEngine.snapshot` call therefore
only reruns the cheap aggregation tail
(:func:`~repro.analysis.study.analyze_from_diffs`) — tables and
figures update as deltas of already-diffed state, never as a
from-scratch recomputation of the per-session work.

The two event streams interleave one-for-one until the shorter
exhausts; ordering cannot change any output — the dataset and notary
share no state, and every generated artifact derives from per-name RNG
streams, not from generation order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.analysis.errors import AnalysisError
from repro.analysis.report import STUDY_JSON_SCHEMA
from repro.analysis.sessions import SessionDiff, SessionDiffer
from repro.analysis.study import StudyConfig, StudyResult, analyze_from_diffs
from repro.android.population import PopulationConfig, PopulationGenerator
from repro.faults.injector import FaultInjector
from repro.faults.quarantine import ErrorCategory
from repro.netalyzr.collector import NetalyzrClient, ingest_sessions
from repro.netalyzr.dataset import NetalyzrDataset
from repro.notary.database import NotaryDatabase, ingest_leaves
from repro.parallel.executor import ParallelExecutor
from repro.rootstore.catalog import default_catalog
from repro.rootstore.factory import CertificateFactory
from repro.rootstore.vendors import build_platform_stores
from repro.scenarios.engine import apply_scenarios
from repro.serve.snapshot import StudySnapshot, session_diff_payload
from repro.storage.backend import DiskBackend
from repro.tlssim.endpoints import PROBE_TARGETS
from repro.tlssim.traffic import TlsTrafficGenerator

#: Default events consumed per :meth:`StreamEngine.pump` call.
DEFAULT_BATCH = 256


@dataclass
class StreamConfig:
    """Knobs for one live study run (the streaming subset of
    :class:`~repro.analysis.study.StudyConfig`)."""

    seed: str = "tangled-mass"
    population_scale: float = 1.0
    notary_scale: float = 1.0
    key_bits: int = 512
    fault_rate: float = 0.0
    fault_seed: str = ""
    workers: int = 1
    storage_dir: str = ""
    #: abuse campaigns injected into the generated population (a
    #: :class:`repro.scenarios.ScenarioSpec` tuple); applied before the
    #: first event, so stream and batch collections see the identical
    #: population.
    scenarios: tuple = ()
    scenario_seed: str = ""
    #: maintain the per-session diff index served at
    #: ``/v1/sessions/{id}/diff``. Costs one rendered payload per
    #: session held resident; million-session live corpora turn it off
    #: and that endpoint 404s.
    index_sessions: bool = True

    def study_config(self) -> StudyConfig:
        """The equivalent batch configuration (drives the report's
        config section, which must match a batch run's bytes)."""
        return StudyConfig(
            seed=self.seed,
            population_scale=self.population_scale,
            notary_scale=self.notary_scale,
            key_bits=self.key_bits,
            fault_rate=self.fault_rate,
            fault_seed=self.fault_seed,
            workers=self.workers,
            storage_dir=self.storage_dir,
            scenarios=self.scenarios,
            scenario_seed=self.scenario_seed,
        )


def placeholder_snapshot(config: StreamConfig) -> StudySnapshot:
    """Generation-0 snapshot served while the stream is still warming.

    The fleet forks with this in place; the first republish broadcast
    replaces it everywhere. Table/figure/root lookups 404 against it,
    ``/v1/health`` reports ``warming: true``.
    """
    export = {"schema": STUDY_JSON_SCHEMA, "tables": {}, "figures": {}}
    meta = {
        "seed": config.seed,
        "population_scale": config.population_scale,
        "notary_scale": config.notary_scale,
        "sessions": 0,
        "diffed_sessions": 0,
        "roots": 0,
        "generation": 0,
        "warming": True,
    }
    return StudySnapshot(export, meta=meta, generation=0)


class StreamEngine:
    """Continuous-ingestion study state with incremental indexes."""

    def __init__(self, config: StreamConfig | None = None):
        self.config = config or StreamConfig()
        cfg = self.config
        self._executor = ParallelExecutor(workers=cfg.workers)
        self._backend = (
            DiskBackend(cfg.storage_dir) if cfg.storage_dir else None
        )
        self._catalog = default_catalog()
        self._injector: FaultInjector | None = None
        if cfg.fault_rate > 0:
            self._injector = FaultInjector(
                rate=cfg.fault_rate, seed=cfg.fault_seed or cfg.seed
            )
        with obs.span(
            "stream.build",
            seed=cfg.seed,
            population_scale=cfg.population_scale,
            notary_scale=cfg.notary_scale,
            workers=cfg.workers,
        ):
            self._factory = CertificateFactory(
                seed=cfg.seed, key_bits=cfg.key_bits
            )
            self._stores = build_platform_stores(self._factory, self._catalog)
            self._population = PopulationGenerator(
                PopulationConfig(seed=cfg.seed, scale=cfg.population_scale),
                self._factory,
                self._catalog,
            ).generate(executor=self._executor)
            # Campaigns mutate the population before the first event:
            # the stream then ingests the same devices (and therefore
            # the same bytes) a batch scenario study would.
            self._scenario_fleet = apply_scenarios(
                self._population,
                tuple(cfg.scenarios),
                cfg.scenario_seed or cfg.seed,
            )

        self.dataset = NetalyzrDataset(backend=self._backend)
        self.notary = NotaryDatabase(backend=self._backend)
        self._differ = SessionDiffer(self._stores.aosp)
        self.diffs: list[SessionDiff] = []
        self._session_index: dict[str, dict] = {}
        self._diff_cursor = 0

        client = NetalyzrClient(self._factory, self._catalog)
        if self._executor.parallel:
            # Same warm-up the batch collector runs: identical keys,
            # generated sooner and in parallel.
            client.factory.warm(
                (endpoint.issuer_ca for endpoint in PROBE_TARGETS),
                self._executor,
            )
            client._traffic.warm_server_keys(
                [endpoint.host for endpoint in PROBE_TARGETS], self._executor
            )
        generator = TlsTrafficGenerator(
            self._factory, self._catalog, scale=cfg.notary_scale
        )
        #: planned session total (the stream's finite horizon).
        self.total_sessions = sum(
            record.session_count for record in self._population.records
        )
        self.ingested_sessions = 0
        self.ingested_leaves = 0
        self.exhausted = False
        self._events = self._merge(
            ingest_sessions(
                self._population, client, self.dataset, injector=self._injector
            ),
            ingest_leaves(
                self.notary,
                generator,
                list(self._catalog.all_profiles()),
                self._factory,
                injector=self._injector,
                executor=self._executor,
            ),
        )

    # -- ingestion ---------------------------------------------------------------

    def _merge(self, sessions, leaves):
        """Alternate the two event streams; drain whichever outlives."""
        streams = [sessions, leaves]
        while streams:
            for stream in list(streams):
                try:
                    next(stream)
                except StopIteration:
                    streams.remove(stream)
                    continue
                if stream is sessions:
                    self.ingested_sessions += 1
                    self._diff_new_sessions()
                else:
                    self.ingested_leaves += 1
                yield stream

    def _diff_new_sessions(self) -> None:
        """Diff (and index) every dataset session not yet diffed.

        Mirrors ``SessionDiffer.diff_all`` exactly — same quarantine
        category, location and message for an undiffable session — just
        one session at a time, so the final diff list and quarantine
        counts match a batch analysis byte for byte.
        """
        sessions = self.dataset.sessions
        while self._diff_cursor < len(sessions):
            session = sessions[self._diff_cursor]
            self._diff_cursor += 1
            try:
                parts = self._differ._diff_parts(session)
            except AnalysisError as exc:
                self.dataset.quarantine.add(
                    ErrorCategory.MALFORMED_RECORD,
                    f"session:{session.session_id}/diff",
                    str(exc),
                )
                continue
            diff = self._differ._assemble(session, parts)
            self.diffs.append(diff)
            if self.config.index_sessions:
                self._session_index[str(session.session_id)] = (
                    session_diff_payload(diff)
                )

    def pump(self, max_events: int = DEFAULT_BATCH) -> int:
        """Ingest up to *max_events* events; returns the count consumed.

        Returns less than *max_events* only when the stream ran dry
        (:attr:`exhausted` flips true).
        """
        if self.exhausted:
            return 0
        consumed = 0
        while consumed < max_events:
            if next(self._events, None) is None:
                self.exhausted = True
                break
            consumed += 1
        return consumed

    # -- publication -------------------------------------------------------------

    def result(self) -> StudyResult:
        """The study over everything ingested so far.

        Reruns only the aggregation tail: the per-session diffs are
        already computed, the notary's validation memos are already
        warm for every untouched anchor.
        """
        if self._backend is not None:
            self._backend.flush()
        result = StudyResult(
            config=self.config.study_config(),
            stores=self._stores,
            population=self._population,
            dataset=self.dataset,
            notary=self.notary,
            diffs=list(self.diffs),
            fault_injector=self._injector,
            scenarios=self._scenario_fleet,
        )
        analyze_from_diffs(result, self._catalog, executor=self._executor)
        return result

    def snapshot(self, generation: int) -> StudySnapshot:
        """A serveable snapshot of everything ingested so far."""
        result = self.result()
        session_index = (
            dict(self._session_index) if self.config.index_sessions else None
        )
        return StudySnapshot.from_result(
            result,
            generation=generation,
            index_sessions=self.config.index_sessions,
            session_index=session_index,
        )
