"""``repro.stream`` — the live study engine.

The batch pipeline (:func:`repro.analysis.study.run_study`) builds the
whole universe, then analyzes it once. This package runs the same
pipeline *continuously*: sessions and Notary leaf observations arrive
as an interleaved event stream (the exact generators the batch builders
drain), the dataset and notary maintain their indexes incrementally on
ingest, and a :class:`Republisher` rebuilds a
:class:`~repro.serve.snapshot.StudySnapshot` on a configurable cadence
and pushes it to the serve layer — in fleet mode through
:meth:`repro.serve.supervisor.Supervisor.broadcast_snapshot`, so every
worker flips to the new generation together.

Determinism is preserved end to end: a streamed study's final report is
byte-identical to the batch-built report over the same session set, at
any pacing, cadence or worker count.
"""

from repro.stream.engine import StreamConfig, StreamEngine, placeholder_snapshot
from repro.stream.republish import Republisher, drain

__all__ = [
    "StreamConfig",
    "StreamEngine",
    "Republisher",
    "drain",
    "placeholder_snapshot",
]
