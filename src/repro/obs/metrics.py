"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The study engine's perf data used to live in ad-hoc islands —
``CacheStats`` counters here, ``--perf`` prints there, bench JSON
elsewhere. This registry is the one spine they all publish into: a
flat, name-keyed set of counters (monotonically increasing event
counts), gauges (last-written values) and histograms (monotonic-clock
durations bucketed into *fixed* boundaries, so two runs always produce
structurally identical output).

Everything is stdlib-only and cheap enough for hot paths: recording a
counter is one dict lookup plus an integer add. Metrics recorded inside
forked worker processes land in the child's copy-on-write copy of the
registry and are deliberately lost — the parent's registry reflects
parent-side work only, which keeps the export deterministic in shape
at any worker count.
"""

from __future__ import annotations

from bisect import bisect_left

#: Metrics export schema revision (bump on incompatible shape changes).
METRICS_SCHEMA = 1

#: Fixed histogram bucket boundaries, in seconds. Chosen to straddle the
#: engine's observed range: sub-millisecond chunk maps up to minute-long
#: full-scale universe builds. Fixed boundaries make every export
#: structurally identical, which the JSON schema check relies on.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Observations bucketed into fixed, ascending boundaries.

    Bucket *i* counts observations ``<= boundaries[i]``; the final
    overflow bucket counts everything larger. ``sum``/``min``/``max``
    ride along so averages and outliers survive the bucketing.
    """

    __slots__ = ("boundaries", "counts", "total", "count", "minimum", "maximum")

    def __init__(self, boundaries: tuple[float, ...] = DEFAULT_BUCKETS):
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError(f"boundaries must be ascending, got {boundaries!r}")
        self.boundaries = tuple(float(edge) for edge in boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.total = 0.0
        self.count = 0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def to_dict(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(self.minimum, 6) if self.minimum is not None else None,
            "max": round(self.maximum, 6) if self.maximum is not None else None,
        }


class MetricsRegistry:
    """Name-keyed counters, gauges and histograms with one JSON export.

    Instruments are created on first use; asking for the same name
    twice returns the same object. Counters, gauges and histograms live
    in separate namespaces. The export sorts every name so two
    registries holding the same instruments serialize identically.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, boundaries: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(boundaries)
        return instrument

    def reset(self) -> None:
        """Drop every instrument (tests and fresh capture windows)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def to_dict(self) -> dict:
        """Deterministic-schema JSON export of every instrument."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }
