"""Structural JSON-schema checks for telemetry exports.

The CI ``obs-smoke`` job and the integration tests validate every
``--trace``/``--metrics`` file against these checks before trusting it.
Zero-dependency by design: instead of a jsonschema engine, each
validator walks the payload and raises :class:`SchemaError` naming the
first path that deviates from the documented shape.
"""

from __future__ import annotations

from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.trace import TRACE_SCHEMA

#: Attribute values allowed in spans, events and metric exports.
_SCALAR = (str, int, float, bool, type(None))

_SPAN_KEYS = {
    "name", "duration_s", "attributes", "events", "dropped_events", "children",
}
_HISTOGRAM_KEYS = {"boundaries", "counts", "count", "sum", "min", "max"}


class SchemaError(ValueError):
    """A telemetry payload deviates from its documented schema."""


def _fail(path: str, message: str) -> None:
    raise SchemaError(f"{path}: {message}")


def _require_mapping(payload: object, path: str, keys: set[str]) -> dict:
    if not isinstance(payload, dict):
        _fail(path, f"expected object, got {type(payload).__name__}")
    if set(payload) != keys:
        _fail(path, f"expected keys {sorted(keys)}, got {sorted(payload)}")
    return payload


def _require_scalars(payload: dict, path: str) -> None:
    for key, value in payload.items():
        if not isinstance(key, str):
            _fail(path, f"non-string key {key!r}")
        if isinstance(value, bool):
            continue
        if not isinstance(value, _SCALAR):
            _fail(f"{path}.{key}", f"non-scalar value {type(value).__name__}")


def _validate_span(payload: object, path: str) -> None:
    span = _require_mapping(payload, path, _SPAN_KEYS)
    if not isinstance(span["name"], str) or not span["name"]:
        _fail(f"{path}.name", "expected non-empty string")
    if not isinstance(span["duration_s"], (int, float)) or span["duration_s"] < 0:
        _fail(f"{path}.duration_s", f"expected non-negative number, got {span['duration_s']!r}")
    if not isinstance(span["attributes"], dict):
        _fail(f"{path}.attributes", "expected object")
    _require_scalars(span["attributes"], f"{path}.attributes")
    if not isinstance(span["dropped_events"], int) or span["dropped_events"] < 0:
        _fail(f"{path}.dropped_events", "expected non-negative integer")
    if not isinstance(span["events"], list):
        _fail(f"{path}.events", "expected array")
    for index, event in enumerate(span["events"]):
        event_path = f"{path}.events[{index}]"
        record = _require_mapping(event, event_path, {"name", "attributes"})
        if not isinstance(record["name"], str) or not record["name"]:
            _fail(f"{event_path}.name", "expected non-empty string")
        if not isinstance(record["attributes"], dict):
            _fail(f"{event_path}.attributes", "expected object")
        _require_scalars(record["attributes"], f"{event_path}.attributes")
    if not isinstance(span["children"], list):
        _fail(f"{path}.children", "expected array")
    for index, child in enumerate(span["children"]):
        _validate_span(child, f"{path}.children[{index}]")


def validate_trace(payload: object) -> None:
    """Raise :class:`SchemaError` unless *payload* is a valid trace tree."""
    root = _require_mapping(payload, "$", {"schema", "spans"})
    if root["schema"] != TRACE_SCHEMA:
        _fail("$.schema", f"expected {TRACE_SCHEMA}, got {root['schema']!r}")
    if not isinstance(root["spans"], list):
        _fail("$.spans", "expected array")
    for index, span in enumerate(root["spans"]):
        _validate_span(span, f"$.spans[{index}]")


def _validate_histogram(payload: object, path: str) -> None:
    histogram = _require_mapping(payload, path, _HISTOGRAM_KEYS)
    boundaries = histogram["boundaries"]
    counts = histogram["counts"]
    if not isinstance(boundaries, list) or not all(
        isinstance(edge, (int, float)) and not isinstance(edge, bool)
        for edge in boundaries
    ):
        _fail(f"{path}.boundaries", "expected array of numbers")
    if boundaries != sorted(boundaries):
        _fail(f"{path}.boundaries", "expected ascending boundaries")
    if not isinstance(counts, list) or not all(
        isinstance(count, int) and not isinstance(count, bool) and count >= 0
        for count in counts
    ):
        _fail(f"{path}.counts", "expected array of non-negative integers")
    if len(counts) != len(boundaries) + 1:
        _fail(
            f"{path}.counts",
            f"expected {len(boundaries) + 1} buckets, got {len(counts)}",
        )
    if not isinstance(histogram["count"], int) or histogram["count"] != sum(counts):
        _fail(f"{path}.count", "expected count == sum(counts)")
    if not isinstance(histogram["sum"], (int, float)):
        _fail(f"{path}.sum", "expected number")
    for bound in ("min", "max"):
        value = histogram[bound]
        if value is not None and not isinstance(value, (int, float)):
            _fail(f"{path}.{bound}", "expected number or null")
        if histogram["count"] == 0 and value is not None:
            _fail(f"{path}.{bound}", "expected null for an empty histogram")


def validate_metrics(payload: object) -> None:
    """Raise :class:`SchemaError` unless *payload* is a valid metrics dump."""
    root = _require_mapping(
        payload, "$", {"schema", "counters", "gauges", "histograms"}
    )
    if root["schema"] != METRICS_SCHEMA:
        _fail("$.schema", f"expected {METRICS_SCHEMA}, got {root['schema']!r}")
    if not isinstance(root["counters"], dict):
        _fail("$.counters", "expected object")
    for name, value in root["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            _fail(f"$.counters.{name}", f"expected non-negative integer, got {value!r}")
    if not isinstance(root["gauges"], dict):
        _fail("$.gauges", "expected object")
    for name, value in root["gauges"].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail(f"$.gauges.{name}", f"expected number, got {value!r}")
    if not isinstance(root["histograms"], dict):
        _fail("$.histograms", "expected object")
    for name, histogram in root["histograms"].items():
        _validate_histogram(histogram, f"$.histograms.{name}")
