"""Hierarchical trace spans over the study pipeline.

A span covers one named unit of work (``study.build_notary``,
``analyze.diff_all``) and records its monotonic wall time, a flat
attribute dict (worker count, cache hit/miss deltas, quarantine
counts), bounded point-in-time events (a quarantined record, one
executor fan-out) and its child spans. The tracer keeps a stack of
open spans, so nesting falls out of lexical ``with`` structure.

Exports are **deterministic in schema**: every span serializes the same
six keys, attributes and events sort by name, and durations round to
microseconds. The *values* (durations, fallback modes) legitimately
vary run to run — the byte-identity contract covers the study report,
never the trace, which is why telemetry lives entirely outside report
rendering.

Spans opened inside forked worker processes exist only in the child's
copy of the tracer and are dropped with it; the exported tree is the
parent's view of the pipeline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

#: Trace export schema revision (bump on incompatible shape changes).
TRACE_SCHEMA = 1

#: Events kept per span before further ones are counted but dropped —
#: a fault-injection sweep can quarantine thousands of records and the
#: trace must stay readable, not become a second corpus.
MAX_EVENTS_PER_SPAN = 256


class Span:
    """One named, timed unit of work in the trace tree."""

    __slots__ = (
        "name", "attributes", "events", "dropped_events", "children",
        "duration_s", "_started",
    )

    def __init__(self, name: str, attributes: dict | None = None):
        self.name = name
        self.attributes: dict = dict(attributes or {})
        self.events: list[dict] = []
        self.dropped_events = 0
        self.children: list["Span"] = []
        self.duration_s = 0.0
        self._started = 0.0

    def set(self, key: str, value: object) -> None:
        """Set one attribute (scalar values only; keeps exports JSON-safe)."""
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: object) -> None:
        """Append a bounded point-in-time event to this span."""
        if len(self.events) >= MAX_EVENTS_PER_SPAN:
            self.dropped_events += 1
            return
        self.events.append(
            {
                "name": name,
                "attributes": {key: attributes[key] for key in sorted(attributes)},
            }
        )

    def to_dict(self) -> dict:
        """Deterministic-schema JSON form of this span (and its subtree)."""
        return {
            "name": self.name,
            "duration_s": round(self.duration_s, 6),
            "attributes": {
                key: self.attributes[key] for key in sorted(self.attributes)
            },
            "events": list(self.events),
            "dropped_events": self.dropped_events,
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Builds the span tree for one capture window."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: object):
        """Open a child span of the current span for the ``with`` body."""
        span = Span(name, attributes)
        parent = self.current()
        (parent.children if parent is not None else self.roots).append(span)
        self._stack.append(span)
        span._started = time.perf_counter()
        try:
            yield span
        finally:
            span.duration_s = time.perf_counter() - span._started
            self._stack.pop()

    def event(self, name: str, **attributes: object) -> None:
        """Record an event on the current span (dropped outside spans)."""
        span = self.current()
        if span is not None:
            span.add_event(name, **attributes)

    def reset(self) -> None:
        """Drop every recorded span (tests and fresh capture windows)."""
        self.roots.clear()
        self._stack.clear()

    def to_dict(self) -> dict:
        """Deterministic-schema JSON export of the whole trace tree."""
        return {
            "schema": TRACE_SCHEMA,
            "spans": [span.to_dict() for span in self.roots],
        }
