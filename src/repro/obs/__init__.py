"""``repro.obs`` — the unified observability layer.

One zero-dependency spine for everything the engine used to measure in
ad-hoc islands: a process-wide :class:`~repro.obs.metrics.MetricsRegistry`
(counters, gauges, monotonic-clock histograms with fixed buckets) and a
hierarchical :class:`~repro.obs.trace.Tracer` whose spans record wall
time, worker counts, cache hit/miss deltas and fault/quarantine events.
Both export deterministic-schema JSON (``--trace FILE`` /
``--metrics FILE``) validated by :mod:`repro.obs.schema`.

Instrumented code calls the module-level helpers (:func:`counter_inc`,
:func:`span`, :func:`event`, …), which route to the *current* defaults.
Two context managers scope them:

* :func:`capture` installs a fresh registry + tracer for one pipeline
  run and hands them back, so a study's telemetry never bleeds into the
  next run's (``run_study`` wraps itself in one);
* :func:`disabled` turns every helper into a no-op — the honest
  zero-instrumentation baseline the ``obs-smoke`` overhead gate and the
  benchmarks compare against.

**Report neutrality is the design invariant**: nothing in this package
is ever consulted by report rendering, so study reports are
byte-identical with telemetry on or off, at any worker count.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.schema import SchemaError, validate_metrics, validate_trace
from repro.obs.trace import MAX_EVENTS_PER_SPAN, TRACE_SCHEMA, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "TelemetrySnapshot",
    "SchemaError",
    "validate_metrics",
    "validate_trace",
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "DEFAULT_BUCKETS",
    "MAX_EVENTS_PER_SPAN",
    "default_registry",
    "default_tracer",
    "counter_inc",
    "gauge_set",
    "observe",
    "span",
    "event",
    "current_span",
    "capture",
    "disabled",
    "enabled",
    "write_json",
]

_REGISTRY = MetricsRegistry()
_TRACER = Tracer()
_ENABLED = True


class _NullSpan(Span):
    """The span handed out while observability is disabled: records nothing."""

    def __init__(self) -> None:
        super().__init__("<disabled>")

    def set(self, key: str, value: object) -> None:
        pass

    def add_event(self, name: str, **attributes: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


def default_registry() -> MetricsRegistry:
    """The currently installed process-wide metrics registry."""
    return _REGISTRY


def default_tracer() -> Tracer:
    """The currently installed process-wide tracer."""
    return _TRACER


def enabled() -> bool:
    """Whether the observability helpers are currently recording."""
    return _ENABLED


def counter_inc(name: str, amount: int = 1) -> None:
    """Increment a counter in the current registry."""
    if _ENABLED:
        _REGISTRY.counter(name).inc(amount)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge in the current registry."""
    if _ENABLED:
        _REGISTRY.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record one histogram observation in the current registry."""
    if _ENABLED:
        _REGISTRY.histogram(name).observe(value)


def span(name: str, **attributes: object):
    """Open a trace span on the current tracer (no-op span when disabled)."""
    if not _ENABLED:
        return _null_span_context()
    return _TRACER.span(name, **attributes)


@contextmanager
def _null_span_context():
    yield _NULL_SPAN


def event(name: str, **attributes: object) -> None:
    """Record an event on the current span (dropped outside spans)."""
    if _ENABLED:
        _TRACER.event(name, **attributes)


def current_span() -> Span | None:
    """The innermost open span, or None."""
    return _TRACER.current()


@contextmanager
def capture():
    """Install a fresh registry + tracer for the ``with`` body.

    Yields the ``(registry, tracer)`` pair so the caller can export
    exactly the telemetry its own run produced; the previous defaults
    are restored afterwards. Nesting is allowed — the inner window
    simply shadows the outer one for its duration.
    """
    global _REGISTRY, _TRACER
    previous = (_REGISTRY, _TRACER)
    registry, tracer = MetricsRegistry(), Tracer()
    _REGISTRY, _TRACER = registry, tracer
    try:
        yield registry, tracer
    finally:
        _REGISTRY, _TRACER = previous


@contextmanager
def disabled():
    """Run the body with every observability helper a no-op.

    The benchmarks and the CI overhead gate use this as the honest
    zero-instrumentation baseline.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def write_json(payload: dict, path: str | os.PathLike) -> None:
    """Serialize one telemetry export deterministically to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One run's exported telemetry: a metrics dump plus a trace tree."""

    metrics: dict
    trace: dict

    def write_metrics(self, path: str | os.PathLike) -> None:
        write_json(self.metrics, path)

    def write_trace(self, path: str | os.PathLike) -> None:
        write_json(self.trace, path)
