"""Reproduction of "A Tangled Mass: The Android Root Certificate Stores"."""

#: Package version, surfaced by ``repro --version`` and ``GET /v1/health``.
__version__ = "1.1.0"
