"""Fault injection and resilient-ingestion primitives.

The wild corpus behind the paper arrived with truncated uploads,
malformed DER, duplicate sessions and flaky probes. This package makes
that failure surface first-class: :class:`FaultInjector` plants
deterministic, seed-derived corruption so robustness is testable, and
the quarantine/retry primitives give every ingest path a never-raising
dead-letter lane with bounded, replayable retries.
"""

from repro.faults.ingest import (
    CertificateUpload,
    ingest_certificate,
    resolve_certificate,
)
from repro.faults.injector import (
    CERT_FAULT_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectedFault,
)
from repro.faults.quarantine import (
    ErrorCategory,
    FingerprintMismatchError,
    IngestError,
    IngestHealth,
    Quarantine,
    QuarantineRecord,
    ValidityError,
    classify_error,
)
from repro.faults.retry import RetryExhausted, RetryOutcome, RetryPolicy, retry_call

__all__ = [
    "CERT_FAULT_KINDS",
    "CertificateUpload",
    "ErrorCategory",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FingerprintMismatchError",
    "IngestError",
    "IngestHealth",
    "InjectedFault",
    "Quarantine",
    "QuarantineRecord",
    "RetryExhausted",
    "RetryOutcome",
    "RetryPolicy",
    "ValidityError",
    "classify_error",
    "ingest_certificate",
    "resolve_certificate",
    "retry_call",
]
