"""Deterministic, seed-driven fault injection.

The wild corpus the paper collected came with truncated uploads,
garbled DER, duplicate sessions and flaky radios. This module makes
those failure modes *reproducible*: a :class:`FaultInjector` derives an
independent RNG stream per (seed, entity) — exactly like the rest of
the PKI universe — and corrupts a configurable fraction of records. The
injector keeps a ledger of every fault it planted, with the quarantine
category each one must produce, so tests can assert that resilient
ingestion caught everything and categorized it correctly.

Each corruption is self-checking: after mutating the bytes the injector
runs the same resolution logic ingest uses and records the category the
payload actually exhibits; a mutation that accidentally produced a
still-valid record is downgraded to a guaranteed truncation.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.asn1.decoder import Asn1Error, Asn1Object, decode
from repro.asn1.tags import TagClass
from repro.crypto.rng import derive_random
from repro.faults.ingest import CertificateUpload, resolve_certificate
from repro.faults.quarantine import ErrorCategory, classify_error
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import fingerprint
from repro.x509.pem import pem_encode

_STRING_TAG_NUMBERS = {12, 19, 22}  # UTF8String, PrintableString, IA5String
_TIME_TAG_NUMBERS = {23, 24}  # UTCTime, GeneralizedTime


class FaultKind(enum.Enum):
    """The failure modes the injector can plant."""

    TRUNCATED_DER = "truncated-der"
    GARBLED_DER = "garbled-der"
    BROKEN_PEM = "broken-pem"
    INVALID_STRING = "invalid-string"
    CLOCK_SKEW = "clock-skew"
    DUPLICATE_SESSION = "duplicate-session"
    TRANSIENT_HANDSHAKE = "transient-handshake"
    DROPPED_PROBE = "dropped-probe"


#: Certificate-level fault kinds (chosen uniformly for a corrupt record).
CERT_FAULT_KINDS = (
    FaultKind.TRUNCATED_DER,
    FaultKind.GARBLED_DER,
    FaultKind.BROKEN_PEM,
    FaultKind.INVALID_STRING,
    FaultKind.CLOCK_SKEW,
)


@dataclass(frozen=True)
class FaultPlan:
    """The knobs of one fault-injection campaign."""

    rate: float = 0.0  #: fraction of sessions / leaves / probes faulted
    seed: str = "tangled-mass"
    cert_kinds: tuple[FaultKind, ...] = CERT_FAULT_KINDS
    max_certs_per_session: int = 2  #: certs corrupted in a faulty session
    duplicate_factor: float = 0.5  #: duplicate-upload rate = rate * this
    transient_max_failures: int = 3  #: worst consecutive handshake drops

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")


@dataclass(frozen=True)
class InjectedFault:
    """Ledger entry: one fault the injector planted.

    ``expected_category`` is the quarantine category the resilient
    ingest path must produce for this record — ``None`` for faults that
    are expected to be absorbed without quarantine (recovered transient
    handshakes).
    """

    where: str
    kind: FaultKind
    expected_category: ErrorCategory | None


@dataclass
class FaultInjector:
    """Plants deterministic faults and remembers where it put them."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    ledger: list[InjectedFault] = field(default_factory=list)

    def __init__(
        self,
        plan: FaultPlan | None = None,
        *,
        rate: float | None = None,
        seed: str | None = None,
    ):
        if plan is None:
            plan = FaultPlan(
                rate=0.0 if rate is None else rate,
                seed="tangled-mass" if seed is None else seed,
            )
        elif rate is not None or seed is not None:
            raise ValueError("pass either a FaultPlan or rate/seed, not both")
        self.plan = plan
        self.ledger = []

    # -- RNG derivation ----------------------------------------------------------

    def _rng(self, *parts: object) -> random.Random:
        """An independent stream per (seed, entity) — call-order free."""
        return derive_random(f"faults/{self.plan.seed}", *parts)

    def _record(
        self, where: str, kind: FaultKind, expected: ErrorCategory | None
    ) -> None:
        self.ledger.append(InjectedFault(where, kind, expected))

    # -- session-level faults ----------------------------------------------------

    def corrupt_roots(
        self, session_id: int, uploads: list[CertificateUpload]
    ) -> list[CertificateUpload]:
        """Maybe corrupt a few of a session's root-certificate uploads.

        The claimed fingerprint survives corruption — the handset hashed
        the certificate before the transport mangled it.
        """
        rng = self._rng("session", session_id)
        if not uploads or rng.random() >= self.plan.rate:
            return uploads
        count = min(
            1 + rng.randrange(self.plan.max_certs_per_session), len(uploads)
        )
        out = list(uploads)
        for index in sorted(rng.sample(range(len(uploads)), count)):
            original = out[index]
            der = (
                original.payload.encoded
                if isinstance(original.payload, Certificate)
                else bytes(original.payload)  # type: ignore[arg-type]
            )
            payload, kind, expected = self._corrupt_der(
                der, rng.choice(self.plan.cert_kinds), rng,
                original.claimed_fingerprint,
            )
            out[index] = CertificateUpload(
                payload=payload,
                claimed_fingerprint=original.claimed_fingerprint,
            )
            self._record(f"session:{session_id}/root:{index}", kind, expected)
        return out

    def should_duplicate(self, session_id: int) -> bool:
        """Whether this session's upload arrives twice."""
        rng = self._rng("duplicate", session_id)
        duplicate = rng.random() < self.plan.rate * self.plan.duplicate_factor
        if duplicate:
            self._record(
                f"session:{session_id}",
                FaultKind.DUPLICATE_SESSION,
                ErrorCategory.DUPLICATE_SESSION,
            )
        return duplicate

    def transient_failures(
        self, session_id: int, hostport: str, *, attempts: int
    ) -> int:
        """Consecutive handshake failures to plant on one probe.

        A count below ``attempts`` is recovered by retry; reaching it
        exhausts the retry budget and the probe is dropped (quarantined
        as a probe failure).
        """
        rng = self._rng("probe", session_id, hostport)
        if rng.random() >= self.plan.rate:
            return 0
        failures = 1 + rng.randrange(self.plan.transient_max_failures)
        where = f"session:{session_id}/probe:{hostport}"
        if failures >= attempts:
            self._record(where, FaultKind.DROPPED_PROBE, ErrorCategory.PROBE_FAILURE)
        else:
            self._record(where, FaultKind.TRANSIENT_HANDSHAKE, None)
        return failures

    # -- notary-level faults -----------------------------------------------------

    def corrupt_leaf(
        self, where: str, certificate: Certificate
    ) -> CertificateUpload | None:
        """Maybe corrupt one Notary leaf observation; None = pristine."""
        rng = self._rng("leaf", where)
        if rng.random() >= self.plan.rate:
            return None
        claimed = fingerprint(certificate)
        payload, kind, expected = self._corrupt_der(
            certificate.encoded, rng.choice(self.plan.cert_kinds), rng, claimed
        )
        self._record(where, kind, expected)
        return CertificateUpload(payload=payload, claimed_fingerprint=claimed)

    # -- corruption primitives ---------------------------------------------------

    def _corrupt_der(
        self,
        der: bytes,
        kind: FaultKind,
        rng: random.Random,
        claimed_fingerprint: str | None,
    ) -> tuple[bytes | str, FaultKind, ErrorCategory]:
        """Apply a fault kind; self-check and fall back to truncation."""
        payload = self._apply_kind(der, kind, rng)
        expected = (
            None
            if payload is None
            else _probe_category(payload, claimed_fingerprint)
        )
        if expected is None:
            # Target field absent, or the mutation was accidentally
            # harmless: truncation always quarantines.
            kind = FaultKind.TRUNCATED_DER
            payload = _truncate(der, rng)
            expected = _probe_category(payload, claimed_fingerprint)
        assert payload is not None and expected is not None
        return payload, kind, expected

    def _apply_kind(
        self, der: bytes, kind: FaultKind, rng: random.Random
    ) -> bytes | str | None:
        if kind is FaultKind.TRUNCATED_DER:
            return _truncate(der, rng)
        if kind is FaultKind.GARBLED_DER:
            return _garble(der, rng)
        if kind is FaultKind.BROKEN_PEM:
            return _break_pem(der, rng)
        if kind is FaultKind.INVALID_STRING:
            return _poison_string(der)
        if kind is FaultKind.CLOCK_SKEW:
            return _skew_clock(der)
        raise ValueError(f"{kind} is not a certificate fault")


def _probe_category(
    payload: bytes | str, claimed_fingerprint: str | None
) -> ErrorCategory | None:
    """The category ingest will assign this payload (None = accepted)."""
    upload = CertificateUpload(
        payload=payload, claimed_fingerprint=claimed_fingerprint
    )
    try:
        resolve_certificate(upload)
    except ValueError as exc:
        return classify_error(exc)
    return None


def _truncate(der: bytes, rng: random.Random) -> bytes:
    """Cut the upload short — the outer length check always catches it."""
    return der[: rng.randrange(1, len(der))]


def _garble(der: bytes, rng: random.Random) -> bytes:
    """Flip a handful of random bytes."""
    mutated = bytearray(der)
    for _ in range(1 + rng.randrange(8)):
        position = rng.randrange(len(mutated))
        mutated[position] ^= 1 + rng.randrange(255)
    return bytes(mutated)


def _break_pem(der: bytes, rng: random.Random) -> str:
    """Armor the DER in PEM, then break the framing."""
    pem = pem_encode(der)
    variant = rng.randrange(4)
    if variant == 0:  # mangled END armor
        return pem.replace("-----END", "---END", 1)
    if variant == 1:  # truncated mid-body
        return pem[: len(pem) // 2]
    if variant == 2:  # non-base64 junk inside the body
        return pem.replace("\n", "\n!corrupt!\n", 1)
    # mismatched BEGIN/END labels
    return pem.replace("BEGIN CERTIFICATE", "BEGIN CERTIFICATE XXX", 1)


def _walk(obj: Asn1Object):
    yield obj
    if obj.tag.constructed:
        try:
            children = obj.children
        except Asn1Error:  # pragma: no cover - defensive
            return
        for child in children:
            yield from _walk(child)


def _poison_string(der: bytes) -> bytes | None:
    """Overwrite the first character-string byte with invalid 0xFF."""
    try:
        tree = decode(der)
    except Asn1Error:  # pragma: no cover - caller passes valid DER
        return None
    for obj in _walk(tree):
        if (
            obj.tag.tag_class is TagClass.UNIVERSAL
            and not obj.tag.constructed
            and obj.tag.number in _STRING_TAG_NUMBERS
            and obj.content
        ):
            start = der.find(obj.encoded)
            if start < 0:
                continue
            content_at = start + (len(obj.encoded) - len(obj.content))
            mutated = bytearray(der)
            mutated[content_at] = 0xFF  # invalid in UTF-8 and ASCII alike
            return bytes(mutated)
    return None


def _skew_clock(der: bytes) -> bytes | None:
    """Rewrite notBefore's year so the validity window is impossible."""
    try:
        tree = decode(der)
        tbs = tree[0]
    except (Asn1Error, IndexError):  # pragma: no cover - valid DER expected
        return None
    for obj in tbs:
        if not (obj.tag.tag_class is TagClass.UNIVERSAL and obj.tag.constructed):
            continue
        try:
            children = obj.children
        except Asn1Error:  # pragma: no cover - defensive
            continue
        if len(children) != 2 or not all(
            child.tag.tag_class is TagClass.UNIVERSAL
            and child.tag.number in _TIME_TAG_NUMBERS
            for child in children
        ):
            continue
        not_before = children[0]
        start = der.find(obj.encoded)
        if start < 0:  # pragma: no cover - encoded bytes come from der
            return None
        content_at = (
            start
            + (len(obj.encoded) - len(obj.content))
            + (len(not_before.encoded) - len(not_before.content))
        )
        mutated = bytearray(der)
        if not_before.tag.number == 23:  # UTCTime YYMMDD... → year 2049
            mutated[content_at : content_at + 2] = b"49"
        else:  # GeneralizedTime YYYYMMDD... → year 2999
            mutated[content_at : content_at + 4] = b"2999"
        return bytes(mutated)
    return None
