"""Quarantine: the structured dead-letter side of resilient ingestion.

Wild-corpus ingestion (§4.1's 15,970 sessions came from real handsets)
must never die on a bad byte. Every record that fails validation lands
here instead, tagged with an :class:`ErrorCategory`, the certificate
fingerprint when the record still parsed, and a bounded ``repr``
excerpt of the offending bytes — enough to triage without re-reading
the corpus. The quarantine report is rendered deterministically so a
seeded fault-injection run reproduces it byte for byte.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field, fields

from repro import obs

#: Longest excerpt of an offending payload kept in a quarantine record.
EXCERPT_BYTES = 48


class ErrorCategory(enum.Enum):
    """Why a record was quarantined instead of ingested."""

    TRUNCATED_DER = "truncated-der"
    MALFORMED_DER = "malformed-der"
    MALFORMED_PEM = "malformed-pem"
    INVALID_ENCODING = "invalid-encoding"
    INVALID_VALIDITY = "invalid-validity"
    FINGERPRINT_MISMATCH = "fingerprint-mismatch"
    DUPLICATE_SESSION = "duplicate-session"
    PROBE_FAILURE = "probe-failure"
    MALFORMED_RECORD = "malformed-record"
    CACHE_CORRUPTION = "cache-corruption"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class IngestError(ValueError):
    """Base class for validation failures on the resilient ingest path.

    ``certificate`` carries the parsed certificate when the record was
    structurally sound but failed a semantic check (validity window,
    fingerprint), so the quarantine can still record its fingerprint.
    """

    def __init__(self, message: str, certificate=None):
        super().__init__(message)
        self.certificate = certificate


class ValidityError(IngestError):
    """The certificate parsed but its validity window is impossible."""


class FingerprintMismatchError(IngestError):
    """The record's bytes do not hash to the fingerprint it claims."""


def classify_error(exc: BaseException) -> ErrorCategory:
    """Map a validation failure to its quarantine category.

    Walks the ``__cause__`` chain so a wrapped ``UnicodeDecodeError``
    (invalid UTF-8 inside a DER string) classifies by its root cause.
    """
    from repro.x509.pem import PemError

    seen: BaseException | None = exc
    while seen is not None:
        if isinstance(seen, UnicodeDecodeError):
            return ErrorCategory.INVALID_ENCODING
        seen = seen.__cause__
    if isinstance(exc, ValidityError):
        return ErrorCategory.INVALID_VALIDITY
    if isinstance(exc, FingerprintMismatchError):
        return ErrorCategory.FINGERPRINT_MISMATCH
    if isinstance(exc, PemError):
        return ErrorCategory.MALFORMED_PEM
    if "truncated" in str(exc):
        return ErrorCategory.TRUNCATED_DER
    if isinstance(exc, (KeyError, TypeError, IndexError)):
        return ErrorCategory.MALFORMED_RECORD
    return ErrorCategory.MALFORMED_DER


def excerpt(payload: object) -> str:
    """A bounded ``repr`` excerpt of an offending payload."""
    if isinstance(payload, (bytes, bytearray)):
        raw: object = bytes(payload[:EXCERPT_BYTES])
    elif isinstance(payload, str):
        raw = payload[:EXCERPT_BYTES]
    else:
        raw = payload
    text = repr(raw)
    return text[: EXCERPT_BYTES * 3]


@dataclass(frozen=True)
class QuarantineRecord:
    """One dead-lettered record."""

    category: ErrorCategory
    where: str  #: stable locator, e.g. ``session:12/root:3``
    detail: str  #: the validation error message
    fingerprint: str | None = None  #: cert fingerprint, if it parsed
    excerpt: str = ""  #: bounded repr of the offending bytes

    def to_dict(self) -> dict:
        """JSON-serializable form (round-tripped by the dataset codec)."""
        return {
            "category": self.category.value,
            "where": self.where,
            "detail": self.detail,
            "fingerprint": self.fingerprint,
            "excerpt": self.excerpt,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuarantineRecord":
        return cls(
            category=ErrorCategory(payload["category"]),
            where=payload["where"],
            detail=payload["detail"],
            fingerprint=payload.get("fingerprint"),
            excerpt=payload.get("excerpt", ""),
        )


@dataclass
class Quarantine:
    """The dead-letter list of one ingest run."""

    records: list[QuarantineRecord] = field(default_factory=list)

    def add(
        self,
        category: ErrorCategory,
        where: str,
        detail: str,
        *,
        fingerprint: str | None = None,
        payload: object = None,
    ) -> QuarantineRecord:
        """Dead-letter one record and return it."""
        record = QuarantineRecord(
            category=category,
            where=where,
            detail=detail[:300],
            fingerprint=fingerprint,
            excerpt=excerpt(payload) if payload is not None else "",
        )
        self.records.append(record)
        # Observability spine: per-category counters plus a bounded
        # trace event on whatever pipeline span is currently open.
        obs.counter_inc(f"faults.quarantine.{category.value}")
        obs.event("quarantine", category=category.value, where=where)
        return record

    def quarantine_error(
        self, exc: BaseException, where: str, *, payload: object = None
    ) -> QuarantineRecord:
        """Dead-letter a validation failure, classifying it."""
        certificate = getattr(exc, "certificate", None)
        digest = None
        if certificate is not None:
            from repro.x509.fingerprint import fingerprint as cert_fingerprint

            digest = cert_fingerprint(certificate)
        return self.add(
            classify_error(exc),
            where,
            str(exc),
            fingerprint=digest,
            payload=payload,
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def counts(self) -> Counter:
        """Record counts per category."""
        return Counter(record.category for record in self.records)

    def by_where(self) -> dict[str, QuarantineRecord]:
        """Records indexed by locator (first record wins per locator)."""
        out: dict[str, QuarantineRecord] = {}
        for record in self.records:
            out.setdefault(record.where, record)
        return out

    def extend(self, other: "Quarantine") -> None:
        """Append every record of another quarantine."""
        self.records.extend(other.records)

    def report(self) -> str:
        """Deterministic plain-text report (byte-identical per seed)."""
        lines = [f"quarantine: {len(self.records)} record(s)"]
        for category, count in sorted(
            self.counts().items(), key=lambda item: item[0].value
        ):
            lines.append(f"  {category.value:<22} {count:>5}")
        for record in self.records:
            fp = f" fp={record.fingerprint[:16]}" if record.fingerprint else ""
            lines.append(
                f"  [{record.category.value}] {record.where}: "
                f"{record.detail}{fp}"
            )
            if record.excerpt:
                lines.append(f"      excerpt: {record.excerpt}")
        return "\n".join(lines)


@dataclass
class IngestHealth:
    """Counters summarizing one resilient ingest run."""

    accepted_sessions: int = 0
    duplicate_sessions: int = 0
    degraded_sessions: int = 0
    accepted_certificates: int = 0
    quarantined_certificates: int = 0
    retried_probes: int = 0
    recovered_probes: int = 0
    dropped_probes: int = 0

    def merge(self, other: "IngestHealth") -> "IngestHealth":
        """Sum of two health counters (returns a new object)."""
        merged = IngestHealth()
        for spec in fields(IngestHealth):
            setattr(
                merged,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return merged

    def to_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(IngestHealth)}

    @classmethod
    def from_dict(cls, payload: dict) -> "IngestHealth":
        health = cls()
        for spec in fields(IngestHealth):
            setattr(health, spec.name, int(payload.get(spec.name, 0)))
        return health

    def render(self, quarantine: Quarantine | None = None) -> str:
        """Plain-text ingest-health summary."""
        lines = [
            f"  sessions accepted      {self.accepted_sessions:>7,}"
            f"  (degraded {self.degraded_sessions:,},"
            f" duplicates rejected {self.duplicate_sessions:,})",
            f"  root certs accepted    {self.accepted_certificates:>7,}"
            f"  (quarantined {self.quarantined_certificates:,})",
            f"  probe retries          {self.retried_probes:>7,}"
            f"  (recovered {self.recovered_probes:,},"
            f" dropped {self.dropped_probes:,})",
        ]
        if quarantine is not None and len(quarantine):
            lines.append(f"  quarantined records    {len(quarantine):>7,}")
            for category, count in sorted(
                quarantine.counts().items(), key=lambda item: item[0].value
            ):
                lines.append(f"    {category.value:<22} {count:>5,}")
        return "\n".join(lines)
