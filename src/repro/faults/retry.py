"""Bounded retry with deterministic exponential backoff.

Transient probe failures (a handset radio dropping mid-handshake) are
retried a bounded number of times. Backoff delays are a pure function
of the policy — no wall clock, no jitter from a global RNG — so a
seeded study run replays the exact same retry schedule. The simulator
never sleeps; it records the backoff it *would* have spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

T = TypeVar("T")


class RetryExhausted(Exception):
    """Every attempt failed; carries the last underlying error."""

    def __init__(self, attempts: int, last_error: BaseException):
        super().__init__(
            f"gave up after {attempts} attempt(s): {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to back off in between."""

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("a retry policy needs at least one attempt")

    def delays(self) -> tuple[float, ...]:
        """The deterministic backoff before each re-attempt."""
        return tuple(
            self.base_delay * self.multiplier**index
            for index in range(self.attempts - 1)
        )


@dataclass
class RetryOutcome:
    """What one retried call produced."""

    result: object
    attempts_used: int
    backoff_spent: float

    @property
    def recovered(self) -> bool:
        """True if the call only succeeded after at least one retry."""
        return self.attempts_used > 1


def retry_call(
    fn: Callable[[int], T],
    policy: RetryPolicy,
    *,
    retryable: tuple[type[BaseException], ...],
) -> RetryOutcome:
    """Call ``fn(attempt_index)`` until it succeeds or attempts run out.

    Only exceptions in ``retryable`` are retried; anything else
    propagates immediately. Raises :class:`RetryExhausted` when the
    final attempt also fails.
    """
    delays = policy.delays()
    backoff = 0.0
    last: BaseException | None = None
    for attempt in range(policy.attempts):
        try:
            return RetryOutcome(
                result=fn(attempt), attempts_used=attempt + 1, backoff_spent=backoff
            )
        except retryable as exc:
            last = exc
            if attempt < len(delays):
                backoff += delays[attempt]
    assert last is not None
    raise RetryExhausted(policy.attempts, last)
