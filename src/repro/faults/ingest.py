"""Validating certificate ingestion: wire payload → Certificate or quarantine.

A :class:`CertificateUpload` is what a flaky client actually sends: a
parsed certificate on the happy path, or raw DER/PEM bytes off the
wire, optionally accompanied by the fingerprint the uploader computed
before transmission. :func:`resolve_certificate` turns an upload back
into a certificate, raising the typed errors
(:mod:`repro.faults.quarantine`) that the resilient ingest paths map to
quarantine categories; :func:`ingest_certificate` is the never-raising
wrapper those paths call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.faults.quarantine import (
    FingerprintMismatchError,
    Quarantine,
    ValidityError,
)
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import fingerprint
from repro.x509.pem import pem_decode


@dataclass(frozen=True)
class CertificateUpload:
    """One certificate as uploaded: parsed, or raw DER bytes, or PEM text.

    ``claimed_fingerprint`` is the digest the uploading client computed
    on-device; transport corruption changes the bytes but not the claim,
    which is exactly what lets ingest detect garbling that still parses.
    """

    payload: Certificate | bytes | str
    claimed_fingerprint: str | None = None

    @classmethod
    def of(cls, certificate: Certificate) -> "CertificateUpload":
        """The pristine upload for an already-parsed certificate."""
        return cls(payload=certificate, claimed_fingerprint=fingerprint(certificate))

    @property
    def raw(self) -> object:
        """The payload in its most excerpt-friendly form."""
        if isinstance(self.payload, Certificate):
            return self.payload.encoded
        return self.payload


def resolve_certificate(upload: CertificateUpload) -> Certificate:
    """Parse and validate one upload; raise a classifiable error on failure.

    Check order is structural → semantic → integrity: unparseable bytes
    raise PEM/DER errors, an impossible validity window raises
    :class:`ValidityError`, and only then is the claimed fingerprint
    compared (so a clock-skewed certificate classifies by its actual
    defect, not the byte change that caused it).
    """
    payload = upload.payload
    if isinstance(payload, Certificate):
        certificate = payload
    else:
        if isinstance(payload, str):
            payload = pem_decode(payload)  # PemError propagates
        certificate = Certificate.from_der(payload)
    if certificate.not_before > certificate.not_after:
        raise ValidityError(
            f"impossible validity window: notBefore {certificate.not_before:%Y-%m-%d}"
            f" after notAfter {certificate.not_after:%Y-%m-%d}",
            certificate=certificate,
        )
    if (
        upload.claimed_fingerprint is not None
        and fingerprint(certificate) != upload.claimed_fingerprint
    ):
        raise FingerprintMismatchError(
            f"fingerprint mismatch: claimed {upload.claimed_fingerprint[:16]}…,"
            f" actual {fingerprint(certificate)[:16]}…",
            certificate=certificate,
        )
    return certificate


def ingest_certificate(
    upload: CertificateUpload, quarantine: Quarantine, where: str
) -> Certificate | None:
    """Resolve an upload; dead-letter it on any validation failure.

    Never raises: this is the contract the whole resilient pipeline is
    built on.
    """
    try:
        certificate = resolve_certificate(upload)
    except ValueError as exc:
        quarantine.quarantine_error(exc, where, payload=upload.raw)
        obs.counter_inc("faults.ingest.rejected")
        return None
    obs.counter_inc("faults.ingest.accepted")
    return certificate
