"""X.509 Certificate Revocation Lists (RFC 5280 §5).

Android (and the paper's validation model) performs no revocation
checking — one of the systemic gaps behind §8's recommendations. The
library implements CRLs so the gap can be *measured*: the chain
verifier accepts an optional revocation source, and the audit module
reports what a revocation-aware client would have rejected.

Only the profile needed here is implemented: full (non-delta) CRLs,
RSA-signed, with optional reason codes.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

from repro.asn1 import (
    Asn1Error,
    decode,
    encode_bit_string,
    encode_integer,
    encode_null,
    encode_oid,
    encode_sequence,
)
from repro.asn1.encoder import encode_x509_time
from repro.asn1.objects import HASH_SIGNATURE_OIDS, SIGNATURE_HASHES
from repro.asn1.tags import UniversalTag
from repro.crypto.pkcs1 import SignatureError, sign as pkcs1_sign, verify as pkcs1_verify
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.x509.certificate import Certificate
from repro.x509.name import Name


class RevocationReason(enum.Enum):
    """CRLReason codes (RFC 5280 §5.3.1), the subset in common use."""

    UNSPECIFIED = 0
    KEY_COMPROMISE = 1
    CA_COMPROMISE = 2
    SUPERSEDED = 4
    CESSATION_OF_OPERATION = 5


@dataclass(frozen=True)
class RevokedEntry:
    """One revoked certificate: serial, date, reason."""

    serial_number: int
    revocation_date: datetime.datetime
    reason: RevocationReason = RevocationReason.UNSPECIFIED


class CrlError(ValueError):
    """Raised on malformed CRL DER."""


class CertificateRevocationList:
    """A parsed (or freshly built) CRL."""

    def __init__(
        self,
        *,
        issuer: Name,
        this_update: datetime.datetime,
        next_update: datetime.datetime,
        entries: tuple[RevokedEntry, ...],
        signature_hash: str,
        signature: bytes,
        tbs_encoded: bytes,
        encoded: bytes,
    ):
        self.issuer = issuer
        self.this_update = this_update
        self.next_update = next_update
        self.entries = entries
        self.signature_hash = signature_hash
        self.signature = signature
        self.tbs_encoded = tbs_encoded
        self.encoded = encoded
        self._serials = {entry.serial_number: entry for entry in entries}

    # -- queries -----------------------------------------------------------------

    def is_revoked(self, certificate: Certificate) -> bool:
        """True if the certificate's serial appears on this CRL and the
        CRL was issued by the certificate's issuer."""
        if certificate.issuer != self.issuer:
            return False
        return certificate.serial_number in self._serials

    def entry_for(self, certificate: Certificate) -> RevokedEntry | None:
        """The revocation entry for a certificate, if any."""
        if certificate.issuer != self.issuer:
            return None
        return self._serials.get(certificate.serial_number)

    def is_stale(self, at: datetime.datetime) -> bool:
        """True if the CRL is past its nextUpdate."""
        return at > self.next_update

    def verify_signature(self, issuer_key: RsaPublicKey) -> None:
        """Verify the CRL signature; raises SignatureError on failure."""
        pkcs1_verify(issuer_key, self.signature_hash, self.tbs_encoded, self.signature)

    def __len__(self) -> int:
        return len(self.entries)

    # -- parsing -----------------------------------------------------------------

    @classmethod
    def from_der(cls, data: bytes) -> "CertificateRevocationList":
        """Parse a DER CertificateList."""
        try:
            outer = decode(data)
            tbs, sig_alg, sig_value = outer.children
            algorithm = sig_alg[0].as_oid()
            if algorithm not in SIGNATURE_HASHES:
                raise CrlError(f"unsupported CRL signature algorithm {algorithm}")
            signature, unused = sig_value.as_bit_string()
            if unused:
                raise CrlError("CRL signature has unused bits")
            fields = list(tbs.children)
            index = 0
            if fields[index].tag.is_universal(UniversalTag.INTEGER):
                version = fields[index].as_integer()
                if version != 1:  # v2 encodes as INTEGER 1
                    raise CrlError(f"unsupported CRL version {version + 1}")
                index += 1
            index += 1  # inner signature algorithm
            issuer = Name.from_asn1(fields[index])
            index += 1
            this_update = fields[index].as_time()
            index += 1
            next_update = fields[index].as_time()
            index += 1
            entries: list[RevokedEntry] = []
            if index < len(fields) and fields[index].tag.constructed and not fields[
                index
            ].tag.is_context(0):
                for revoked in fields[index]:
                    serial = revoked[0].as_integer()
                    date = revoked[1].as_time()
                    # Reason codes live in crlEntryExtensions, which this
                    # minimal profile does not serialize; parsed entries
                    # carry UNSPECIFIED.
                    entries.append(RevokedEntry(serial, date))
            return cls(
                issuer=issuer,
                this_update=this_update,
                next_update=next_update,
                entries=tuple(entries),
                signature_hash=SIGNATURE_HASHES[algorithm],
                signature=signature,
                tbs_encoded=tbs.encoded,
                encoded=bytes(data),
            )
        except (Asn1Error, ValueError, IndexError) as exc:
            if isinstance(exc, CrlError):
                raise
            raise CrlError(f"malformed CRL: {exc}") from exc


class CrlBuilder:
    """Builds signed CRLs for a CA."""

    def __init__(self, issuer: Name, *, hash_name: str = "sha256"):
        if hash_name not in HASH_SIGNATURE_OIDS:
            raise ValueError(f"unsupported hash {hash_name!r}")
        self.issuer = issuer
        self.hash_name = hash_name
        self._entries: list[RevokedEntry] = []

    def revoke(
        self,
        certificate_or_serial: Certificate | int,
        *,
        at: datetime.datetime,
        reason: RevocationReason = RevocationReason.UNSPECIFIED,
    ) -> "CrlBuilder":
        """Add a revocation entry."""
        serial = (
            certificate_or_serial.serial_number
            if isinstance(certificate_or_serial, Certificate)
            else certificate_or_serial
        )
        self._entries.append(RevokedEntry(serial, at, reason))
        return self

    def sign(
        self,
        key: RsaPrivateKey,
        *,
        this_update: datetime.datetime,
        next_update: datetime.datetime,
    ) -> CertificateRevocationList:
        """Sign and return the CRL."""
        if next_update <= this_update:
            raise ValueError("nextUpdate must follow thisUpdate")
        algorithm = encode_sequence(
            [encode_oid(HASH_SIGNATURE_OIDS[self.hash_name]), encode_null()]
        )
        revoked = [
            encode_sequence(
                [
                    encode_integer(entry.serial_number),
                    encode_x509_time(entry.revocation_date),
                ]
            )
            for entry in self._entries
        ]
        parts = [
            encode_integer(1),  # v2
            algorithm,
            self.issuer.to_der(),
            encode_x509_time(this_update),
            encode_x509_time(next_update),
        ]
        if revoked:
            parts.append(encode_sequence(revoked))
        tbs = encode_sequence(parts)
        signature = pkcs1_sign(key, self.hash_name, tbs)
        encoded = encode_sequence([tbs, algorithm, encode_bit_string(signature)])
        return CertificateRevocationList.from_der(encoded)


class RevocationChecker:
    """A client-side revocation source: a bag of verified CRLs.

    ``add_crl`` verifies the CRL signature against the issuing CA's
    certificate before trusting it.
    """

    def __init__(self, at: datetime.datetime | None = None):
        self.at = at
        self._crls: dict[object, CertificateRevocationList] = {}

    def add_crl(
        self, crl: CertificateRevocationList, issuer_certificate: Certificate
    ) -> None:
        """Admit a CRL after verifying its signature and issuer name."""
        if crl.issuer != issuer_certificate.subject:
            raise CrlError("CRL issuer does not match certificate subject")
        crl.verify_signature(issuer_certificate.public_key)
        self._crls[crl.issuer.normalized()] = crl

    def status(self, certificate: Certificate) -> str:
        """``"revoked"``, ``"good"`` or ``"unknown"`` (no CRL on hand)."""
        crl = self._crls.get(certificate.issuer.normalized())
        if crl is None:
            return "unknown"
        if self.at is not None and crl.is_stale(self.at):
            return "unknown"
        return "revoked" if crl.is_revoked(certificate) else "good"

    def is_revoked(self, certificate: Certificate) -> bool:
        """True only on a definite revoked verdict."""
        return self.status(certificate) == "revoked"
