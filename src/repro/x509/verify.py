"""Single-certificate signature verification."""

from __future__ import annotations

from repro.crypto.pkcs1 import SignatureError, verify as pkcs1_verify
from repro.crypto.rsa import RsaPublicKey
from repro.x509.certificate import Certificate


def verify_certificate_signature(
    certificate: Certificate, issuer_public_key: RsaPublicKey
) -> None:
    """Verify *certificate*'s signature against an issuer public key.

    Raises :class:`repro.crypto.pkcs1.SignatureError` on failure. The
    verification runs over the certificate's original TBS bytes, so a
    single flipped bit anywhere in the signed fields fails.
    """
    pkcs1_verify(
        issuer_public_key,
        certificate.signature_hash,
        certificate.tbs_encoded,
        certificate.signature,
    )


def is_signed_by(certificate: Certificate, issuer: Certificate) -> bool:
    """True if *issuer*'s key verifies *certificate*'s signature.

    Checks the name chain first (cheap) before the RSA operation.
    """
    if certificate.issuer != issuer.subject:
        return False
    try:
        verify_certificate_signature(certificate, issuer.public_key)
    except SignatureError:
        return False
    return True
