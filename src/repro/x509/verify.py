"""Single-certificate signature verification.

Two entry points exist:

* :func:`verify_certificate_signature` — the raising, *uncached*
  primitive; every verification runs the full PKCS#1 check.
* :func:`verify_signature` — the boolean fast path, memoized through a
  :class:`repro.crypto.cache.VerificationCache` (the process-wide one
  by default). The chain verifier and the Notary's validation queries
  go through this.
"""

from __future__ import annotations

from repro.crypto.cache import VerificationCache, default_verification_cache
from repro.crypto.pkcs1 import SignatureError, verify as pkcs1_verify
from repro.crypto.rsa import RsaPublicKey
from repro.x509.certificate import Certificate


def verify_certificate_signature(
    certificate: Certificate, issuer_public_key: RsaPublicKey
) -> None:
    """Verify *certificate*'s signature against an issuer public key.

    Raises :class:`repro.crypto.pkcs1.SignatureError` on failure. The
    verification runs over the certificate's original TBS bytes, so a
    single flipped bit anywhere in the signed fields fails.
    """
    pkcs1_verify(
        issuer_public_key,
        certificate.signature_hash,
        certificate.tbs_encoded,
        certificate.signature,
    )


def verify_signature(
    certificate: Certificate,
    issuer_public_key: RsaPublicKey,
    *,
    cache: VerificationCache | None = None,
) -> bool:
    """Memoized boolean form of :func:`verify_certificate_signature`.

    Uses the process-wide verification cache unless an explicit one is
    passed; with the fast path disabled the cache degrades to the raw
    check, so callers need no mode awareness.
    """
    if cache is None:
        cache = default_verification_cache()
    return cache.verify(certificate, issuer_public_key)


def is_signed_by(
    certificate: Certificate,
    issuer: Certificate,
    *,
    cache: VerificationCache | None = None,
) -> bool:
    """True if *issuer*'s key verifies *certificate*'s signature.

    Checks the name chain first (cheap) before the RSA operation.
    """
    if certificate.issuer != issuer.subject:
        return False
    return verify_signature(certificate, issuer.public_key, cache=cache)
