"""X.509 certificate layer built on the DER and RSA substrates.

Provides the distinguished-name model, certificate parsing and building,
PEM armor, signature verification, chain building/validation, and the
certificate-identity functions the paper's methodology relies on
(RSA-modulus + signature identity, fingerprints, subject hashes).
"""

from repro.x509.name import Name, NameAttribute, RelativeDistinguishedName
from repro.x509.extensions import (
    AuthorityKeyIdentifier,
    BasicConstraints,
    ExtendedKeyUsage,
    Extension,
    KeyUsage,
    SubjectAlternativeName,
    SubjectKeyIdentifier,
)
from repro.x509.certificate import Certificate, CertificateError
from repro.x509.builder import CertificateBuilder
from repro.x509.pem import PemError, pem_decode, pem_decode_all, pem_encode
from repro.x509.verify import verify_certificate_signature
from repro.x509.chain import (
    ChainValidationError,
    ChainVerifier,
    ValidationResult,
    build_chain,
)
from repro.x509.fingerprint import (
    CertificateIdentity,
    fingerprint,
    identity_key,
    subject_hash,
)
from repro.x509.crl import (
    CertificateRevocationList,
    CrlBuilder,
    CrlError,
    RevocationChecker,
    RevocationReason,
)
from repro.x509.constraints import NameConstraints, name_constraints_of
from repro.x509.blacklist import CertificateBlacklist, GooglePinEnforcer

__all__ = [
    "Name",
    "NameAttribute",
    "RelativeDistinguishedName",
    "Extension",
    "BasicConstraints",
    "KeyUsage",
    "ExtendedKeyUsage",
    "SubjectAlternativeName",
    "SubjectKeyIdentifier",
    "AuthorityKeyIdentifier",
    "Certificate",
    "CertificateError",
    "CertificateBuilder",
    "PemError",
    "pem_encode",
    "pem_decode",
    "pem_decode_all",
    "verify_certificate_signature",
    "ChainValidationError",
    "ChainVerifier",
    "ValidationResult",
    "build_chain",
    "CertificateIdentity",
    "identity_key",
    "fingerprint",
    "subject_hash",
    "CertificateRevocationList",
    "CrlBuilder",
    "CrlError",
    "RevocationChecker",
    "RevocationReason",
    "NameConstraints",
    "name_constraints_of",
    "CertificateBlacklist",
    "GooglePinEnforcer",
]
