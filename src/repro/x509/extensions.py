"""The RFC 5280 certificate extensions the library profiles.

Each extension type knows how to encode its extnValue payload and how to
decode itself from a parsed extension TLV. Unknown extensions survive
round-trips as opaque :class:`Extension` instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asn1 import (
    Asn1Object,
    ObjectIdentifier,
    decode,
    encode_bit_string,
    encode_boolean,
    encode_implicit,
    encode_integer,
    encode_octet_string,
    encode_oid,
    encode_sequence,
)
from repro.asn1 import encode_ia5_string
from repro.asn1.objects import (
    AUTHORITY_KEY_IDENTIFIER,
    BASIC_CONSTRAINTS,
    EKU_NAMES,
    EXTENDED_KEY_USAGE,
    KEY_USAGE,
    SUBJECT_ALT_NAME,
    SUBJECT_KEY_IDENTIFIER,
)
from repro.asn1.tags import TagClass, UniversalTag


@dataclass(frozen=True)
class Extension:
    """A raw extension: OID, criticality and DER-encoded extnValue."""

    oid: ObjectIdentifier
    critical: bool
    value: bytes

    def to_der(self) -> bytes:
        """Encode as the RFC 5280 Extension SEQUENCE."""
        parts = [encode_oid(self.oid)]
        if self.critical:
            parts.append(encode_boolean(True))
        parts.append(encode_octet_string(self.value))
        return encode_sequence(parts)

    @classmethod
    def from_asn1(cls, obj: Asn1Object) -> "Extension":
        """Decode an Extension TLV."""
        children = obj.children
        if not 2 <= len(children) <= 3:
            raise ValueError("Extension must have 2 or 3 components")
        oid = children[0].as_oid()
        critical = False
        value_index = 1
        if len(children) == 3:
            critical = children[1].as_boolean()
            value_index = 2
        return cls(oid=oid, critical=critical, value=children[value_index].as_octet_string())


@dataclass(frozen=True)
class BasicConstraints:
    """basicConstraints: CA flag and optional path-length limit."""

    ca: bool = False
    path_length: int | None = None

    OID = BASIC_CONSTRAINTS

    def to_extension(self, critical: bool = True) -> Extension:
        """Wrap in an :class:`Extension` (critical by default, as for CAs)."""
        parts = []
        if self.ca:
            parts.append(encode_boolean(True))
            if self.path_length is not None:
                parts.append(encode_integer(self.path_length))
        return Extension(self.OID, critical, encode_sequence(parts))

    @classmethod
    def from_extension(cls, extension: Extension) -> "BasicConstraints":
        """Parse from the raw extension payload."""
        seq = decode(extension.value)
        ca = False
        path_length = None
        children = seq.children
        index = 0
        if index < len(children) and children[index].tag.is_universal(UniversalTag.BOOLEAN):
            ca = children[index].as_boolean()
            index += 1
        if index < len(children):
            path_length = children[index].as_integer()
        return cls(ca=ca, path_length=path_length)


#: KeyUsage bit positions per RFC 5280.
_KEY_USAGE_BITS = (
    "digital_signature",
    "content_commitment",
    "key_encipherment",
    "data_encipherment",
    "key_agreement",
    "key_cert_sign",
    "crl_sign",
    "encipher_only",
    "decipher_only",
)


@dataclass(frozen=True)
class KeyUsage:
    """keyUsage bit flags."""

    digital_signature: bool = False
    content_commitment: bool = False
    key_encipherment: bool = False
    data_encipherment: bool = False
    key_agreement: bool = False
    key_cert_sign: bool = False
    crl_sign: bool = False
    encipher_only: bool = False
    decipher_only: bool = False

    OID = KEY_USAGE

    def to_extension(self, critical: bool = True) -> Extension:
        """Encode as a BIT STRING extension."""
        bits = [getattr(self, name) for name in _KEY_USAGE_BITS]
        while bits and not bits[-1]:
            bits.pop()
        if not bits:
            payload = encode_bit_string(b"", 0)
        else:
            byte_count = (len(bits) + 7) // 8
            raw = bytearray(byte_count)
            for position, bit in enumerate(bits):
                if bit:
                    raw[position // 8] |= 0x80 >> (position % 8)
            unused = byte_count * 8 - len(bits)
            payload = encode_bit_string(bytes(raw), unused)
        return Extension(self.OID, critical, payload)

    @classmethod
    def from_extension(cls, extension: Extension) -> "KeyUsage":
        """Parse from the raw extension payload."""
        data, unused = decode(extension.value).as_bit_string()
        total_bits = len(data) * 8 - unused
        flags = {}
        for position, name in enumerate(_KEY_USAGE_BITS):
            if position < total_bits:
                flags[name] = bool(data[position // 8] & (0x80 >> (position % 8)))
        return cls(**flags)

    @classmethod
    def for_ca(cls) -> "KeyUsage":
        """The conventional CA usage set (certSign + crlSign)."""
        return cls(key_cert_sign=True, crl_sign=True)

    @classmethod
    def for_tls_server(cls) -> "KeyUsage":
        """The conventional TLS server usage set."""
        return cls(digital_signature=True, key_encipherment=True)


@dataclass(frozen=True)
class ExtendedKeyUsage:
    """extKeyUsage: a list of purpose OIDs."""

    purposes: tuple[ObjectIdentifier, ...]

    OID = EXTENDED_KEY_USAGE

    def to_extension(self, critical: bool = False) -> Extension:
        """Encode as a SEQUENCE OF OID extension."""
        return Extension(
            self.OID, critical, encode_sequence(encode_oid(p) for p in self.purposes)
        )

    @classmethod
    def from_extension(cls, extension: Extension) -> "ExtendedKeyUsage":
        """Parse from the raw extension payload."""
        return cls(tuple(child.as_oid() for child in decode(extension.value)))

    @property
    def purpose_names(self) -> tuple[str, ...]:
        """Human-readable purpose names (dotted OID for unknown ones)."""
        return tuple(EKU_NAMES.get(p, p.dotted) for p in self.purposes)


@dataclass(frozen=True)
class SubjectAlternativeName:
    """subjectAltName restricted to dNSName entries (all TLS needs here)."""

    dns_names: tuple[str, ...]

    OID = SUBJECT_ALT_NAME

    def to_extension(self, critical: bool = False) -> Extension:
        """Encode as a GeneralNames SEQUENCE of dNSName [2] entries."""
        names = [encode_implicit(2, encode_ia5_string(n)) for n in self.dns_names]
        return Extension(self.OID, critical, encode_sequence(names))

    @classmethod
    def from_extension(cls, extension: Extension) -> "SubjectAlternativeName":
        """Parse dNSName entries, ignoring other GeneralName forms."""
        names = []
        for child in decode(extension.value):
            if child.tag.tag_class is TagClass.CONTEXT and child.tag.number == 2:
                names.append(child.content.decode("ascii"))
        return cls(tuple(names))


@dataclass(frozen=True)
class SubjectKeyIdentifier:
    """subjectKeyIdentifier: an octet string key id."""

    key_id: bytes

    OID = SUBJECT_KEY_IDENTIFIER

    def to_extension(self, critical: bool = False) -> Extension:
        """Encode as an OCTET STRING extension."""
        return Extension(self.OID, critical, encode_octet_string(self.key_id))

    @classmethod
    def from_extension(cls, extension: Extension) -> "SubjectKeyIdentifier":
        """Parse from the raw extension payload."""
        return cls(decode(extension.value).as_octet_string())


@dataclass(frozen=True)
class AuthorityKeyIdentifier:
    """authorityKeyIdentifier restricted to the keyIdentifier [0] form."""

    key_id: bytes

    OID = AUTHORITY_KEY_IDENTIFIER

    def to_extension(self, critical: bool = False) -> Extension:
        """Encode as SEQUENCE { [0] keyIdentifier }."""
        payload = encode_sequence([encode_implicit(0, encode_octet_string(self.key_id))])
        return Extension(self.OID, critical, payload)

    @classmethod
    def from_extension(cls, extension: Extension) -> "AuthorityKeyIdentifier":
        """Parse the keyIdentifier component."""
        for child in decode(extension.value):
            if child.tag.tag_class is TagClass.CONTEXT and child.tag.number == 0:
                return cls(child.content)
        raise ValueError("authorityKeyIdentifier without keyIdentifier")
