"""The Certificate object: DER parsing and typed accessors.

Certificates are immutable. The parsed object keeps the exact encoded
bytes of both the whole certificate and the TBSCertificate, so signature
verification operates on the original octets rather than a re-encoding.
"""

from __future__ import annotations

import datetime
import hashlib
from functools import cached_property

from repro.asn1 import Asn1Error, Asn1Object, ObjectIdentifier, decode
from repro.asn1.objects import (
    BASIC_CONSTRAINTS,
    EXTENDED_KEY_USAGE,
    KEY_USAGE,
    RSA_ENCRYPTION,
    SIGNATURE_HASHES,
    SUBJECT_ALT_NAME,
)
from repro.asn1.tags import UniversalTag
from repro.crypto.rsa import RsaPublicKey
from repro.x509.extensions import (
    BasicConstraints,
    ExtendedKeyUsage,
    Extension,
    KeyUsage,
    SubjectAlternativeName,
)
from repro.x509.name import Name


class CertificateError(ValueError):
    """Raised when certificate DER is structurally invalid."""


class Certificate:
    """A parsed X.509 v1/v3 certificate.

    Use :meth:`from_der` (or the builder in
    :mod:`repro.x509.builder`) to obtain instances. Equality and
    hashing are byte-exact over the DER encoding; for the paper's
    looser "same modulus + signature" equivalence see
    :mod:`repro.x509.fingerprint`.
    """

    __slots__ = (
        "encoded",
        "tbs_encoded",
        "version",
        "serial_number",
        "signature_algorithm",
        "issuer",
        "subject",
        "not_before",
        "not_after",
        "public_key",
        "extensions",
        "signature",
        "__dict__",
    )

    def __init__(
        self,
        *,
        encoded: bytes,
        tbs_encoded: bytes,
        version: int,
        serial_number: int,
        signature_algorithm: ObjectIdentifier,
        issuer: Name,
        subject: Name,
        not_before: datetime.datetime,
        not_after: datetime.datetime,
        public_key: RsaPublicKey,
        extensions: tuple[Extension, ...],
        signature: bytes,
    ):
        self.encoded = encoded
        self.tbs_encoded = tbs_encoded
        self.version = version
        self.serial_number = serial_number
        self.signature_algorithm = signature_algorithm
        self.issuer = issuer
        self.subject = subject
        self.not_before = not_before
        self.not_after = not_after
        self.public_key = public_key
        self.extensions = extensions
        self.signature = signature

    # -- parsing --------------------------------------------------------------

    @classmethod
    def from_der(cls, data: bytes) -> "Certificate":
        """Parse a DER-encoded certificate, validating its structure."""
        try:
            outer = decode(data)
        except Asn1Error as exc:
            raise CertificateError(f"not valid DER: {exc}") from exc
        try:
            return cls._from_asn1(outer, bytes(data))
        except (Asn1Error, ValueError, IndexError) as exc:
            if isinstance(exc, CertificateError):
                raise
            raise CertificateError(f"malformed certificate: {exc}") from exc

    @classmethod
    def _from_asn1(cls, outer: Asn1Object, encoded: bytes) -> "Certificate":
        if not outer.tag.is_universal(UniversalTag.SEQUENCE):
            raise CertificateError("certificate must be a SEQUENCE")
        if len(outer) != 3:
            raise CertificateError(
                f"certificate must have 3 components, found {len(outer)}"
            )
        tbs, sig_alg, sig_value = outer.children

        # signatureAlgorithm
        signature_algorithm = sig_alg[0].as_oid()
        if signature_algorithm not in SIGNATURE_HASHES:
            raise CertificateError(
                f"unsupported signature algorithm {signature_algorithm}"
            )
        signature, unused = sig_value.as_bit_string()
        if unused:
            raise CertificateError("signature BIT STRING has unused bits")

        # TBSCertificate
        fields = list(tbs.children)
        index = 0
        version = 1
        if fields and fields[0].tag.is_context(0):
            version = fields[0].explicit_inner().as_integer() + 1
            if version not in (1, 2, 3):
                raise CertificateError(f"invalid certificate version {version}")
            index += 1
        serial_number = fields[index].as_integer()
        index += 1
        tbs_sig_alg = fields[index][0].as_oid()
        if tbs_sig_alg != signature_algorithm:
            raise CertificateError(
                "TBS signature algorithm does not match outer algorithm"
            )
        index += 1
        issuer = Name.from_asn1(fields[index])
        index += 1
        validity = fields[index]
        not_before = validity[0].as_time()
        not_after = validity[1].as_time()
        index += 1
        subject = Name.from_asn1(fields[index])
        index += 1
        public_key = cls._parse_spki(fields[index])
        index += 1

        extensions: tuple[Extension, ...] = ()
        for extra in fields[index:]:
            if extra.tag.is_context(3):
                ext_seq = extra.explicit_inner()
                extensions = tuple(Extension.from_asn1(child) for child in ext_seq)
        if extensions and version != 3:
            raise CertificateError("extensions require a v3 certificate")

        return cls(
            encoded=encoded,
            tbs_encoded=tbs.encoded,
            version=version,
            serial_number=serial_number,
            signature_algorithm=signature_algorithm,
            issuer=issuer,
            subject=subject,
            not_before=not_before,
            not_after=not_after,
            public_key=public_key,
            extensions=extensions,
            signature=signature,
        )

    @staticmethod
    def _parse_spki(spki: Asn1Object) -> RsaPublicKey:
        """Parse a SubjectPublicKeyInfo holding an RSA key."""
        algorithm = spki[0][0].as_oid()
        if algorithm != RSA_ENCRYPTION:
            raise CertificateError(f"unsupported public-key algorithm {algorithm}")
        key_bits, unused = spki[1].as_bit_string()
        if unused:
            raise CertificateError("SPKI BIT STRING has unused bits")
        return RsaPublicKey.from_der(key_bits)

    # -- accessors ---------------------------------------------------------------

    @property
    def signature_hash(self) -> str:
        """The hash algorithm name of the signature (e.g. ``"sha256"``)."""
        return SIGNATURE_HASHES[self.signature_algorithm]

    @property
    def is_self_signed(self) -> bool:
        """True if issuer and subject names match (self-issued)."""
        return self.issuer == self.subject

    @cached_property
    def tbs_sha256(self) -> bytes:
        """SHA-256 of the TBSCertificate octets.

        This is the certificate half of the verification-cache key
        (:class:`repro.crypto.cache.VerificationCache`): the TBS bytes
        commit to every signed field *including* the signature
        algorithm, so the digest plus the signature octets pin the
        verification outcome completely.
        """
        return hashlib.sha256(self.tbs_encoded).digest()

    def is_expired(self, at: datetime.datetime) -> bool:
        """True if the certificate has expired at the given moment."""
        return at > self.not_after

    def is_valid_at(self, at: datetime.datetime) -> bool:
        """True if the moment falls within the validity window."""
        return self.not_before <= at <= self.not_after

    def extension(self, oid: ObjectIdentifier) -> Extension | None:
        """The raw extension with the given OID, if present."""
        for ext in self.extensions:
            if ext.oid == oid:
                return ext
        return None

    @cached_property
    def basic_constraints(self) -> BasicConstraints | None:
        """Parsed basicConstraints, if present."""
        ext = self.extension(BASIC_CONSTRAINTS)
        return BasicConstraints.from_extension(ext) if ext else None

    @cached_property
    def key_usage(self) -> KeyUsage | None:
        """Parsed keyUsage, if present."""
        ext = self.extension(KEY_USAGE)
        return KeyUsage.from_extension(ext) if ext else None

    @cached_property
    def extended_key_usage(self) -> ExtendedKeyUsage | None:
        """Parsed extKeyUsage, if present."""
        ext = self.extension(EXTENDED_KEY_USAGE)
        return ExtendedKeyUsage.from_extension(ext) if ext else None

    @cached_property
    def subject_alternative_names(self) -> tuple[str, ...]:
        """dNSName entries of subjectAltName (empty if absent)."""
        ext = self.extension(SUBJECT_ALT_NAME)
        if ext is None:
            return ()
        return SubjectAlternativeName.from_extension(ext).dns_names

    @property
    def is_ca(self) -> bool:
        """True if basicConstraints marks this certificate as a CA.

        v1 self-signed certificates (common among old roots) are treated
        as CAs, matching how real root stores handle legacy roots.
        """
        constraints = self.basic_constraints
        if constraints is not None:
            return constraints.ca
        return self.version == 1 and self.is_self_signed

    def matches_hostname(self, hostname: str) -> bool:
        """RFC 6125-style host matching over SAN (fallback: subject CN)."""
        hostname = hostname.lower().rstrip(".")
        patterns = self.subject_alternative_names or (
            (self.subject.common_name,) if self.subject.common_name else ()
        )
        return any(_match_pattern(p.lower(), hostname) for p in patterns if p)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Certificate):
            return self.encoded == other.encoded
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.encoded)

    def __repr__(self) -> str:
        return f"<Certificate subject={self.subject} serial={self.serial_number}>"


def _match_pattern(pattern: str, hostname: str) -> bool:
    """Match a single (possibly left-wildcard) DNS pattern."""
    if pattern.startswith("*."):
        suffix = pattern[1:]
        if not hostname.endswith(suffix):
            return False
        prefix = hostname[: -len(suffix)]
        return bool(prefix) and "." not in prefix
    return pattern == hostname
