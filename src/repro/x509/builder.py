"""Fluent builder producing signed DER certificates.

The builder covers the three shapes the simulation needs: self-signed
roots, intermediate CAs, and TLS leaf certificates. The output is real
DER signed with real (toy-sized) RSA, so everything downstream — parsing,
chain validation, store diffing — runs on genuine X.509 objects.

Building is on the study's hot path (tens of thousands of leaves per
universe), so when the crypto fast lane is on the invariant encodings —
algorithm identifiers, SPKI blocks, key identifiers, validity times,
extension TLVs — are memoized, and the final :class:`Certificate` is
constructed directly from the builder's own fields instead of
re-parsing the DER it just wrote. The direct construction is
attribute-exact with parsing (every encoder used here is the exact
inverse of the corresponding parser; a regression test compares the two
field by field), and the builder falls back to the parse path for
inputs the encoding normalizes (sub-second or timezone-aware
datetimes). With :func:`repro.crypto.fastlane.fastlane_disabled` every
encoding is computed from scratch and the DER is re-parsed, restoring
the pre-fast-lane engine for honest benchmarking; both paths emit the
same bytes.
"""

from __future__ import annotations

import datetime
import hashlib
from functools import lru_cache

from repro.asn1 import (
    ObjectIdentifier,
    encode_bit_string,
    encode_explicit,
    encode_integer,
    encode_null,
    encode_oid,
    encode_sequence,
)
from repro.asn1.encoder import encode_x509_time
from repro.asn1.objects import HASH_SIGNATURE_OIDS, RSA_ENCRYPTION
from repro.crypto.fastlane import fastlane_enabled
from repro.crypto.pkcs1 import sign as pkcs1_sign
from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey, RsaPublicKey
from repro.x509.certificate import Certificate
from repro.x509.extensions import (
    AuthorityKeyIdentifier,
    BasicConstraints,
    ExtendedKeyUsage,
    Extension,
    KeyUsage,
    SubjectAlternativeName,
    SubjectKeyIdentifier,
)
from repro.x509.name import Name

#: Default validity window roughly matching long-lived roots.
_DEFAULT_NOT_BEFORE = datetime.datetime(2000, 1, 1)
_DEFAULT_NOT_AFTER = datetime.datetime(2030, 1, 1)


@lru_cache(maxsize=None)
def _algorithm_identifier_der(hash_name: str) -> bytes:
    """The AlgorithmIdentifier SEQUENCE for a signature hash."""
    return encode_sequence(
        [encode_oid(HASH_SIGNATURE_OIDS[hash_name]), encode_null()]
    )


#: SPKI and key-identifier memos. Universe builds sign thousands of
#: leaves against a small pool of subject keys, so both encodings repeat
#: heavily; keys are the (modulus, exponent) value pair, never object
#: identity.
_SPKI_CACHE: dict[tuple[int, int], bytes] = {}
_KEY_ID_CACHE: dict[tuple[int, int], bytes] = {}


def _spki_der(public_key: RsaPublicKey) -> bytes:
    """The SubjectPublicKeyInfo SEQUENCE for an RSA public key."""
    cache_key = (public_key.modulus, public_key.exponent)
    cached = _SPKI_CACHE.get(cache_key)
    if cached is None:
        cached = _SPKI_CACHE[cache_key] = encode_sequence(
            [
                encode_sequence([encode_oid(RSA_ENCRYPTION), encode_null()]),
                encode_bit_string(public_key.to_der()),
            ]
        )
    return cached


@lru_cache(maxsize=512)
def _time_der(moment: datetime.datetime) -> bytes:
    """Memoized RFC 5280 Time encoding (validity windows repeat)."""
    return encode_x509_time(moment)


def _key_identifier(public_key: RsaPublicKey) -> bytes:
    """RFC 5280 method-1 key id: SHA-1 of the public key bytes."""
    if not fastlane_enabled():
        return hashlib.sha1(public_key.to_der()).digest()
    cache_key = (public_key.modulus, public_key.exponent)
    cached = _KEY_ID_CACHE.get(cache_key)
    if cached is None:
        cached = _KEY_ID_CACHE[cache_key] = hashlib.sha1(
            public_key.to_der()
        ).digest()
    return cached


#: Extension DER memo. A leaf's keyUsage/extKeyUsage/SKI/AKI TLVs repeat
#: across the whole universe (only subjectAltName varies per host);
#: Extension is a frozen value type, so it keys its own encoding.
_EXTENSION_DER_CACHE: dict[Extension, bytes] = {}


def _extension_der(extension: Extension) -> bytes:
    """Memoized Extension SEQUENCE encoding."""
    cached = _EXTENSION_DER_CACHE.get(extension)
    if cached is None:
        cached = _EXTENSION_DER_CACHE[extension] = extension.to_der()
    return cached


class CertificateBuilder:
    """Accumulates TBS fields, then signs with an issuer key.

    Example::

        cert = (
            CertificateBuilder()
            .subject(Name.build(CN="Example Root", O="Example", C="US"))
            .public_key(keypair.public)
            .serial_number(1)
            .ca(True)
            .self_sign(keypair.private)
        )
    """

    def __init__(self) -> None:
        self._subject: Name | None = None
        self._issuer: Name | None = None
        self._public_key: RsaPublicKey | None = None
        self._serial_number: int = 1
        self._not_before = _DEFAULT_NOT_BEFORE
        self._not_after = _DEFAULT_NOT_AFTER
        self._hash_name = "sha256"
        self._extensions: list[Extension] = []
        self._version = 3

    # -- fluent setters ----------------------------------------------------------

    def subject(self, name: Name) -> "CertificateBuilder":
        """Set the subject name."""
        self._subject = name
        return self

    def issuer(self, name: Name) -> "CertificateBuilder":
        """Set the issuer name (defaults to the subject for self-signing)."""
        self._issuer = name
        return self

    def public_key(self, key: RsaPublicKey) -> "CertificateBuilder":
        """Set the subject public key."""
        self._public_key = key
        return self

    def serial_number(self, serial: int) -> "CertificateBuilder":
        """Set the serial number (must be positive)."""
        if serial <= 0:
            raise ValueError("serial number must be positive")
        self._serial_number = serial
        return self

    def validity(
        self, not_before: datetime.datetime, not_after: datetime.datetime
    ) -> "CertificateBuilder":
        """Set the validity window."""
        if not_after <= not_before:
            raise ValueError("notAfter must follow notBefore")
        self._not_before = not_before
        self._not_after = not_after
        return self

    def signature_hash(self, hash_name: str) -> "CertificateBuilder":
        """Set the signature hash (sha1/sha256/...)."""
        if hash_name not in HASH_SIGNATURE_OIDS:
            raise ValueError(f"unsupported signature hash {hash_name!r}")
        self._hash_name = hash_name
        return self

    def version(self, version: int) -> "CertificateBuilder":
        """Set the certificate version (1 or 3)."""
        if version not in (1, 3):
            raise ValueError("only v1 and v3 certificates are supported")
        self._version = version
        return self

    def add_extension(self, extension: Extension) -> "CertificateBuilder":
        """Append a pre-built extension."""
        self._extensions.append(extension)
        return self

    def ca(self, ca: bool = True, path_length: int | None = None) -> "CertificateBuilder":
        """Add CA basicConstraints + keyUsage in one step."""
        self._extensions.append(
            BasicConstraints(ca=ca, path_length=path_length).to_extension()
        )
        if ca:
            self._extensions.append(KeyUsage.for_ca().to_extension())
        return self

    def tls_server(self, *dns_names: str) -> "CertificateBuilder":
        """Add the leaf-certificate extensions for a TLS server."""
        from repro.asn1.objects import EKU_SERVER_AUTH

        self._extensions.append(KeyUsage.for_tls_server().to_extension())
        self._extensions.append(ExtendedKeyUsage((EKU_SERVER_AUTH,)).to_extension())
        if dns_names:
            self._extensions.append(SubjectAlternativeName(dns_names).to_extension())
        return self

    def extended_key_usage(self, *purposes: ObjectIdentifier) -> "CertificateBuilder":
        """Add an extKeyUsage extension with the given purpose OIDs."""
        self._extensions.append(ExtendedKeyUsage(tuple(purposes)).to_extension())
        return self

    # -- signing -----------------------------------------------------------------

    def self_sign(self, private_key: RsaPrivateKey) -> Certificate:
        """Sign with the subject's own key (root certificates)."""
        if self._issuer is None:
            self._issuer = self._subject
        return self.sign(private_key, issuer_public_key=private_key.public_key)

    def sign(
        self,
        issuer_private_key: RsaPrivateKey,
        issuer_public_key: RsaPublicKey | None = None,
    ) -> Certificate:
        """Sign the accumulated TBS fields and return the Certificate.

        When *issuer_public_key* is provided, SKI/AKI identifiers are
        added automatically for v3 certificates.
        """
        if self._subject is None:
            raise ValueError("subject is required")
        if self._public_key is None:
            raise ValueError("public key is required")
        issuer = self._issuer or self._subject

        extensions = list(self._extensions)
        if self._version == 3:
            extensions.append(
                SubjectKeyIdentifier(_key_identifier(self._public_key)).to_extension()
            )
            if issuer_public_key is not None:
                extensions.append(
                    AuthorityKeyIdentifier(
                        _key_identifier(issuer_public_key)
                    ).to_extension()
                )

        tbs = self._encode_tbs(issuer, extensions)
        signature = pkcs1_sign(issuer_private_key, self._hash_name, tbs)
        if fastlane_enabled():
            algorithm = _algorithm_identifier_der(self._hash_name)
        else:
            algorithm = encode_sequence(
                [encode_oid(HASH_SIGNATURE_OIDS[self._hash_name]), encode_null()]
            )
        encoded = encode_sequence(
            [tbs, algorithm, encode_bit_string(signature)]
        )
        if not fastlane_enabled() or (
            self._not_before.microsecond
            or self._not_before.tzinfo is not None
            or self._not_after.microsecond
            or self._not_after.tzinfo is not None
        ):
            # The Time encoding drops sub-second precision and converts
            # to UTC, so the parsed datetimes differ from the builder's
            # inputs; only the parse path yields the canonical values.
            return Certificate.from_der(encoded)
        return Certificate(
            encoded=encoded,
            tbs_encoded=tbs,
            version=self._version,
            serial_number=self._serial_number,
            signature_algorithm=HASH_SIGNATURE_OIDS[self._hash_name],
            issuer=issuer,
            subject=self._subject,
            not_before=self._not_before,
            not_after=self._not_after,
            public_key=self._public_key,
            extensions=tuple(extensions) if self._version == 3 else (),
            signature=signature,
        )

    def _encode_tbs(self, issuer: Name, extensions: list[Extension]) -> bytes:
        """Encode the TBSCertificate SEQUENCE."""
        fast = fastlane_enabled()
        if fast:
            algorithm = _algorithm_identifier_der(self._hash_name)
            validity = encode_sequence(
                [_time_der(self._not_before), _time_der(self._not_after)]
            )
            spki = _spki_der(self._public_key)
        else:
            algorithm = encode_sequence(
                [encode_oid(HASH_SIGNATURE_OIDS[self._hash_name]), encode_null()]
            )
            validity = encode_sequence(
                [
                    encode_x509_time(self._not_before),
                    encode_x509_time(self._not_after),
                ]
            )
            spki = encode_sequence(
                [
                    encode_sequence([encode_oid(RSA_ENCRYPTION), encode_null()]),
                    encode_bit_string(self._public_key.to_der()),
                ]
            )
        parts = []
        if self._version == 3:
            parts.append(encode_explicit(0, encode_integer(2)))
        parts.extend(
            [
                encode_integer(self._serial_number),
                algorithm,
                issuer.to_der(),
                validity,
                self._subject.to_der(),
                spki,
            ]
        )
        if self._version == 3 and extensions:
            encoder = _extension_der if fast else Extension.to_der
            parts.append(
                encode_explicit(
                    3, encode_sequence(encoder(ext) for ext in extensions)
                )
            )
        return encode_sequence(parts)


def make_root_certificate(
    keypair: RsaKeyPair,
    subject: Name,
    *,
    serial_number: int = 1,
    not_before: datetime.datetime = _DEFAULT_NOT_BEFORE,
    not_after: datetime.datetime = _DEFAULT_NOT_AFTER,
    hash_name: str = "sha256",
    version: int = 3,
) -> Certificate:
    """Convenience wrapper: a self-signed CA root certificate."""
    builder = (
        CertificateBuilder()
        .subject(subject)
        .public_key(keypair.public)
        .serial_number(serial_number)
        .validity(not_before, not_after)
        .signature_hash(hash_name)
        .version(version)
    )
    if version == 3:
        builder.ca(True)
    return builder.self_sign(keypair.private)
