"""Human-readable certificate rendering (the ``openssl x509 -text`` look)."""

from __future__ import annotations

from repro.asn1.objects import EKU_NAMES
from repro.x509.certificate import Certificate
from repro.x509.constraints import name_constraints_of
from repro.x509.fingerprint import fingerprint, subject_hash


def _wrap_hex(data: bytes, *, indent: str, per_line: int = 16) -> str:
    """Colon-separated hex, wrapped like OpenSSL does."""
    pairs = [f"{byte:02x}" for byte in data]
    lines = [
        ":".join(pairs[i : i + per_line]) for i in range(0, len(pairs), per_line)
    ]
    return ("\n" + indent).join(lines)


def certificate_text(certificate: Certificate) -> str:
    """Render a certificate in the familiar multi-line text form."""
    lines = ["Certificate:", "    Data:"]
    lines.append(f"        Version: {certificate.version}")
    lines.append(f"        Serial Number: {certificate.serial_number}")
    lines.append(
        f"        Signature Algorithm: "
        f"{certificate.signature_hash}WithRSAEncryption"
    )
    lines.append(f"        Issuer: {certificate.issuer.format('display')}")
    lines.append("        Validity:")
    lines.append(f"            Not Before: {certificate.not_before:%b %d %H:%M:%S %Y} GMT")
    lines.append(f"            Not After : {certificate.not_after:%b %d %H:%M:%S %Y} GMT")
    lines.append(f"        Subject: {certificate.subject.format('display')}")
    lines.append("        Subject Public Key Info:")
    lines.append("            Public Key Algorithm: rsaEncryption")
    lines.append(
        f"                RSA Public-Key: ({certificate.public_key.bits} bit)"
    )
    modulus = certificate.public_key.modulus.to_bytes(
        certificate.public_key.byte_length, "big"
    )
    lines.append("                Modulus:")
    lines.append(
        "                    "
        + _wrap_hex(modulus, indent="                    ", per_line=15)
    )
    lines.append(
        f"                Exponent: {certificate.public_key.exponent} "
        f"({certificate.public_key.exponent:#x})"
    )

    if certificate.extensions:
        lines.append("        X509v3 extensions:")
        constraints = certificate.basic_constraints
        if constraints is not None:
            rendered = f"CA:{'TRUE' if constraints.ca else 'FALSE'}"
            if constraints.path_length is not None:
                rendered += f", pathlen:{constraints.path_length}"
            lines.append("            X509v3 Basic Constraints:")
            lines.append(f"                {rendered}")
        usage = certificate.key_usage
        if usage is not None:
            flags = [
                label
                for attr, label in (
                    ("digital_signature", "Digital Signature"),
                    ("key_encipherment", "Key Encipherment"),
                    ("key_cert_sign", "Certificate Sign"),
                    ("crl_sign", "CRL Sign"),
                )
                if getattr(usage, attr)
            ]
            lines.append("            X509v3 Key Usage:")
            lines.append(f"                {', '.join(flags)}")
        eku = certificate.extended_key_usage
        if eku is not None:
            names = ", ".join(
                EKU_NAMES.get(purpose, purpose.dotted) for purpose in eku.purposes
            )
            lines.append("            X509v3 Extended Key Usage:")
            lines.append(f"                {names}")
        if certificate.subject_alternative_names:
            lines.append("            X509v3 Subject Alternative Name:")
            lines.append(
                "                "
                + ", ".join(
                    f"DNS:{name}" for name in certificate.subject_alternative_names
                )
            )
        name_constraints = name_constraints_of(certificate)
        if name_constraints is not None:
            lines.append("            X509v3 Name Constraints:")
            if name_constraints.permitted:
                lines.append(
                    "                Permitted: "
                    + ", ".join(f"DNS:{n}" for n in name_constraints.permitted)
                )
            if name_constraints.excluded:
                lines.append(
                    "                Excluded: "
                    + ", ".join(f"DNS:{n}" for n in name_constraints.excluded)
                )

    lines.append("    Signature:")
    lines.append(
        "        " + _wrap_hex(certificate.signature, indent="        ", per_line=18)
    )
    lines.append(f"    SHA256 Fingerprint: {fingerprint(certificate)}")
    lines.append(f"    Subject Hash (Android filename): {subject_hash(certificate)}")
    return "\n".join(lines)
