"""Certificate identity and fingerprinting.

The paper's methodology (§4.1-§4.2) establishes certificate identity
from unique fields — the RSA key modulus and the signature string —
rather than byte equality, because "even though root certificates are
not byte-equivalent they can still be 'equivalent' if their subject and
RSA key modulus are identical (i.e., when they can validate the same
child-certificates). In most cases, only the expiration date change."

Three identity functions are provided (and ablated in the benchmarks):

* :func:`identity_key` — the paper's (modulus, signature) pair;
* :func:`equivalence_key` — the looser (subject, modulus) pair used for
  cross-store equivalence;
* byte-exact identity via ``Certificate.encoded`` (the strawman).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.x509.certificate import Certificate


@dataclass(frozen=True)
class CertificateIdentity:
    """The paper's identity key: RSA modulus + signature octets."""

    modulus: int
    signature: bytes

    @classmethod
    def of(cls, certificate: Certificate) -> "CertificateIdentity":
        """Identity of a certificate."""
        return cls(
            modulus=certificate.public_key.modulus, signature=certificate.signature
        )

    @property
    def short(self) -> str:
        """First 32 bits of the identity hash, rendered like Figure 2's ids."""
        blob = self.modulus.to_bytes(
            (self.modulus.bit_length() + 7) // 8, "big"
        ) + self.signature
        return hashlib.sha256(blob).hexdigest()[:8]


def identity_key(certificate: Certificate) -> tuple[int, bytes]:
    """The (RSA modulus, signature) identity tuple of §4.1."""
    return (certificate.public_key.modulus, certificate.signature)


def equivalence_key(certificate: Certificate) -> tuple[object, int]:
    """The (subject, modulus) cross-store equivalence key of §4.2.

    Two byte-inequivalent certificates with this key equal can validate
    the same child certificates, so root-store comparisons treat them as
    the same root.
    """
    return (certificate.subject.normalized(), certificate.public_key.modulus)


def fingerprint(certificate: Certificate, hash_name: str = "sha256") -> str:
    """Hex digest of the full DER encoding (byte-exact identity)."""
    return hashlib.new(hash_name, certificate.encoded).hexdigest()


def api_fingerprint(certificate: Certificate) -> str:
    """SHA-256 over the paper's (modulus, signature) identity key.

    The stable per-root identifier the serve API and the attribution
    analysis share: re-issued but equivalent certificates keep distinct
    fingerprints while the identifier stays stable across runs of the
    same seed (it hashes key material, never the process-local DER
    cache). ``CertificateIdentity.short`` is its first 8 hex chars.
    """
    modulus = certificate.public_key.modulus
    blob = (
        modulus.to_bytes((modulus.bit_length() + 7) // 8, "big")
        + certificate.signature
    )
    return hashlib.sha256(blob).hexdigest()


def subject_hash(certificate: Certificate) -> str:
    """A stable 32-bit hash of the subject name, rendered as 8 hex chars.

    This mirrors the bracketed identifiers in the paper's Figure 2 (and
    OpenSSL's ``-subject_hash``, which also names the files in Android's
    ``/system/etc/security/cacerts/``).
    """
    canonical = repr(certificate.subject.normalized()).encode("utf-8")
    return hashlib.sha1(canonical).hexdigest()[:8]
