"""X.500 distinguished names: model, DER codec, and display dialects.

The paper (§4.1) notes that "different Android versions format
certificate information differently", forcing the authors to normalize
subject/issuer strings manually. :func:`Name.format` reproduces the
three display dialects the analysis layer has to reconcile, and
:meth:`Name.normalized` provides the canonical comparison form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.asn1 import (
    Asn1Object,
    ObjectIdentifier,
    decode,
    encode_oid,
    encode_printable_string,
    encode_sequence,
    encode_set,
    encode_utf8_string,
)
from repro.asn1.encoder import is_printable
from repro.asn1.objects import DN_SHORT_NAMES, PRINTABLE_ONLY_ATTRS, dn_attribute_oid
from repro.asn1.tags import UniversalTag
from repro.crypto.fastlane import fastlane_enabled

#: Display order used by OpenSSL-style one-line output.
_DISPLAY_ORDER = ("C", "ST", "L", "O", "OU", "CN", "emailAddress")


@dataclass(frozen=True)
class NameAttribute:
    """A single AttributeTypeAndValue (e.g. ``CN=Example Root CA``)."""

    oid: ObjectIdentifier
    value: str

    @property
    def short_name(self) -> str:
        """The conventional short name, or the dotted OID if unknown."""
        return DN_SHORT_NAMES.get(self.oid, self.oid.dotted)

    def to_der(self) -> bytes:
        """Encode as AttributeTypeAndValue."""
        if self.oid in PRINTABLE_ONLY_ATTRS or is_printable(self.value):
            value = encode_printable_string(self.value)
        else:
            value = encode_utf8_string(self.value)
        return encode_sequence([encode_oid(self.oid), value])

    @classmethod
    def from_asn1(cls, obj: Asn1Object) -> "NameAttribute":
        """Decode an AttributeTypeAndValue TLV."""
        if len(obj) != 2:
            raise ValueError("AttributeTypeAndValue must have two components")
        return cls(oid=obj[0].as_oid(), value=obj[1].as_string())

    def __str__(self) -> str:
        return f"{self.short_name}={self.value}"


@dataclass(frozen=True)
class RelativeDistinguishedName:
    """A SET OF attributes; almost always a singleton in practice."""

    attributes: tuple[NameAttribute, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("RDN must contain at least one attribute")

    def to_der(self) -> bytes:
        """Encode as a DER SET OF AttributeTypeAndValue."""
        return encode_set(attr.to_der() for attr in self.attributes)

    @classmethod
    def from_asn1(cls, obj: Asn1Object) -> "RelativeDistinguishedName":
        """Decode an RDN TLV."""
        if not obj.tag.is_universal(UniversalTag.SET):
            raise ValueError(f"RDN must be a SET, found {obj.tag}")
        return cls(tuple(NameAttribute.from_asn1(child) for child in obj))

    def __iter__(self) -> Iterator[NameAttribute]:
        return iter(self.attributes)


class Name:
    """An X.500 Name: an ordered RDNSequence.

    Construct via :meth:`build` for the common flat case::

        Name.build(CN="Example Root CA", O="Example Inc", C="US")
    """

    __slots__ = ("rdns", "_der", "_normalized")

    def __init__(self, rdns: Iterable[RelativeDistinguishedName]):
        self.rdns = tuple(rdns)
        self._der: bytes | None = None
        self._normalized: tuple[tuple[str, str], ...] | None = None

    @classmethod
    def build(cls, **attributes: str) -> "Name":
        """Build a Name of single-attribute RDNs from keyword arguments.

        Keyword names are DN short names (``CN``, ``O``, ``OU``, ``C``,
        ``L``, ``ST``, ``emailAddress``, ...); insertion order is kept.
        """
        rdns = [
            RelativeDistinguishedName(
                (NameAttribute(dn_attribute_oid(key), value),)
            )
            for key, value in attributes.items()
        ]
        if not rdns:
            raise ValueError("Name needs at least one attribute")
        return cls(rdns)

    def to_der(self) -> bytes:
        """Encode as a DER RDNSequence.

        Issuer names repeat across every certificate a CA signs, so the
        encoding is cached on the instance when the crypto fast lane is
        on (the cache is never shared between instances: normalized
        equality makes distinct Names compare equal).
        """
        if not fastlane_enabled():
            return encode_sequence(rdn.to_der() for rdn in self.rdns)
        der = getattr(self, "_der", None)
        if der is None:
            der = self._der = encode_sequence(rdn.to_der() for rdn in self.rdns)
        return der

    @classmethod
    def from_der(cls, data: bytes) -> "Name":
        """Decode a DER RDNSequence."""
        return cls.from_asn1(decode(data))

    @classmethod
    def from_asn1(cls, obj: Asn1Object) -> "Name":
        """Decode an RDNSequence TLV."""
        if not obj.tag.is_universal(UniversalTag.SEQUENCE):
            raise ValueError(f"Name must be a SEQUENCE, found {obj.tag}")
        return cls(RelativeDistinguishedName.from_asn1(child) for child in obj)

    # -- attribute access ----------------------------------------------------

    def attributes(self) -> list[NameAttribute]:
        """All attributes in RDN order."""
        return [attr for rdn in self.rdns for attr in rdn]

    def get(self, short_name: str) -> str | None:
        """First value of the attribute with the given short name."""
        wanted = dn_attribute_oid(short_name)
        for attr in self.attributes():
            if attr.oid == wanted:
                return attr.value
        return None

    @property
    def common_name(self) -> str | None:
        """The CN value, if present."""
        return self.get("CN")

    # -- display dialects ------------------------------------------------------

    def format(self, dialect: str = "rfc4514") -> str:
        """Render in one of the display dialects the paper had to reconcile.

        * ``rfc4514`` — most-specific first: ``CN=X,OU=Y,O=Z,C=US``
          (what newer Android versions show).
        * ``openssl`` — slash-separated in fixed field order:
          ``/C=US/O=Z/OU=Y/CN=X`` (older Android / OpenSSL one-liners).
        * ``display`` — human order, comma+space separated:
          ``C=US, O=Z, OU=Y, CN=X``.
        """
        attrs = self.attributes()
        if dialect == "rfc4514":
            return ",".join(str(attr) for attr in reversed(attrs))
        if dialect in ("openssl", "display"):
            ranked = sorted(
                attrs,
                key=lambda attr: (
                    _DISPLAY_ORDER.index(attr.short_name)
                    if attr.short_name in _DISPLAY_ORDER
                    else len(_DISPLAY_ORDER)
                ),
            )
            if dialect == "openssl":
                return "/" + "/".join(str(attr) for attr in ranked)
            return ", ".join(str(attr) for attr in ranked)
        raise ValueError(f"unknown dialect {dialect!r}")

    def normalized(self) -> tuple[tuple[str, str], ...]:
        """Canonical comparison form, independent of display dialect.

        Attributes sorted by (OID, casefolded value) with whitespace
        collapsed — the normalization §4.1 performs manually.

        Cached on the instance: chain building compares the same store
        subjects against every candidate issuer, and ``rdns`` never
        changes after construction.
        """
        normalized = getattr(self, "_normalized", None)
        if normalized is None:
            normalized = self._normalized = tuple(
                sorted(
                    (attr.oid.dotted, " ".join(attr.value.split()).casefold())
                    for attr in self.attributes()
                )
            )
        return normalized

    # -- dunder ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return self.normalized() == other.normalized()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.normalized())

    def __str__(self) -> str:
        return self.format("rfc4514")

    def __repr__(self) -> str:
        return f"Name({self.format('rfc4514')!r})"
