"""Certificate-path building and validation against a trust anchor set.

This is the client-side logic a TLS stack runs when it receives a server
chain: order the presented certificates, walk signatures up to a trusted
root, and check validity windows, CA flags and hostname. The Netalyzr
probes and the interception detector both consume the structured
:class:`ValidationResult` it produces.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

from repro.x509.certificate import Certificate
from repro.x509.verify import verify_signature


class ChainValidationError(Exception):
    """Raised by :meth:`ChainVerifier.verify` on an invalid chain."""

    def __init__(self, reason: "ValidationFailure", message: str):
        super().__init__(message)
        self.reason = reason


class ValidationFailure(Enum):
    """Machine-readable failure categories."""

    EMPTY_CHAIN = "empty_chain"
    NO_TRUSTED_ROOT = "no_trusted_root"
    BAD_SIGNATURE = "bad_signature"
    EXPIRED = "expired"
    NOT_YET_VALID = "not_yet_valid"
    NOT_A_CA = "not_a_ca"
    PATH_LENGTH_EXCEEDED = "path_length_exceeded"
    HOSTNAME_MISMATCH = "hostname_mismatch"
    BROKEN_CHAIN = "broken_chain"
    REVOKED = "revoked"
    BLACKLISTED = "blacklisted"
    PIN_VIOLATION = "pin_violation"
    NAME_CONSTRAINT_VIOLATION = "name_constraint_violation"
    USAGE_NOT_PERMITTED = "usage_not_permitted"


@dataclass
class ValidationResult:
    """Outcome of a chain validation.

    ``trusted`` is the overall verdict; ``path`` is the validated path
    from leaf to root (with the trust anchor last); ``anchor`` is the
    matching root-store certificate.
    """

    trusted: bool
    path: tuple[Certificate, ...] = ()
    anchor: Certificate | None = None
    failure: ValidationFailure | None = None
    detail: str = ""
    warnings: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.trusted


def _key_id_of(certificate: Certificate) -> bytes | None:
    """The certificate's SubjectKeyIdentifier, if present."""
    from repro.asn1.objects import SUBJECT_KEY_IDENTIFIER
    from repro.x509.extensions import SubjectKeyIdentifier

    extension = certificate.extension(SUBJECT_KEY_IDENTIFIER)
    if extension is None:
        return None
    return SubjectKeyIdentifier.from_extension(extension).key_id


def _wanted_key_id(certificate: Certificate) -> bytes | None:
    """The certificate's AuthorityKeyIdentifier keyIdentifier, if present."""
    from repro.asn1.objects import AUTHORITY_KEY_IDENTIFIER
    from repro.x509.extensions import AuthorityKeyIdentifier

    extension = certificate.extension(AUTHORITY_KEY_IDENTIFIER)
    if extension is None:
        return None
    try:
        return AuthorityKeyIdentifier.from_extension(extension).key_id
    except ValueError:
        return None


def build_chain(
    leaf: Certificate, candidates: Iterable[Certificate]
) -> list[Certificate]:
    """Order *candidates* into a leaf-first path by following issuers.

    TLS servers frequently send intermediates out of order; this mirrors
    the reordering real clients perform. Unrelated certificates are
    dropped. When several candidates share the wanted issuer *name*,
    the child's AuthorityKeyIdentifier disambiguates (an attacker can
    mint a CA with a colliding subject, but not with the right key id).
    Signature checks are not performed here.
    """
    key_id_of = _key_id_of
    wanted_key_id = _wanted_key_id
    pool = [c for c in candidates if c != leaf]
    path = [leaf]
    current = leaf
    while pool:
        matches = [
            candidate
            for candidate in pool
            if candidate.subject == current.issuer and candidate != current
        ]
        next_hop = None
        if len(matches) == 1:
            next_hop = matches[0]
        elif matches:
            aki = wanted_key_id(current)
            if aki is not None:
                next_hop = next(
                    (c for c in matches if key_id_of(c) == aki), matches[0]
                )
            else:
                next_hop = matches[0]
        if next_hop is None:
            break
        path.append(next_hop)
        pool.remove(next_hop)
        current = next_hop
        if current.is_self_signed:
            break
    return path


def build_all_chains(
    leaf: Certificate, candidates: Iterable[Certificate], *, limit: int = 8
) -> list[list[Certificate]]:
    """Enumerate candidate leaf-first paths, branching on name ties.

    Cross-signed PKIs present several certificates for the same issuer
    name; the primary path may dead-end on an untrusted branch while an
    alternative reaches an anchor. AKI-matching branches are explored
    first; at most *limit* paths are produced.
    """
    paths: list[list[Certificate]] = []

    def dfs(path: list[Certificate], pool: list[Certificate]) -> None:
        if len(paths) >= limit:
            return
        current = path[-1]
        if current.is_self_signed and len(path) > 1:
            paths.append(list(path))
            return
        matches = [
            c for c in pool if c.subject == current.issuer and c != current
        ]
        if not matches:
            paths.append(list(path))
            return
        aki = _wanted_key_id(current)
        matches.sort(
            key=lambda c: 0 if (aki is not None and _key_id_of(c) == aki) else 1
        )
        for match in matches:
            dfs(path + [match], [c for c in pool if c is not match])

    dfs([leaf], [c for c in candidates if c != leaf])
    return paths or [[leaf]]


class ChainVerifier:
    """Validates presented chains against a set of trust anchors.

    Anchors are indexed by subject name. The verifier implements the
    subset of RFC 5280 path validation that matters for the study:
    signature chaining, validity windows, basicConstraints/pathLen,
    name constraints, and hostname matching.

    Android's default validator stops there; the optional hooks model
    the hardening the paper discusses:

    * ``revocation`` — a :class:`repro.x509.crl.RevocationChecker`
      (Android performs no revocation checking by default);
    * ``blacklist`` — Android's CertBlacklister
      (:class:`repro.x509.blacklist.CertificateBlacklist`);
    * ``google_pins`` — KitKat's fraudulent-Google-cert defense
      (:class:`repro.x509.blacklist.GooglePinEnforcer`);
    * ``anchor_usage`` — Mozilla-style scoped trust: a mapping from
      anchor identity to :class:`repro.rootstore.store.TrustFlags`
      combined with ``required_usage`` (Android grants every root every
      usage, §2/§8).
    """

    def __init__(
        self,
        anchors: Iterable[Certificate],
        *,
        at: datetime.datetime | None = None,
        check_validity: bool = True,
        revocation=None,
        blacklist=None,
        google_pins=None,
        anchor_usage: dict | None = None,
        required_usage: str | None = None,
    ):
        self._by_subject: dict[object, list[Certificate]] = {}
        for anchor in anchors:
            self._by_subject.setdefault(anchor.subject.normalized(), []).append(anchor)
        self.at = at or datetime.datetime(2014, 4, 1)
        self.check_validity = check_validity
        self.revocation = revocation
        self.blacklist = blacklist
        self.google_pins = google_pins
        self.anchor_usage = anchor_usage or {}
        self.required_usage = required_usage

    @classmethod
    def for_store(cls, store, **kwargs) -> "ChainVerifier":
        """Build a verifier from a RootStore, carrying its trust flags.

        Pass ``required_usage="server_auth"|"email"|"code_signing"`` to
        enforce Mozilla-style scoping; without it the behaviour is
        Android's trust-everything policy.
        """
        from repro.x509.fingerprint import identity_key

        anchor_usage = {
            identity_key(entry.certificate): entry.trust
            for entry in store.entries()
            if entry.enabled
        }
        return cls(store.certificates(), anchor_usage=anchor_usage, **kwargs)

    @property
    def anchor_count(self) -> int:
        """Number of trust anchors loaded."""
        return sum(len(v) for v in self._by_subject.values())

    def find_anchor(self, certificate: Certificate) -> Certificate | None:
        """A trust anchor that issued (or equals) *certificate*, if any."""
        # Exact anchor (the presented root itself is in the store).
        for anchor in self._by_subject.get(certificate.subject.normalized(), ()):
            if anchor.public_key == certificate.public_key:
                return anchor
        return None

    def find_issuer_anchor(self, certificate: Certificate) -> Certificate | None:
        """An anchor whose subject matches *certificate*'s issuer and
        whose key verifies its signature."""
        for anchor in self._by_subject.get(certificate.issuer.normalized(), ()):
            if verify_signature(certificate, anchor.public_key):
                return anchor
        return None

    def validate(
        self,
        presented: Sequence[Certificate],
        hostname: str | None = None,
    ) -> ValidationResult:
        """Validate a presented chain; never raises, returns a result.

        All candidate paths through the presented certificates are
        tried (cross-signed PKIs present several certificates for the
        same issuer name); the first path reaching a trusted verdict
        wins, otherwise the primary path's failure is reported.
        """
        if not presented:
            return ValidationResult(
                trusted=False,
                failure=ValidationFailure.EMPTY_CHAIN,
                detail="server presented no certificates",
            )
        leaf = presented[0]
        if hostname is not None and not leaf.matches_hostname(hostname):
            return ValidationResult(
                trusted=False,
                path=(leaf,),
                failure=ValidationFailure.HOSTNAME_MISMATCH,
                detail=f"certificate does not match hostname {hostname!r}",
            )

        first_failure: ValidationResult | None = None
        for path in build_all_chains(leaf, presented[1:]):
            result = self._validate_path(path, hostname)
            if result.trusted:
                return result
            if first_failure is None:
                first_failure = result
        assert first_failure is not None
        return first_failure

    def _validate_path(
        self, path: list[Certificate], hostname: str | None
    ) -> ValidationResult:
        """Anchor and fully check one candidate path."""
        # Find where the path meets the store: either some presented cert
        # is itself an anchor, or the last cert is signed by an anchor.
        anchored_path: list[Certificate] = []
        anchor: Certificate | None = None
        for certificate in path:
            direct = self.find_anchor(certificate)
            if direct is not None:
                anchor = direct
                anchored_path.append(certificate)
                break
            anchored_path.append(certificate)
            issuer_anchor = self.find_issuer_anchor(certificate)
            if issuer_anchor is not None:
                anchor = issuer_anchor
                anchored_path.append(issuer_anchor)
                break
        if anchor is None:
            return ValidationResult(
                trusted=False,
                path=tuple(path),
                failure=ValidationFailure.NO_TRUSTED_ROOT,
                detail=f"no path to a trust anchor from {path[0].subject}",
            )

        result = self._check_path(anchored_path, anchor)
        if result is not None:
            return result
        result = self._extra_checks(anchored_path, anchor, hostname)
        if result is not None:
            return result
        warnings = []
        if self.check_validity and anchor.is_expired(self.at):
            # Expired *anchors* are a warning, not a failure: Android
            # shipped the expired Firmaprofesional root and continued to
            # treat it as trusted (paper §2).
            warnings.append(f"trust anchor {anchor.subject} is expired")
        return ValidationResult(
            trusted=True, path=tuple(anchored_path), anchor=anchor, warnings=warnings
        )

    def verify(
        self, presented: Sequence[Certificate], hostname: str | None = None
    ) -> tuple[Certificate, ...]:
        """Like :meth:`validate` but raises :class:`ChainValidationError`."""
        result = self.validate(presented, hostname)
        if not result.trusted:
            assert result.failure is not None
            raise ChainValidationError(result.failure, result.detail)
        return result.path

    def _extra_checks(
        self,
        path: list[Certificate],
        anchor: Certificate,
        hostname: str | None,
    ) -> ValidationResult | None:
        """The optional hardening hooks; None when all pass."""

        def fail(failure: ValidationFailure, detail: str) -> ValidationResult:
            return ValidationResult(
                trusted=False, path=tuple(path), anchor=anchor,
                failure=failure, detail=detail,
            )

        if self.blacklist is not None:
            banned = self.blacklist.rejects_chain(path)
            if banned is not None:
                return fail(
                    ValidationFailure.BLACKLISTED,
                    f"{banned.subject} is blacklisted",
                )
        if self.revocation is not None:
            for certificate in path:
                if self.revocation.is_revoked(certificate):
                    return fail(
                        ValidationFailure.REVOKED,
                        f"{certificate.subject} is revoked",
                    )
        if self.google_pins is not None and hostname is not None:
            if not self.google_pins.permits(hostname, path):
                return fail(
                    ValidationFailure.PIN_VIOLATION,
                    f"chain for {hostname} violates the Google pin set",
                )
        # Name constraints: every CA's constraints bind everything below it.
        from repro.x509.constraints import name_constraints_of

        for index in range(1, len(path)):
            constraints = name_constraints_of(path[index])
            if constraints is None:
                continue
            for below in path[:index]:
                if not constraints.allows_certificate(below):
                    return fail(
                        ValidationFailure.NAME_CONSTRAINT_VIOLATION,
                        f"{below.subject} violates name constraints of "
                        f"{path[index].subject}",
                    )
        # Scoped trust (Mozilla policy); Android ignores this entirely.
        if self.required_usage is not None and self.anchor_usage:
            from repro.x509.fingerprint import identity_key

            flags = self.anchor_usage.get(identity_key(anchor))
            if flags is not None and not getattr(flags, self.required_usage):
                return fail(
                    ValidationFailure.USAGE_NOT_PERMITTED,
                    f"anchor {anchor.subject} is not trusted for "
                    f"{self.required_usage}",
                )
        return None

    def _check_path(
        self, path: list[Certificate], anchor: Certificate
    ) -> ValidationResult | None:
        """Check signatures, validity and constraints along an anchored path.

        Returns a failure result, or None if the path is good.
        """
        # Verify each link: path[i] signed by path[i+1].
        for index in range(len(path) - 1):
            child, parent = path[index], path[index + 1]
            if not verify_signature(child, parent.public_key):
                return ValidationResult(
                    trusted=False,
                    path=tuple(path),
                    failure=ValidationFailure.BAD_SIGNATURE,
                    detail=f"{child.subject} not validly signed by {parent.subject}",
                )
            if not parent.is_ca:
                return ValidationResult(
                    trusted=False,
                    path=tuple(path),
                    failure=ValidationFailure.NOT_A_CA,
                    detail=f"issuer {parent.subject} is not a CA",
                )
            constraints = parent.basic_constraints
            if constraints is not None and constraints.path_length is not None:
                # Number of intermediates below this CA (excluding leaf link).
                below = index  # certs between leaf and this parent, minus leaf
                if below > constraints.path_length:
                    return ValidationResult(
                        trusted=False,
                        path=tuple(path),
                        failure=ValidationFailure.PATH_LENGTH_EXCEEDED,
                        detail=f"path length constraint of {parent.subject} exceeded",
                    )
        if self.check_validity:
            for certificate in path[:-1]:  # anchor expiry handled as warning
                if self.at < certificate.not_before:
                    return ValidationResult(
                        trusted=False,
                        path=tuple(path),
                        failure=ValidationFailure.NOT_YET_VALID,
                        detail=f"{certificate.subject} not valid before "
                        f"{certificate.not_before:%Y-%m-%d}",
                    )
                if certificate.is_expired(self.at):
                    return ValidationResult(
                        trusted=False,
                        path=tuple(path),
                        failure=ValidationFailure.EXPIRED,
                        detail=f"{certificate.subject} expired "
                        f"{certificate.not_after:%Y-%m-%d}",
                    )
        return None
