"""NameConstraints (RFC 5280 §4.2.1.10), dNSName subtrees only.

Name constraints are the standard mechanism for scoping a CA to a
namespace — precisely what §5.2's government/operator roots lack, and
part of what an "audited and more strict root store" (§8) would
enforce. The chain verifier applies them when present; the audit module
flags unconstrained special-purpose roots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asn1 import (
    ObjectIdentifier,
    decode,
    encode_ia5_string,
    encode_implicit,
    encode_sequence,
)
from repro.asn1.tags import TagClass
from repro.x509.certificate import Certificate
from repro.x509.extensions import Extension

#: id-ce-nameConstraints
NAME_CONSTRAINTS = ObjectIdentifier("2.5.29.30")


def _dns_matches_subtree(dns_name: str, subtree: str) -> bool:
    """RFC 5280 dNSName constraint semantics: a name satisfies a
    constraint if it equals it or is a (label-aligned) subdomain."""
    dns_name = dns_name.lower().rstrip(".")
    subtree = subtree.lower().rstrip(".").lstrip(".")
    if dns_name == subtree:
        return True
    return dns_name.endswith("." + subtree)


@dataclass(frozen=True)
class NameConstraints:
    """Permitted and excluded dNSName subtrees."""

    permitted: tuple[str, ...] = ()
    excluded: tuple[str, ...] = ()

    OID = NAME_CONSTRAINTS

    def allows(self, dns_name: str) -> bool:
        """True if a dNSName satisfies these constraints."""
        if any(_dns_matches_subtree(dns_name, subtree) for subtree in self.excluded):
            return False
        if self.permitted:
            return any(
                _dns_matches_subtree(dns_name, subtree) for subtree in self.permitted
            )
        return True

    def allows_certificate(self, certificate: Certificate) -> bool:
        """True if every DNS identity the certificate asserts is in scope.

        SAN dNSNames are always checked; the subject CN only when it is
        DNS-shaped (contains a dot, no spaces) — a CA named
        ``"Example Issuing CA"`` asserts no host identity and must not
        trip a dNSName constraint.
        """
        names = certificate.subject_alternative_names
        if not names:
            common_name = certificate.subject.common_name or ""
            if "." in common_name and " " not in common_name:
                names = (common_name,)
        return all(self.allows(name) for name in names)

    # -- codec ---------------------------------------------------------------------

    def to_extension(self, critical: bool = True) -> Extension:
        """Encode as the NameConstraints extension."""

        def subtrees(names: tuple[str, ...]) -> bytes:
            return encode_sequence(
                encode_sequence([encode_implicit(2, encode_ia5_string(name))])
                for name in names
            )

        parts = []
        if self.permitted:
            parts.append(encode_implicit(0, subtrees(self.permitted)))
        if self.excluded:
            parts.append(encode_implicit(1, subtrees(self.excluded)))
        return Extension(self.OID, critical, encode_sequence(parts))

    @classmethod
    def from_extension(cls, extension: Extension) -> "NameConstraints":
        """Parse the extension payload (dNSName entries only)."""
        permitted: list[str] = []
        excluded: list[str] = []
        for part in decode(extension.value):
            if part.tag.tag_class is not TagClass.CONTEXT:
                continue
            bucket = permitted if part.tag.number == 0 else excluded
            for subtree in part:
                general_name = subtree[0]
                if (
                    general_name.tag.tag_class is TagClass.CONTEXT
                    and general_name.tag.number == 2
                ):
                    bucket.append(general_name.content.decode("ascii"))
        return cls(permitted=tuple(permitted), excluded=tuple(excluded))


def name_constraints_of(certificate: Certificate) -> NameConstraints | None:
    """The certificate's NameConstraints, if present."""
    extension = certificate.extension(NAME_CONSTRAINTS)
    if extension is None:
        return None
    return NameConstraints.from_extension(extension)
