"""PEM armor (RFC 7468) for certificates."""

from __future__ import annotations

import base64
import re

_BEGIN = "-----BEGIN {label}-----"
_END = "-----END {label}-----"
_BLOCK_RE = re.compile(
    r"-----BEGIN (?P<label>[A-Z0-9 ]+)-----\s*(?P<body>[A-Za-z0-9+/=\s]*?)-----END (?P<endlabel>[A-Z0-9 ]+)-----"
)


class PemError(ValueError):
    """Raised on malformed PEM input."""


def pem_encode(der: bytes, label: str = "CERTIFICATE") -> str:
    """Wrap DER bytes in PEM armor with 64-character lines."""
    body = base64.b64encode(der).decode("ascii")
    lines = [_BEGIN.format(label=label)]
    lines.extend(body[i : i + 64] for i in range(0, len(body), 64))
    lines.append(_END.format(label=label))
    return "\n".join(lines) + "\n"


def pem_decode(text: str, label: str = "CERTIFICATE") -> bytes:
    """Decode exactly one PEM block with the given label."""
    blocks = pem_decode_all(text, label)
    if not blocks:
        raise PemError(f"no {label} PEM block found")
    if len(blocks) > 1:
        raise PemError(f"expected one {label} block, found {len(blocks)}")
    return blocks[0]


def pem_decode_all(text: str, label: str = "CERTIFICATE") -> list[bytes]:
    """Decode every PEM block with the given label, in order."""
    blocks = []
    for match in _BLOCK_RE.finditer(text):
        if match.group("label") != match.group("endlabel"):
            raise PemError(
                f"mismatched PEM labels {match.group('label')!r} / "
                f"{match.group('endlabel')!r}"
            )
        if match.group("label") != label:
            continue
        body = "".join(match.group("body").split())
        try:
            blocks.append(base64.b64decode(body, validate=True))
        except ValueError as exc:
            raise PemError(f"invalid base64 in PEM body: {exc}") from exc
    return blocks
