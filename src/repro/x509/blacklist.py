"""Android 4.4's fraudulent-certificate defenses (§2).

Two mechanisms shipped in KitKat are modeled:

* a **certificate blacklist** (serial/key based), the mechanism Google
  used against the DigiNotar and TürkTrust mis-issuances; and
* **Google-domain pin enforcement** ("Android 4.4 detects and prevents
  the use of fraudulent Google certificates used in secure SSL/TLS
  communications"): chains for google domains must terminate in an
  allow-listed key set.

Both plug into :class:`~repro.x509.chain.ChainVerifier` via the
``extra_checks`` hook.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.x509.certificate import Certificate


def public_key_hash(certificate: Certificate) -> str:
    """SHA-256 over the public-key DER (the pinning identity)."""
    return hashlib.sha256(certificate.public_key.to_der()).hexdigest()


@dataclass
class CertificateBlacklist:
    """Serial- and key-based blacklist, as in Android's CertBlacklister."""

    serials: set[int] = field(default_factory=set)
    key_hashes: set[str] = field(default_factory=set)

    def ban_serial(self, serial: int) -> None:
        """Blacklist a certificate serial number."""
        self.serials.add(serial)

    def ban_key(self, certificate: Certificate) -> None:
        """Blacklist a public key (catches re-issued fraudulent certs)."""
        self.key_hashes.add(public_key_hash(certificate))

    def is_blacklisted(self, certificate: Certificate) -> bool:
        """True if the certificate or its key is banned."""
        return (
            certificate.serial_number in self.serials
            or public_key_hash(certificate) in self.key_hashes
        )

    def rejects_chain(self, chain: Sequence[Certificate]) -> Certificate | None:
        """The first blacklisted certificate in a chain, if any."""
        for certificate in chain:
            if self.is_blacklisted(certificate):
                return certificate
        return None


@dataclass
class GooglePinEnforcer:
    """KitKat's hard pin set for Google properties.

    A chain presented for a matching domain must contain at least one
    allow-listed key; otherwise the connection is rejected regardless of
    whether the chain reaches a trusted root.
    """

    allowed_key_hashes: set[str] = field(default_factory=set)
    domain_suffixes: tuple[str, ...] = (
        "google.com",
        "google.co.uk",
        "gmail.com",
        "googleapis.com",
        "android.com",
    )

    def allow_issuer(self, certificate: Certificate) -> None:
        """Allow a CA key to vouch for Google domains."""
        self.allowed_key_hashes.add(public_key_hash(certificate))

    def applies_to(self, hostname: str) -> bool:
        """True if the hostname is a protected Google property."""
        hostname = hostname.lower().rstrip(".")
        return any(
            hostname == suffix or hostname.endswith("." + suffix)
            for suffix in self.domain_suffixes
        )

    def permits(self, hostname: str, chain: Sequence[Certificate]) -> bool:
        """Pin verdict for a hostname/chain pair."""
        if not self.applies_to(hostname):
            return True
        return any(
            public_key_hash(certificate) in self.allowed_key_hashes
            for certificate in chain
        )
