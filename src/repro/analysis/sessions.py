"""Per-session store diffing — step one of the paper's methodology.

Each session's collected certificates are compared against the official
AOSP store for the session's Android version (§4.1), yielding the AOSP
count, the additional certificates and any missing ones. All downstream
analyses (Figures 1-2, §5's 39 % statistic, the rooted study) consume
these per-session diffs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netalyzr.dataset import NetalyzrDataset
from repro.netalyzr.session import MeasurementSession
from repro.rootstore.store import RootStore
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import equivalence_key, identity_key


@dataclass(frozen=True)
class SessionDiff:
    """A session's store relative to its reference AOSP distribution."""

    session: MeasurementSession
    aosp_count: int
    additional: tuple[Certificate, ...]
    missing_count: int

    @property
    def is_extended(self) -> bool:
        """True if the session carries certificates beyond AOSP."""
        return bool(self.additional)

    @property
    def additional_count(self) -> int:
        """Number of additional certificates."""
        return len(self.additional)


class SessionDiffer:
    """Diffs sessions against the per-version AOSP references.

    Reference identity sets are precomputed once per version; a diff is
    then two set lookups per certificate, which keeps 16k-session
    corpora fast.
    """

    def __init__(self, aosp_stores: dict[str, RootStore]):
        self._strict: dict[str, frozenset] = {}
        self._equivalent: dict[str, frozenset] = {}
        self._sizes: dict[str, int] = {}
        for version, store in aosp_stores.items():
            certificates = store.certificates(include_disabled=True)
            self._strict[version] = frozenset(identity_key(c) for c in certificates)
            self._equivalent[version] = frozenset(
                equivalence_key(c) for c in certificates
            )
            self._sizes[version] = len(certificates)

    def diff(self, session: MeasurementSession) -> SessionDiff:
        """Diff one session against its version's AOSP store."""
        version = session.os_version
        if version not in self._strict:
            raise KeyError(f"no AOSP reference for version {version!r}")
        strict = self._strict[version]
        equivalent = self._equivalent[version]
        additional: list[Certificate] = []
        aosp_count = 0
        for certificate in session.root_certificates:
            if identity_key(certificate) in strict:
                aosp_count += 1
            elif equivalence_key(certificate) in equivalent:
                aosp_count += 1  # §4.2: re-issued AOSP root, still "AOSP"
            else:
                additional.append(certificate)
        missing = self._sizes[version] - aosp_count
        return SessionDiff(
            session=session,
            aosp_count=aosp_count,
            additional=tuple(additional),
            missing_count=max(missing, 0),
        )

    def diff_all(self, dataset: NetalyzrDataset) -> list[SessionDiff]:
        """Diff every session in a dataset."""
        return [self.diff(session) for session in dataset.sessions]


def extended_fraction(diffs: list[SessionDiff]) -> float:
    """§5's headline: fraction of sessions with additional certificates."""
    if not diffs:
        raise ValueError("no session diffs")
    return sum(1 for diff in diffs if diff.is_extended) / len(diffs)


def handsets_missing_certificates(diffs: list[SessionDiff]) -> int:
    """§5: number of distinct handsets missing AOSP certificates.

    Degraded sessions (part of their upload was quarantined) are
    excluded: a certificate absent because the transport mangled it is
    not evidence the handset ships without it.
    """
    tuples = {
        diff.session.device_tuple
        for diff in diffs
        if diff.missing_count > 0 and not diff.session.degraded
    }
    return len(tuples)
