"""Per-session store diffing — step one of the paper's methodology.

Each session's collected certificates are compared against the official
AOSP store for the session's Android version (§4.1), yielding the AOSP
count, the additional certificates and any missing ones. All downstream
analyses (Figures 1-2, §5's 39 % statistic, the rooted study) consume
these per-session diffs.

``diff_all`` is wild-data safe: a session whose Android version has no
AOSP reference (an :class:`~repro.analysis.errors.AnalysisError`) is
dead-lettered in the dataset's quarantine instead of aborting the whole
corpus. It also fans out over a
:class:`repro.parallel.ParallelExecutor`; workers report additional
certificates as *indices* into each session's store, so only small
integer tuples cross the process boundary and the reassembled diffs
reference the parent's own certificate objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.errors import AnalysisError, UnknownVersionError
from repro.faults.quarantine import ErrorCategory
from repro.netalyzr.dataset import NetalyzrDataset
from repro.netalyzr.session import MeasurementSession
from repro.parallel.executor import ParallelExecutor
from repro.rootstore.store import RootStore
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import equivalence_key, identity_key


@dataclass(frozen=True, slots=True)
class SessionDiff:
    """A session's store relative to its reference AOSP distribution."""

    session: MeasurementSession
    aosp_count: int
    additional: tuple[Certificate, ...]
    missing_count: int

    @property
    def is_extended(self) -> bool:
        """True if the session carries certificates beyond AOSP."""
        return bool(self.additional)

    @property
    def additional_count(self) -> int:
        """Number of additional certificates."""
        return len(self.additional)


#: Picklable diff skeleton: (aosp_count, additional indices, missing).
_DiffParts = tuple[int, tuple[int, ...], int]


def _diff_chunk(payload: object, chunk: range) -> list:
    """Diff one chunk of sessions (worker entry point).

    Returns, per session, either ``("ok", parts)`` or
    ``("err", detail)`` — never raises, so one bad record cannot take
    down a worker (and with it the whole parallel map).
    """
    differ, sessions = payload
    out = []
    for index in chunk:
        try:
            out.append(("ok", differ._diff_parts(sessions[index])))
        except AnalysisError as exc:
            out.append(("err", str(exc)))
    return out


class SessionDiffer:
    """Diffs sessions against the per-version AOSP references.

    Reference identity sets are precomputed once per version; a diff is
    then two set lookups per certificate, which keeps 16k-session
    corpora fast.
    """

    def __init__(self, aosp_stores: dict[str, RootStore]):
        self._strict: dict[str, frozenset] = {}
        self._equivalent: dict[str, frozenset] = {}
        self._sizes: dict[str, int] = {}
        for version, store in aosp_stores.items():
            certificates = store.certificates(include_disabled=True)
            self._strict[version] = frozenset(identity_key(c) for c in certificates)
            self._equivalent[version] = frozenset(
                equivalence_key(c) for c in certificates
            )
            self._sizes[version] = len(certificates)

    def _diff_parts(self, session: MeasurementSession) -> _DiffParts:
        """The diff, with additional certificates as session indices."""
        version = session.os_version
        if version not in self._strict:
            raise UnknownVersionError(version, str(session.session_id))
        strict = self._strict[version]
        equivalent = self._equivalent[version]
        additional: list[int] = []
        aosp_count = 0
        for index, certificate in enumerate(session.root_certificates):
            if identity_key(certificate) in strict:
                aosp_count += 1
            elif equivalence_key(certificate) in equivalent:
                aosp_count += 1  # §4.2: re-issued AOSP root, still "AOSP"
            else:
                additional.append(index)
        missing = self._sizes[version] - aosp_count
        return aosp_count, tuple(additional), max(missing, 0)

    def _assemble(self, session: MeasurementSession, parts: _DiffParts) -> SessionDiff:
        aosp_count, additional_indices, missing_count = parts
        return SessionDiff(
            session=session,
            aosp_count=aosp_count,
            additional=tuple(
                session.root_certificates[index] for index in additional_indices
            ),
            missing_count=missing_count,
        )

    def diff(self, session: MeasurementSession) -> SessionDiff:
        """Diff one session against its version's AOSP store.

        Raises :class:`~repro.analysis.errors.UnknownVersionError` when
        the session's Android version has no AOSP reference.
        """
        return self._assemble(session, self._diff_parts(session))

    def diff_all(
        self,
        dataset: NetalyzrDataset,
        *,
        executor: ParallelExecutor | None = None,
    ) -> list[SessionDiff]:
        """Diff every session in a dataset.

        Sessions that fail with an :class:`AnalysisError` are
        dead-lettered in ``dataset.quarantine`` (category
        ``malformed-record``) and skipped, so a fault-injected corpus
        diffs end to end. Results and quarantine records are in session
        order at any worker count.
        """
        sessions = dataset.sessions
        if executor is None:
            executor = ParallelExecutor()
        outcomes = executor.map_chunked(
            _diff_chunk, (self, sessions), len(sessions)
        )
        diffs: list[SessionDiff] = []
        for session, (status, value) in zip(sessions, outcomes):
            if status == "ok":
                diffs.append(self._assemble(session, value))
            else:
                dataset.quarantine.add(
                    ErrorCategory.MALFORMED_RECORD,
                    f"session:{session.session_id}/diff",
                    value,
                )
        return diffs


def extended_fraction(diffs: list[SessionDiff]) -> float:
    """§5's headline: fraction of sessions with additional certificates."""
    if not diffs:
        raise ValueError("no session diffs")
    return sum(1 for diff in diffs if diff.is_extended) / len(diffs)


def handsets_missing_certificates(diffs: list[SessionDiff]) -> int:
    """§5: number of distinct handsets missing AOSP certificates.

    Degraded sessions (part of their upload was quarantined) are
    excluded: a certificate absent because the transport mangled it is
    not evidence the handset ships without it.
    """
    tuples = {
        diff.session.device_tuple
        for diff in diffs
        if diff.missing_count > 0 and not diff.session.degraded
    }
    return len(tuples)
