"""A single-file HTML report: all tables, figures and claims.

Bundles the text tables, the three SVG figures (inline) and the
paper-claims grading into one self-contained document — the artifact a
reproduction reviewer actually opens.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.analysis.paper import compare_study
from repro.analysis.report import (
    render_figure1,
    render_figure2,
    render_figure3,
    render_geography,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
)
from repro.analysis.study import StudyResult
from repro.analysis.svg import (
    render_figure1_svg,
    render_figure2_svg,
    render_figure3_svg,
)

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em auto;
       max-width: 1100px; color: #222; }
h1 { border-bottom: 2px solid #4477aa; padding-bottom: 0.2em; }
h2 { color: #4477aa; margin-top: 1.6em; }
pre { background: #f7f7f8; border: 1px solid #e0e0e3; border-radius: 4px;
      padding: 0.8em; overflow-x: auto; font-size: 12px; }
.claim-ok { color: #228833; }
.claim-fail { color: #ee6677; font-weight: bold; }
table.claims { border-collapse: collapse; font-size: 13px; }
table.claims td, table.claims th { border: 1px solid #ddd; padding: 3px 8px; }
.figure { overflow-x: auto; border: 1px solid #eee; margin: 1em 0; }
"""


def render_html_report(result: StudyResult, *, include_figures: bool = True) -> str:
    """The full study as one self-contained HTML document."""
    sections: list[str] = []

    def text_section(title: str, body: str) -> None:
        sections.append(f"<h2>{escape(title)}</h2>\n<pre>{escape(body)}</pre>")

    headline = (
        f"sessions={result.dataset.session_count:,}  "
        f"devices&ge;{result.estimated_devices:,}  "
        f"models={result.dataset.distinct_models()}  "
        f"unique certs={result.unique_certificates}  "
        f"extended={result.extended_fraction:.0%}  "
        f"rooted={result.rooted.rooted_session_fraction:.0%}"
    )
    sections.append(f"<p><b>{headline}</b></p>")

    for title, renderer in (
        ("Table 1 — root-store sizes", render_table1),
        ("Table 2 — top devices and manufacturers", render_table2),
        ("Table 3 — Notary certificates validated per store", render_table3),
        ("Table 4 — validate-nothing offsets per category", render_table4),
        ("Table 5 — rooted-device CAs", render_table5),
        ("Table 6 — interception domains", render_table6),
    ):
        text_section(title, renderer(result))

    if include_figures:
        for title, svg in (
            ("Figure 1 — AOSP vs additional certificates", render_figure1_svg(result.figure1)),
            ("Figure 2 — certificate × manufacturer/operator", render_figure2_svg(result.figure2)),
            ("Figure 3 — per-root validation ECDFs", render_figure3_svg(result.figure3)),
        ):
            sections.append(
                f"<h2>{escape(title)}</h2>\n<div class='figure'>{svg}</div>"
            )
    for title, renderer in (
        ("Figure 1 aggregates", render_figure1),
        ("Figure 2 aggregates", render_figure2),
        ("Figure 3 aggregates", render_figure3),
        ("Additional observations (§5.2)", render_geography),
    ):
        text_section(title, renderer(result))

    claims = compare_study(result)
    rows = []
    for claim in claims:
        css = "claim-ok" if claim.holds else "claim-fail"
        status = "OK" if claim.holds else "FAIL"
        rows.append(
            f"<tr><td>{escape(claim.name)}</td>"
            f"<td class='{css}'>{status}</td>"
            f"<td>{escape(repr(claim.paper))}</td>"
            f"<td>{escape(repr(claim.measured))}</td></tr>"
        )
    holding = sum(1 for claim in claims if claim.holds)
    sections.append(
        f"<h2>Paper claims ({holding}/{len(claims)} hold)</h2>\n"
        "<table class='claims'><tr><th>claim</th><th>status</th>"
        "<th>paper</th><th>measured</th></tr>\n" + "\n".join(rows) + "</table>"
    )

    body = "\n".join(sections)
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        "<title>A Tangled Mass — reproduction report</title>"
        f"<style>{_STYLE}</style></head><body>"
        "<h1>A Tangled Mass: The Android Root Certificate Stores — "
        "reproduction report</h1>"
        f"{body}</body></html>\n"
    )
