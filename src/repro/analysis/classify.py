"""Cross-store presence classification of additional certificates.

For each additional certificate, the paper asks: is it also in the
Mozilla and/or iOS7 stores, and does the Notary know it at all? This
module recovers Figure 2's four presence classes *mechanistically* —
from the stores and the Notary, not from the generator's ground truth.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.notary.database import NotaryDatabase
from repro.rootstore.catalog import StorePresence
from repro.rootstore.store import RootStore
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import equivalence_key, identity_key


@dataclass(frozen=True)
class ClassifiedCertificate:
    """One additional certificate with its recovered presence class."""

    certificate: Certificate
    presence: StorePresence
    in_mozilla: bool
    in_ios7: bool
    recorded_by_notary: bool


class PresenceClassifier:
    """Classifies certificates by §4.2 equivalence against the stores."""

    def __init__(
        self,
        mozilla: RootStore,
        ios7: RootStore,
        notary: NotaryDatabase | None = None,
    ):
        self._mozilla = frozenset(
            equivalence_key(c) for c in mozilla.certificates(include_disabled=True)
        )
        self._ios7 = frozenset(
            equivalence_key(c) for c in ios7.certificates(include_disabled=True)
        )
        self.notary = notary

    def classify(self, certificate: Certificate) -> ClassifiedCertificate:
        """Classify one certificate."""
        key = equivalence_key(certificate)
        in_mozilla = key in self._mozilla
        in_ios7 = key in self._ios7
        recorded = (
            self.notary.seen_in_traffic(certificate)
            if self.notary is not None
            else False
        )
        if in_mozilla and in_ios7:
            presence = StorePresence.MOZILLA_AND_IOS7
        elif in_mozilla:
            presence = StorePresence.MOZILLA_ONLY
        elif in_ios7:
            presence = StorePresence.IOS7_ONLY
        elif recorded:
            presence = StorePresence.ANDROID_ONLY
        else:
            presence = StorePresence.NOT_RECORDED
        return ClassifiedCertificate(
            certificate=certificate,
            presence=presence,
            in_mozilla=in_mozilla,
            in_ios7=in_ios7,
            recorded_by_notary=recorded,
        )

    def classify_unique(
        self, certificates: list[Certificate]
    ) -> dict[tuple[int, bytes], ClassifiedCertificate]:
        """Classify a certificate collection, deduplicated by identity."""
        out: dict[tuple[int, bytes], ClassifiedCertificate] = {}
        for certificate in certificates:
            key = identity_key(certificate)
            if key not in out:
                out[key] = self.classify(certificate)
        return out

    def presence_distribution(
        self, certificates: list[Certificate]
    ) -> dict[StorePresence, float]:
        """Figure 2's class fractions over distinct certificates."""
        classified = self.classify_unique(certificates)
        if not classified:
            return {}
        counts = Counter(item.presence for item in classified.values())
        total = len(classified)
        return {presence: counts.get(presence, 0) / total for presence in StorePresence}
