"""ECDFs and cumulative-coverage curves over per-root validation counts.

Figure 3 plots, per root-store category, the distribution of "number of
Notary certificates each root validates". Two views are provided:

* :func:`ecdf_points` — the plain ECDF; its value just below x=1 is the
  fraction of roots validating nothing (the y-offsets Table 4 reports);
* :func:`cumulative_coverage` — the greedy view in the figure caption
  ("progressively validate as we cumulatively consider each of its
  certificates, starting with the certificates that can validate the
  most"): coverage of the leaf population as roots are added
  best-first. The ordering ablation benchmark contrasts greedy with
  random ordering.
"""

from __future__ import annotations

from typing import Sequence


def ecdf_points(counts: Sequence[int]) -> list[tuple[int, float]]:
    """The empirical CDF of per-root counts as (x, F(x)) step points.

    Points are emitted at each distinct count value; ``F(x)`` is the
    fraction of roots validating at most ``x`` leaves.
    """
    if not counts:
        raise ValueError("no counts")
    ordered = sorted(counts)
    total = len(ordered)
    points: list[tuple[int, float]] = []
    seen = 0
    for index, value in enumerate(ordered):
        seen += 1
        is_last_of_value = index + 1 == total or ordered[index + 1] != value
        if is_last_of_value:
            points.append((value, seen / total))
    return points


def fraction_zero(counts: Sequence[int]) -> float:
    """The ECDF's y-offset: fraction of roots validating nothing."""
    if not counts:
        raise ValueError("no counts")
    return sum(1 for count in counts if count == 0) / len(counts)


def cumulative_coverage(
    counts: Sequence[int], *, greedy: bool = True
) -> list[tuple[int, int]]:
    """Cumulative leaves validated as roots are considered one by one.

    Returns (roots considered, total leaves validated) steps. With
    ``greedy`` the roots are taken most-validating-first (the paper's
    ordering); otherwise in given order. Counts are treated as disjoint
    (each leaf has one issuer), which holds for the simulated traffic.
    """
    ordered = sorted(counts, reverse=True) if greedy else list(counts)
    points: list[tuple[int, int]] = []
    running = 0
    for index, value in enumerate(ordered):
        running += value
        points.append((index + 1, running))
    return points


def knee_index(coverage: list[tuple[int, int]], threshold: float = 0.95) -> int:
    """How many roots are needed to reach *threshold* of total coverage.

    The paper's removal argument (§5.3, after Perl et al.): most roots
    contribute nothing — the knee of the greedy curve is early.
    """
    if not coverage:
        raise ValueError("empty coverage curve")
    total = coverage[-1][1]
    if total == 0:
        return 0
    for roots, covered in coverage:
        if covered >= threshold * total:
            return roots
    return coverage[-1][0]
