"""Rooted-handset analysis (§6, Table 5).

The paper analyzes rooted handsets separately "to avoid any bias, as
users and third-party apps have permissions to modify the root store",
then asks which certificates appear *exclusively* on rooted devices and
how many devices carry each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sessions import SessionDiff
from repro.notary.database import NotaryDatabase
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import identity_key


@dataclass(frozen=True)
class RootedCaFinding:
    """One Table 5 row: a CA found only on rooted handsets."""

    ca_label: str
    certificate: Certificate
    device_count: int
    in_notary_traffic: bool


@dataclass
class RootedDeviceAnalysis:
    """§6's statistics over a diffed session corpus."""

    rooted_session_fraction: float
    exclusive_session_fraction_of_rooted: float
    exclusive_session_fraction_of_all: float
    findings: list[RootedCaFinding]

    @classmethod
    def run(
        cls,
        diffs: list[SessionDiff],
        notary: NotaryDatabase | None = None,
    ) -> "RootedDeviceAnalysis":
        """Compute the full rooted-device analysis."""
        if not diffs:
            raise ValueError("no session diffs")
        rooted = [d for d in diffs if d.session.rooted]
        non_rooted = [d for d in diffs if not d.session.rooted]

        # Identity sets of additional certs per side.
        non_rooted_ids = {
            identity_key(c) for d in non_rooted for c in d.additional
        }
        # certs -> the rooted device tuples carrying them.
        carriers: dict[tuple[int, bytes], set] = {}
        examples: dict[tuple[int, bytes], Certificate] = {}
        for diff in rooted:
            for certificate in diff.additional:
                key = identity_key(certificate)
                if key in non_rooted_ids:
                    continue  # not exclusive to rooted handsets
                carriers.setdefault(key, set()).add(diff.session.device_tuple)
                examples.setdefault(key, certificate)

        exclusive_keys = set(carriers)
        exclusive_sessions = [
            diff
            for diff in rooted
            if any(identity_key(c) in exclusive_keys for c in diff.additional)
        ]

        findings = [
            RootedCaFinding(
                ca_label=_label(examples[key]),
                certificate=examples[key],
                device_count=len(devices),
                in_notary_traffic=(
                    notary.seen_in_traffic(examples[key])
                    if notary is not None
                    else False
                ),
            )
            for key, devices in carriers.items()
        ]
        findings.sort(key=lambda f: (-f.device_count, f.ca_label))

        return cls(
            rooted_session_fraction=len(rooted) / len(diffs),
            exclusive_session_fraction_of_rooted=(
                len(exclusive_sessions) / len(rooted) if rooted else 0.0
            ),
            exclusive_session_fraction_of_all=len(exclusive_sessions) / len(diffs),
            findings=findings,
        )

    def top_findings(self, limit: int = 5) -> list[RootedCaFinding]:
        """Table 5's rows (most devices first)."""
        return self.findings[:limit]


def _label(certificate: Certificate) -> str:
    """The CA label as Table 5 prints it (issuer CN, uppercased style)."""
    return certificate.subject.common_name or str(certificate.subject)
