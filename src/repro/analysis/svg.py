"""Render the paper's figures as standalone SVG documents.

Pure-stdlib SVG generation (no plotting dependency): Figure 1's
four-panel scatter, Figure 2's dot matrix and Figure 3's ECDF curves,
each styled after the originals closely enough to compare side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from xml.sax.saxutils import escape

from repro.analysis.figures import Figure1Point, Figure2Matrix, Figure3Series
from repro.rootstore.catalog import AOSP_SIZES, StorePresence

#: Categorical palette (colorblind-safe-ish).
PALETTE = (
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
    "#aa3377", "#bbbbbb", "#222255", "#225555",
)

_PRESENCE_COLORS = {
    StorePresence.MOZILLA_AND_IOS7: "#228833",
    StorePresence.MOZILLA_ONLY: "#88cc66",
    StorePresence.IOS7_ONLY: "#ccbb44",
    StorePresence.ANDROID_ONLY: "#4477aa",
    StorePresence.NOT_RECORDED: "#ee6677",
}


@dataclass
class SvgCanvas:
    """A tiny retained-mode SVG builder."""

    width: int
    height: int
    elements: list[str] = field(default_factory=list)

    def line(self, x1, y1, x2, y2, *, stroke="#333", width=1.0, dash=None):
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>'
        )

    def circle(self, cx, cy, r, *, fill="#4477aa", opacity=0.75, title=None):
        body = (
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{r:.2f}" fill="{fill}" '
            f'fill-opacity="{opacity}">'
        )
        if title:
            body += f"<title>{escape(title)}</title>"
        body += "</circle>"
        self.elements.append(body)

    def text(self, x, y, content, *, size=11, anchor="start", rotate=None, fill="#222"):
        transform = f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
        self.elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" fill="{fill}" '
            f'text-anchor="{anchor}" font-family="Helvetica, sans-serif"'
            f"{transform}>{escape(str(content))}</text>"
        )

    def polyline(self, points, *, stroke="#4477aa", width=1.5):
        body = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.elements.append(
            f'<polyline points="{body}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def rect(self, x, y, w, h, *, fill="none", stroke="#999"):
        self.elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" stroke="{stroke}"/>'
        )

    def render(self) -> str:
        body = "\n".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------


def render_figure1_svg(points: list[Figure1Point]) -> str:
    """Figure 1: four version panels of the AOSP-vs-additional scatter."""
    versions = ("4.1", "4.2", "4.3", "4.4")
    manufacturers = sorted({p.manufacturer for p in points})
    colors = {m: PALETTE[i % len(PALETTE)] for i, m in enumerate(manufacturers)}

    panel_w, panel_h = 260, 300
    margin = 60
    canvas = SvgCanvas(margin * 2 + panel_w * 4, panel_h + 130)

    x_min, x_max = 75, 160
    max_extra = max((p.additional_count for p in points), default=1)
    y_max = math.sqrt(max(max_extra, 50))

    def x_pos(panel, aosp):
        frac = (aosp - x_min) / (x_max - x_min)
        return margin + panel * panel_w + frac * (panel_w - 20)

    def y_pos(extra):
        return 40 + (1 - math.sqrt(extra) / y_max) * (panel_h - 40)

    for index, version in enumerate(versions):
        left = margin + index * panel_w
        canvas.rect(left, 40, panel_w - 20, panel_h - 40)
        canvas.text(left + (panel_w - 20) / 2, 30, version, anchor="middle", size=13)
        # official AOSP size marker (the dashed vertical line).
        official = AOSP_SIZES[version]
        canvas.line(
            x_pos(index, official), 40, x_pos(index, official), panel_h,
            stroke="#888", dash="4,3",
        )
        for tick in (80, 100, 120, 140):
            canvas.text(x_pos(index, tick), panel_h + 16, tick, anchor="middle", size=9)
    for tick in (1, 5, 10, 20, 40, 60):
        if math.sqrt(tick) <= y_max:
            canvas.text(margin - 8, y_pos(tick) + 3, tick, anchor="end", size=9)
    canvas.text(
        margin - 35, panel_h / 2 + 40, "Number of additional certificates (sqrt scale)",
        rotate=-90, anchor="middle", size=11,
    )
    canvas.text(
        margin + panel_w * 2, panel_h + 40, "Number of AOSP certificates",
        anchor="middle", size=11,
    )

    for point in points:
        if point.os_version not in versions:
            continue
        panel = versions.index(point.os_version)
        radius = 2 + math.log2(point.session_count + 1)
        canvas.circle(
            x_pos(panel, point.aosp_count),
            y_pos(point.additional_count),
            radius,
            fill=colors[point.manufacturer],
            title=f"{point.manufacturer} {point.os_version}: "
            f"{point.aosp_count}+{point.additional_count} "
            f"({point.session_count} sessions)",
        )

    legend_y = panel_h + 60
    for index, manufacturer in enumerate(manufacturers[:9]):
        x = margin + index * 120
        canvas.circle(x, legend_y, 5, fill=colors[manufacturer])
        canvas.text(x + 10, legend_y + 4, manufacturer, size=10)
    return canvas.render()


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------


def render_figure2_svg(matrix: Figure2Matrix, *, max_certs: int = 110) -> str:
    """Figure 2: the certificate x group dot matrix."""
    groups = matrix.groups()
    cert_labels = sorted({cell.cert_label for cell in matrix.cells})[:max_certs]
    label_index = {label: i for i, label in enumerate(cert_labels)}

    cell = 14
    left, top = 170, 260
    canvas = SvgCanvas(left + cell * len(cert_labels) + 40, top + cell * len(groups) + 60)

    for i, label in enumerate(cert_labels):
        canvas.text(
            left + i * cell + cell / 2, top - 6, label[:38],
            size=7, rotate=-60, anchor="start",
        )
    for j, group in enumerate(groups):
        canvas.text(left - 6, top + j * cell + cell * 0.7, group, size=9, anchor="end")
        canvas.line(left, top + j * cell, left + cell * len(cert_labels),
                    top + j * cell, stroke="#eee", width=0.5)

    for item in matrix.cells:
        if item.cert_label not in label_index:
            continue
        i = label_index[item.cert_label]
        j = groups.index(item.group)
        canvas.circle(
            left + i * cell + cell / 2,
            top + j * cell + cell / 2,
            1.5 + 4.5 * item.frequency,
            fill=_PRESENCE_COLORS[item.presence],
            title=f"{item.group} / {item.cert_label}: {item.frequency:.0%}",
        )

    legend_y = top + cell * len(groups) + 30
    x = left
    for presence, color in _PRESENCE_COLORS.items():
        canvas.circle(x, legend_y, 5, fill=color)
        canvas.text(x + 10, legend_y + 4, presence.value, size=9)
        x += 170
    return canvas.render()


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------


def render_figure3_svg(series: list[Figure3Series]) -> str:
    """Figure 3: ECDF curves on a log-x axis."""
    width, height = 720, 440
    left, right, top, bottom = 70, 250, 30, 50
    plot_w = width - left - right
    plot_h = height - top - bottom
    canvas = SvgCanvas(width, height)
    canvas.rect(left, top, plot_w, plot_h)

    max_x = max((s.points[-1][0] for s in series if s.points), default=10)
    log_max = math.log10(max(max_x, 10))

    def x_pos(count):
        value = math.log10(max(count, 0.8))  # 0 plotted just left of 10^0
        return left + (value / log_max) * plot_w

    def y_pos(fraction):
        return top + (1 - fraction) * plot_h

    for exponent in range(0, int(log_max) + 1):
        x = x_pos(10**exponent)
        canvas.line(x, top, x, top + plot_h, stroke="#eee", width=0.5)
        canvas.text(x, top + plot_h + 16, f"1e{exponent}", anchor="middle", size=9)
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        canvas.line(left, y_pos(frac), left + plot_w, y_pos(frac),
                    stroke="#eee", width=0.5)
        canvas.text(left - 8, y_pos(frac) + 3, f"{frac:.2f}", anchor="end", size=9)

    for index, item in enumerate(series):
        color = PALETTE[index % len(PALETTE)]
        points = [(x_pos(0), y_pos(item.zero_fraction))]
        for count, fraction in item.points:
            if count == 0:
                continue
            points.append((x_pos(count), points[-1][1]))
            points.append((x_pos(count), y_pos(fraction)))
        canvas.polyline(points, stroke=color)
        legend_y = top + 14 + index * 16
        canvas.line(width - right + 10, legend_y - 4, width - right + 30,
                    legend_y - 4, stroke=color, width=2)
        canvas.text(width - right + 35, legend_y, item.label[:34], size=9)

    canvas.text(left + plot_w / 2, height - 10,
                "Number of Notary certificates validated", anchor="middle", size=11)
    canvas.text(20, top + plot_h / 2, "ECDF", rotate=-90, anchor="middle", size=11)
    return canvas.render()
