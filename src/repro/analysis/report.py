"""Plain-text rendering of the study's tables and figures."""

from __future__ import annotations

from io import StringIO

from repro.analysis.study import StudyResult
from repro.rootstore.catalog import StorePresence

_PRESENCE_LABELS = {
    StorePresence.MOZILLA_AND_IOS7: "Mozilla and iOS7",
    StorePresence.MOZILLA_ONLY: "Mozilla only",
    StorePresence.IOS7_ONLY: "iOS7 only",
    StorePresence.ANDROID_ONLY: "Only Android",
    StorePresence.NOT_RECORDED: "Not recorded by Notary",
}


def _rule(out: StringIO, title: str) -> None:
    out.write(f"\n{title}\n{'-' * len(title)}\n")


def render_table1(result: StudyResult) -> str:
    """Table 1 as text."""
    out = StringIO()
    _rule(out, "Table 1: Number of certificates in different root stores")
    for name, size in result.table1:
        out.write(f"  {name:<12} {size:>4}\n")
    return out.getvalue()


def render_table2(result: StudyResult) -> str:
    """Table 2 as text."""
    out = StringIO()
    _rule(out, "Table 2: Top 5 mobile devices and manufacturers")
    out.write("  Devices:\n")
    for name, count in result.table2.top_devices:
        out.write(f"    {name:<28} {count:>6,}\n")
    out.write("  Manufacturers:\n")
    for name, count in result.table2.top_manufacturers:
        out.write(f"    {name:<28} {count:>6,}\n")
    return out.getvalue()


def render_table3(result: StudyResult) -> str:
    """Table 3 as text."""
    out = StringIO()
    _rule(out, "Table 3: Number of certificates validated by each root store")
    for name, count in result.table3:
        out.write(f"  {name:<12} {count:>8,}\n")
    return out.getvalue()


def render_table4(result: StudyResult) -> str:
    """Table 4 as text."""
    out = StringIO()
    _rule(out, "Table 4: Root certificates per category / % validating nothing")
    for row in result.table4:
        out.write(
            f"  {row.category:<44} {row.total_roots:>4} "
            f"{row.fraction_validating_nothing:>6.0%}\n"
        )
    return out.getvalue()


def render_table5(result: StudyResult) -> str:
    """Table 5 as text."""
    out = StringIO()
    _rule(out, "Table 5: CAs found exclusively on rooted devices")
    for label, devices in result.table5:
        out.write(f"  {label:<36} {devices:>4} devices\n")
    return out.getvalue()


def render_table6(result: StudyResult) -> str:
    """Table 6 as text."""
    out = StringIO()
    _rule(out, "Table 6: Domains intercepted / whitelisted by the HTTPS proxy")
    if result.table6 is None:
        out.write("  (no interception observed)\n")
        return out.getvalue()
    out.write(f"  Interceptor: {result.table6.interceptor}\n")
    out.write("  Intercepted:\n")
    for domain in result.table6.intercepted:
        out.write(f"    {domain}\n")
    out.write("  Whitelisted:\n")
    for domain in result.table6.whitelisted:
        out.write(f"    {domain}\n")
    return out.getvalue()


def render_figure1(result: StudyResult, max_rows: int = 12) -> str:
    """Figure 1's headline aggregates as text."""
    out = StringIO()
    _rule(out, "Figure 1: AOSP vs additional certificates (aggregates)")
    out.write(f"  sessions with extended stores: {result.extended_fraction:.0%}\n")
    out.write(f"  handsets missing AOSP certs:   {result.missing_cert_handsets}\n")
    heavy = [p for p in result.figure1 if p.additional_count > 40]
    heavy_sessions = sum(p.session_count for p in heavy)
    total_sessions = sum(p.session_count for p in result.figure1)
    out.write(
        f"  sessions with >40 additions:   {heavy_sessions} "
        f"({heavy_sessions / total_sessions:.1%})\n"
    )
    biggest = sorted(
        result.figure1, key=lambda p: p.additional_count, reverse=True
    )[:max_rows]
    out.write("  largest extensions (manufacturer/version -> +certs):\n")
    for point in biggest:
        out.write(
            f"    {point.manufacturer} {point.os_version}: "
            f"{point.aosp_count} AOSP + {point.additional_count} extra "
            f"({point.session_count} sessions)\n"
        )
    return out.getvalue()


def render_figure2(result: StudyResult, max_rows: int = 20) -> str:
    """Figure 2's class mix and densest rows as text."""
    out = StringIO()
    _rule(out, "Figure 2: additional certificates by manufacturer/operator")
    out.write("  presence classes over distinct additional certs:\n")
    for presence, fraction in result.figure2.class_fractions.items():
        out.write(f"    {_PRESENCE_LABELS[presence]:<24} {fraction:>6.1%}\n")
    groups = result.figure2.groups()
    out.write(f"  groups with >=10 modified sessions: {len(groups)}\n")
    for group in groups[:max_rows]:
        cells = result.figure2.cells_for_group(group)
        top = sorted(cells, key=lambda c: c.frequency, reverse=True)[:3]
        rendered = ", ".join(
            f"{cell.cert_label} ({cell.frequency:.0%})" for cell in top
        )
        out.write(f"    {group:<18} {len(cells):>3} certs; top: {rendered}\n")
    return out.getvalue()


def render_figure3(result: StudyResult) -> str:
    """Figure 3's per-category offsets and maxima as text."""
    out = StringIO()
    _rule(out, "Figure 3: ECDF of per-root validation counts")
    out.write(
        f"  {'category':<44} {'roots':>5} {'0-frac':>7} {'max':>7}\n"
    )
    for series in result.figure3:
        maximum = series.points[-1][0] if series.points else 0
        out.write(
            f"  {series.label:<44} {series.root_count:>5} "
            f"{series.zero_fraction:>6.0%} {maximum:>7,}\n"
        )
    return out.getvalue()


def render_geography(result: StudyResult, max_rows: int = 6) -> str:
    """§5.2's additional observations as text."""
    out = StringIO()
    _rule(out, "Additional observations (§5.2): geography and roaming")
    widest = sorted(
        result.footprints, key=lambda f: -f.country_spread
    )[:max_rows]
    out.write("  widest country spread:\n")
    for footprint in widest:
        out.write(
            f"    {footprint.label:<40} {footprint.country_spread} countries, "
            f"{footprint.session_count} sessions\n"
        )
    if result.roaming:
        out.write("  operator roots on foreign networks (roaming users):\n")
        for finding in result.roaming[:max_rows]:
            out.write(
                f"    {finding.cert_label:<40} issued for "
                f"{finding.issuing_operator}, seen on {finding.attached_operator} "
                f"({finding.session_count} sessions)\n"
            )
    return out.getvalue()


def render_ingest_health(result: StudyResult) -> str:
    """Ingest-health section: accepted/quarantined/retried counts.

    Rendered deterministically so a seeded fault-injection run
    reproduces the section byte for byte.
    """
    out = StringIO()
    _rule(out, "Ingest health")
    out.write(result.ingest_health.render(result.dataset.quarantine))
    out.write("\n")
    notary_quarantined = len(result.notary.quarantine)
    out.write(
        f"  notary leaves accepted {result.notary.total_certificates:>7,}"
        f"  (quarantined {notary_quarantined:,})\n"
    )
    if notary_quarantined:
        for category, count in sorted(
            result.notary.quarantine.counts().items(),
            key=lambda item: item[0].value,
        ):
            out.write(f"    {category.value:<22} {count:>5,}\n")
    return out.getvalue()


def render_fastpath(result: StudyResult) -> str:
    """Fast-path statistics of one run (cache hits, memo sizes).

    A thin view over the observability layer: ``run_study`` publishes
    these exact numbers into the run's metrics registry (as the
    ``crypto.verify_cache.*`` and ``notary.index.*`` gauges of the
    ``--metrics`` export), and this renderer formats the same deltas
    for humans. Deliberately *not* part of :func:`render_study_report`:
    the default report must be byte-identical across worker counts and
    fast-path modes, while these counters legitimately differ (a
    parallel run accumulates hits in forked children the parent never
    sees). Shown on demand via ``repro study --perf``.
    """
    out = StringIO()
    _rule(out, "Fast path: verification cache and Notary indexes")
    stats = result.fastpath
    if stats is None:
        out.write("  (fast-path statistics not captured)\n")
        return out.getvalue()
    state = "enabled" if stats.enabled else "disabled"
    out.write(f"  fast path {state}, workers={stats.workers}\n")
    out.write(f"  build cache: {stats.build_cache}\n")
    cache = stats.cache
    out.write(
        f"  verification cache: {cache.hits:,} hits / "
        f"{cache.misses:,} misses ({cache.hit_rate:.1%} hit rate), "
        f"{cache.entries:,} entries ({cache.entries_delta:+,} this run)\n"
    )
    for name, size in sorted(stats.notary_indexes.items()):
        out.write(f"  notary {name:<18} {size:>7,} memo(s)\n")
    return out.getvalue()


def _render_span(out: StringIO, span: dict, depth: int) -> None:
    """One line of the telemetry span tree, recursing into children."""
    extras = []
    attributes = span["attributes"]
    if "cache_hits" in attributes or "cache_misses" in attributes:
        extras.append(
            f"cache {attributes.get('cache_hits', 0):,}h/"
            f"{attributes.get('cache_misses', 0):,}m"
        )
    if span["dropped_events"]:
        extras.append(f"{span['dropped_events']:,} events dropped")
    suffix = f"  [{', '.join(extras)}]" if extras else ""
    width = max(36 - 2 * depth, len(span["name"]))
    out.write(
        f"    {'  ' * depth}{span['name']:<{width}} "
        f"{span['duration_s']:>9.3f}s{suffix}\n"
    )
    for child in span["children"]:
        _render_span(out, child, depth + 1)


def render_telemetry(result: StudyResult) -> str:
    """The run's pipeline telemetry: span tree, counters, histograms.

    Wall-clock durations differ run to run, so this section is never
    part of the default report; shown on demand via
    ``repro study --telemetry`` (the machine-readable twins are the
    ``--trace`` / ``--metrics`` JSON exports).
    """
    out = StringIO()
    _rule(out, "Pipeline telemetry")
    telemetry = result.telemetry
    if telemetry is None:
        out.write("  (telemetry not captured)\n")
        return out.getvalue()
    out.write("  span tree (wall seconds):\n")
    for span in telemetry.trace["spans"]:
        _render_span(out, span, 0)
    counters = telemetry.metrics["counters"]
    if counters:
        out.write("  counters:\n")
        for name, value in counters.items():
            out.write(f"    {name:<44} {value:>10,}\n")
    histograms = telemetry.metrics["histograms"]
    if histograms:
        out.write("  histograms:\n")
        for name, histogram in histograms.items():
            maximum = histogram["max"]
            out.write(
                f"    {name:<44} n={histogram['count']:,} "
                f"sum={histogram['sum']:.3f}s"
                + (f" max={maximum:.3f}s" if maximum is not None else "")
                + "\n"
            )
    return out.getvalue()


def render_study_report(result: StudyResult) -> str:
    """The full study report."""
    out = StringIO()
    out.write("A Tangled Mass: reproduction study report\n")
    out.write("==========================================\n")
    out.write(
        f"sessions={result.dataset.session_count:,} "
        f"devices>={result.estimated_devices:,} "
        f"models={result.dataset.distinct_models()} "
        f"unique certs={result.unique_certificates}\n"
    )
    out.write(
        f"rooted sessions={result.rooted.rooted_session_fraction:.0%} "
        f"rooted-exclusive={result.rooted.exclusive_session_fraction_of_rooted:.1%}"
        f" of rooted "
        f"({result.rooted.exclusive_session_fraction_of_all:.1%} of all)\n"
    )
    for renderer in (
        render_table1,
        render_table2,
        render_table3,
        render_table4,
        render_table5,
        render_table6,
        render_figure1,
        render_figure2,
        render_figure3,
        render_geography,
        render_ingest_health,
    ):
        out.write(renderer(result))
    return out.getvalue()
