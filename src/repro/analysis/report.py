"""Structured export and plain-text rendering of the study's results.

One representation drives everything: :func:`to_json` turns a completed
:class:`~repro.analysis.study.StudyResult` into a stable, schema-versioned
JSON document, and every text renderer in this module derives its output
from that document — never from the result object directly. The
``repro serve`` endpoints and the ``repro study --json`` export serialize
the same document, so the HTTP API, the JSON file and the text report can
never drift apart (the integration suite parity-tests all three).

Serialization is canonical (:func:`to_json_bytes`: sorted keys, 2-space
indent, trailing newline), so the same study config always produces the
same bytes — the property the server's ETags and the build-cache
byte-identity checks rely on.
"""

from __future__ import annotations

import json
from io import StringIO

from repro.analysis.study import StudyResult
from repro.faults.quarantine import IngestHealth
from repro.rootstore.catalog import StorePresence

#: Schema revision of the ``to_json`` document. Bump on any change that
#: is not purely additive.
STUDY_JSON_SCHEMA = 1

_PRESENCE_LABELS = {
    StorePresence.MOZILLA_AND_IOS7: "Mozilla and iOS7",
    StorePresence.MOZILLA_ONLY: "Mozilla only",
    StorePresence.IOS7_ONLY: "iOS7 only",
    StorePresence.ANDROID_ONLY: "Only Android",
    StorePresence.NOT_RECORDED: "Not recorded by Notary",
}

#: The same labels keyed by the serialized enum value, for renderers
#: that consume the JSON document (possibly after a round trip).
_PRESENCE_LABELS_BY_VALUE = {
    presence.value: label for presence, label in _PRESENCE_LABELS.items()
}


# ---------------------------------------------------------------------------
# the structured export
# ---------------------------------------------------------------------------


def _quarantine_json(quarantine) -> dict:
    """Total + per-category counts of one quarantine, sorted by category."""
    return {
        "total": len(quarantine),
        "categories": [
            [category.value, count]
            for category, count in sorted(
                quarantine.counts().items(), key=lambda item: item[0].value
            )
        ],
    }


def _json_config(result: StudyResult) -> dict:
    """The config knobs that determine the study's output.

    ``workers``/``fastpath``/``build_cache_dir`` are deliberately
    excluded: they change wall-clock time, never the results, and the
    export must be byte-identical across them.
    """
    config = result.config
    return {
        "seed": config.seed,
        "population_scale": config.population_scale,
        "notary_scale": config.notary_scale,
        "key_bits": config.key_bits,
        "fault_rate": config.fault_rate,
        "fault_seed": config.fault_seed,
    }


def _json_headline(result: StudyResult) -> dict:
    rooted = result.rooted
    return {
        "sessions": result.dataset.session_count,
        "estimated_devices": result.estimated_devices,
        "distinct_models": result.dataset.distinct_models(),
        "unique_certificates": result.unique_certificates,
        "extended_fraction": result.extended_fraction,
        "missing_cert_handsets": result.missing_cert_handsets,
        "rooted": {
            "session_fraction": rooted.rooted_session_fraction,
            "exclusive_of_rooted": rooted.exclusive_session_fraction_of_rooted,
            "exclusive_of_all": rooted.exclusive_session_fraction_of_all,
        },
    }


def _json_table1(result: StudyResult) -> list:
    return [[name, size] for name, size in result.table1]


def _json_table2(result: StudyResult) -> dict:
    return {
        "devices": [[name, count] for name, count in result.table2.top_devices],
        "manufacturers": [
            [name, count] for name, count in result.table2.top_manufacturers
        ],
    }


def _json_table3(result: StudyResult) -> list:
    return [[name, count] for name, count in result.table3]


def _json_table4(result: StudyResult) -> list:
    return [
        {
            "category": row.category,
            "total_roots": row.total_roots,
            "fraction_validating_nothing": row.fraction_validating_nothing,
        }
        for row in result.table4
    ]


def _json_table5(result: StudyResult) -> list:
    return [[label, devices] for label, devices in result.table5]


def _json_table6(result: StudyResult) -> dict | None:
    if result.table6 is None:
        return None
    return {
        "interceptor": result.table6.interceptor,
        "intercepted": list(result.table6.intercepted),
        "whitelisted": list(result.table6.whitelisted),
    }


def _json_figure1(result: StudyResult) -> dict:
    return {
        "extended_fraction": result.extended_fraction,
        "missing_cert_handsets": result.missing_cert_handsets,
        "points": [
            {
                "manufacturer": point.manufacturer,
                "os_version": point.os_version,
                "aosp_count": point.aosp_count,
                "additional_count": point.additional_count,
                "session_count": point.session_count,
            }
            for point in result.figure1
        ],
    }


def _json_figure2(result: StudyResult) -> dict:
    figure = result.figure2
    return {
        "class_fractions": [
            [presence.value, fraction]
            for presence, fraction in figure.class_fractions.items()
        ],
        "min_group_sessions": figure.min_group_sessions,
        "cells": [
            {
                "group": cell.group,
                "group_kind": cell.group_kind,
                "cert_label": cell.cert_label,
                "cert_short_id": cell.cert_short_id,
                "frequency": cell.frequency,
                "presence": cell.presence.value,
            }
            for cell in figure.cells
        ],
    }


def _json_figure3(result: StudyResult) -> list:
    return [
        {
            "label": series.label,
            "root_count": series.root_count,
            "zero_fraction": series.zero_fraction,
            "points": [[count, fraction] for count, fraction in series.points],
        }
        for series in result.figure3
    ]


def _json_geography(result: StudyResult) -> dict:
    return {
        "footprints": [
            {
                "label": footprint.label,
                "countries": sorted(footprint.countries),
                "country_spread": footprint.country_spread,
                "session_count": footprint.session_count,
            }
            for footprint in result.footprints
        ],
        "roaming": [
            {
                "cert_label": finding.cert_label,
                "issuing_operator": finding.issuing_operator,
                "attached_operator": finding.attached_operator,
                "session_count": finding.session_count,
            }
            for finding in result.roaming
        ],
    }


def _json_ingest(result: StudyResult) -> dict:
    return {
        "health": result.ingest_health.to_dict(),
        "dataset_quarantine": _quarantine_json(result.dataset.quarantine),
        "notary": {
            "leaves_accepted": result.notary.total_certificates,
            "quarantine": _quarantine_json(result.notary.quarantine),
        },
    }


def _json_scenarios(result: StudyResult) -> dict | None:
    """The abuse-scenario section: ground truth, attribution, audit.

    None on scenario-free runs — the key is omitted entirely so the
    stock export (and every ETag derived from it) stays byte-identical
    to a pre-scenario build.
    """
    fleet = result.scenarios
    if fleet is None:
        return None
    from repro.analysis.attribution import score_attribution

    section: dict = {
        "fleet": fleet.to_json(),
        "attribution": (
            result.attribution.to_json() if result.attribution is not None else None
        ),
        "score": (
            score_attribution(result.attribution, fleet).to_dict()
            if result.attribution is not None
            else None
        ),
        "fleet_audit": (
            result.fleet_audit.to_dict() if result.fleet_audit is not None else None
        ),
    }
    return section


def to_json(result: StudyResult) -> dict:
    """The study's stable structured export (schema
    :data:`STUDY_JSON_SCHEMA`).

    Contains only plain JSON types, preserves every ordering the text
    renderers depend on (lists, never order-sensitive dicts), and is
    byte-identical — via :func:`to_json_bytes` — across worker counts,
    fast-path modes and build-cache states.
    """
    document = {
        "schema": STUDY_JSON_SCHEMA,
        "config": _json_config(result),
        "headline": _json_headline(result),
        "tables": {
            "1": _json_table1(result),
            "2": _json_table2(result),
            "3": _json_table3(result),
            "4": _json_table4(result),
            "5": _json_table5(result),
            "6": _json_table6(result),
        },
        "figures": {
            "1": _json_figure1(result),
            "2": _json_figure2(result),
            "3": _json_figure3(result),
        },
        "geography": _json_geography(result),
        "ingest": _json_ingest(result),
    }
    scenarios = _json_scenarios(result)
    if scenarios is not None:
        document["scenarios"] = scenarios
    return document


def to_json_bytes(payload: object) -> bytes:
    """Canonical serialization of a JSON payload (or sub-payload).

    Sorted keys, two-space indent, one trailing newline: the same
    payload always produces the same bytes, so file exports diff
    cleanly and the server's ETags are deterministic.
    """
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")


# ---------------------------------------------------------------------------
# text renderers (all consume the JSON document, never the result)
# ---------------------------------------------------------------------------


def _rule(out: StringIO, title: str) -> None:
    out.write(f"\n{title}\n{'-' * len(title)}\n")


def _render_table1(section: list) -> str:
    out = StringIO()
    _rule(out, "Table 1: Number of certificates in different root stores")
    for name, size in section:
        out.write(f"  {name:<12} {size:>4}\n")
    return out.getvalue()


def _render_table2(section: dict) -> str:
    out = StringIO()
    _rule(out, "Table 2: Top 5 mobile devices and manufacturers")
    out.write("  Devices:\n")
    for name, count in section["devices"]:
        out.write(f"    {name:<28} {count:>6,}\n")
    out.write("  Manufacturers:\n")
    for name, count in section["manufacturers"]:
        out.write(f"    {name:<28} {count:>6,}\n")
    return out.getvalue()


def _render_table3(section: list) -> str:
    out = StringIO()
    _rule(out, "Table 3: Number of certificates validated by each root store")
    for name, count in section:
        out.write(f"  {name:<12} {count:>8,}\n")
    return out.getvalue()


def _render_table4(section: list) -> str:
    out = StringIO()
    _rule(out, "Table 4: Root certificates per category / % validating nothing")
    for row in section:
        out.write(
            f"  {row['category']:<44} {row['total_roots']:>4} "
            f"{row['fraction_validating_nothing']:>6.0%}\n"
        )
    return out.getvalue()


def _render_table5(section: list) -> str:
    out = StringIO()
    _rule(out, "Table 5: CAs found exclusively on rooted devices")
    for label, devices in section:
        out.write(f"  {label:<36} {devices:>4} devices\n")
    return out.getvalue()


def _render_table6(section: dict | None) -> str:
    out = StringIO()
    _rule(out, "Table 6: Domains intercepted / whitelisted by the HTTPS proxy")
    if section is None:
        out.write("  (no interception observed)\n")
        return out.getvalue()
    out.write(f"  Interceptor: {section['interceptor']}\n")
    out.write("  Intercepted:\n")
    for domain in section["intercepted"]:
        out.write(f"    {domain}\n")
    out.write("  Whitelisted:\n")
    for domain in section["whitelisted"]:
        out.write(f"    {domain}\n")
    return out.getvalue()


def _render_figure1(section: dict, max_rows: int = 12) -> str:
    out = StringIO()
    _rule(out, "Figure 1: AOSP vs additional certificates (aggregates)")
    out.write(
        f"  sessions with extended stores: {section['extended_fraction']:.0%}\n"
    )
    out.write(
        f"  handsets missing AOSP certs:   {section['missing_cert_handsets']}\n"
    )
    points = section["points"]
    heavy = [p for p in points if p["additional_count"] > 40]
    heavy_sessions = sum(p["session_count"] for p in heavy)
    total_sessions = sum(p["session_count"] for p in points)
    out.write(
        f"  sessions with >40 additions:   {heavy_sessions} "
        f"({heavy_sessions / total_sessions:.1%})\n"
    )
    biggest = sorted(
        points, key=lambda p: p["additional_count"], reverse=True
    )[:max_rows]
    out.write("  largest extensions (manufacturer/version -> +certs):\n")
    for point in biggest:
        out.write(
            f"    {point['manufacturer']} {point['os_version']}: "
            f"{point['aosp_count']} AOSP + {point['additional_count']} extra "
            f"({point['session_count']} sessions)\n"
        )
    return out.getvalue()


def _render_figure2(section: dict, max_rows: int = 20) -> str:
    out = StringIO()
    _rule(out, "Figure 2: additional certificates by manufacturer/operator")
    out.write("  presence classes over distinct additional certs:\n")
    for presence_value, fraction in section["class_fractions"]:
        out.write(
            f"    {_PRESENCE_LABELS_BY_VALUE[presence_value]:<24} {fraction:>6.1%}\n"
        )
    cells = section["cells"]
    groups = sorted({cell["group"] for cell in cells})
    out.write(f"  groups with >=10 modified sessions: {len(groups)}\n")
    for group in groups[:max_rows]:
        group_cells = [cell for cell in cells if cell["group"] == group]
        top = sorted(group_cells, key=lambda c: c["frequency"], reverse=True)[:3]
        rendered = ", ".join(
            f"{cell['cert_label']} ({cell['frequency']:.0%})" for cell in top
        )
        out.write(f"    {group:<18} {len(group_cells):>3} certs; top: {rendered}\n")
    return out.getvalue()


def _render_figure3(section: list) -> str:
    out = StringIO()
    _rule(out, "Figure 3: ECDF of per-root validation counts")
    out.write(
        f"  {'category':<44} {'roots':>5} {'0-frac':>7} {'max':>7}\n"
    )
    for series in section:
        maximum = series["points"][-1][0] if series["points"] else 0
        out.write(
            f"  {series['label']:<44} {series['root_count']:>5} "
            f"{series['zero_fraction']:>6.0%} {maximum:>7,}\n"
        )
    return out.getvalue()


def _render_geography(section: dict, max_rows: int = 6) -> str:
    out = StringIO()
    _rule(out, "Additional observations (§5.2): geography and roaming")
    widest = sorted(
        section["footprints"], key=lambda f: -f["country_spread"]
    )[:max_rows]
    out.write("  widest country spread:\n")
    for footprint in widest:
        out.write(
            f"    {footprint['label']:<40} {footprint['country_spread']} countries, "
            f"{footprint['session_count']} sessions\n"
        )
    if section["roaming"]:
        out.write("  operator roots on foreign networks (roaming users):\n")
        for finding in section["roaming"][:max_rows]:
            out.write(
                f"    {finding['cert_label']:<40} issued for "
                f"{finding['issuing_operator']}, seen on "
                f"{finding['attached_operator']} "
                f"({finding['session_count']} sessions)\n"
            )
    return out.getvalue()


def _render_ingest(section: dict) -> str:
    out = StringIO()
    _rule(out, "Ingest health")
    out.write(IngestHealth.from_dict(section["health"]).render())
    dataset_quarantine = section["dataset_quarantine"]
    if dataset_quarantine["total"]:
        out.write(
            f"\n  quarantined records    {dataset_quarantine['total']:>7,}"
        )
        for category, count in dataset_quarantine["categories"]:
            out.write(f"\n    {category:<22} {count:>5,}")
    out.write("\n")
    notary = section["notary"]
    notary_quarantined = notary["quarantine"]["total"]
    out.write(
        f"  notary leaves accepted {notary['leaves_accepted']:>7,}"
        f"  (quarantined {notary_quarantined:,})\n"
    )
    if notary_quarantined:
        for category, count in notary["quarantine"]["categories"]:
            out.write(f"    {category:<22} {count:>5,}\n")
    return out.getvalue()


def _render_scenarios(section: dict) -> str:
    out = StringIO()
    _rule(out, "Abuse scenarios: injected campaigns, attribution, audit")
    fleet = section["fleet"]
    out.write(f"  scenario seed: {fleet['seed']}\n")
    out.write("  injected campaigns (ground truth):\n")
    for campaign in fleet["campaigns"]:
        tag = "benign" if campaign["benign"] else "malicious"
        out.write(
            f"    {campaign['name']:<16} {campaign['family']:<19} {tag:<9} "
            f"{campaign['device_count']:>4} devices / "
            f"{campaign['session_count']:>5} sessions\n"
        )
    attribution = section["attribution"]
    if attribution is not None:
        out.write(
            f"  attribution: {attribution['campaign_count']} campaigns over "
            f"{attribution['intercepted_sessions']} intercepted sessions\n"
        )
        for campaign in attribution["campaigns"]:
            out.write(
                f"    [{campaign['kind']:<16}] {campaign['organization']:<28} "
                f"{campaign['session_count']:>5} sessions, "
                f"pin saved {campaign['pinning_saved']}, "
                f"whitelist defeated {campaign['whitelist_defeated']}\n"
            )
    score = section["score"]
    if score is not None:
        out.write(
            f"  scoring vs ground truth: precision {score['precision']:.2f}, "
            f"recall {score['recall']:.2f} "
            f"(tp={score['true_positives']} fp={score['false_positives']} "
            f"fn={score['false_negatives']})\n"
        )
    audit = section["fleet_audit"]
    if audit is not None:
        out.write(
            f"  fleet audit: {audit['device_count']} devices, "
            f"critical fraction {audit['critical_fraction']:.1%}\n"
        )
        by_severity = audit["devices_by_max_severity"]
        # Fixed severity order: the document's dict ordering differs
        # between a fresh export and a JSON round trip.
        for severity in ("CRITICAL", "HIGH", "MEDIUM", "LOW", "INFO"):
            if severity in by_severity:
                out.write(f"    {severity:<8} {by_severity[severity]:>5}\n")
    return out.getvalue()


def _render_headline(document: dict) -> str:
    headline = document["headline"]
    rooted = headline["rooted"]
    out = StringIO()
    out.write("A Tangled Mass: reproduction study report\n")
    out.write("==========================================\n")
    out.write(
        f"sessions={headline['sessions']:,} "
        f"devices>={headline['estimated_devices']:,} "
        f"models={headline['distinct_models']} "
        f"unique certs={headline['unique_certificates']}\n"
    )
    out.write(
        f"rooted sessions={rooted['session_fraction']:.0%} "
        f"rooted-exclusive={rooted['exclusive_of_rooted']:.1%}"
        f" of rooted "
        f"({rooted['exclusive_of_all']:.1%} of all)\n"
    )
    return out.getvalue()


def render_report_from_json(document: dict) -> str:
    """The full study report, rendered from a :func:`to_json` document.

    Accepts the document either freshly built or after a JSON round
    trip — both render byte-identically.
    """
    tables, figures = document["tables"], document["figures"]
    out = StringIO()
    out.write(_render_headline(document))
    out.write(_render_table1(tables["1"]))
    out.write(_render_table2(tables["2"]))
    out.write(_render_table3(tables["3"]))
    out.write(_render_table4(tables["4"]))
    out.write(_render_table5(tables["5"]))
    out.write(_render_table6(tables["6"]))
    out.write(_render_figure1(figures["1"]))
    out.write(_render_figure2(figures["2"]))
    out.write(_render_figure3(figures["3"]))
    out.write(_render_geography(document["geography"]))
    out.write(_render_ingest(document["ingest"]))
    if "scenarios" in document:
        out.write(_render_scenarios(document["scenarios"]))
    return out.getvalue()


# ---------------------------------------------------------------------------
# StudyResult-facing wrappers (the public per-section renderers)
# ---------------------------------------------------------------------------


def render_table1(result: StudyResult) -> str:
    """Table 1 as text."""
    return _render_table1(_json_table1(result))


def render_table2(result: StudyResult) -> str:
    """Table 2 as text."""
    return _render_table2(_json_table2(result))


def render_table3(result: StudyResult) -> str:
    """Table 3 as text."""
    return _render_table3(_json_table3(result))


def render_table4(result: StudyResult) -> str:
    """Table 4 as text."""
    return _render_table4(_json_table4(result))


def render_table5(result: StudyResult) -> str:
    """Table 5 as text."""
    return _render_table5(_json_table5(result))


def render_table6(result: StudyResult) -> str:
    """Table 6 as text."""
    return _render_table6(_json_table6(result))


def render_figure1(result: StudyResult, max_rows: int = 12) -> str:
    """Figure 1's headline aggregates as text."""
    return _render_figure1(_json_figure1(result), max_rows)


def render_figure2(result: StudyResult, max_rows: int = 20) -> str:
    """Figure 2's class mix and densest rows as text."""
    return _render_figure2(_json_figure2(result), max_rows)


def render_figure3(result: StudyResult) -> str:
    """Figure 3's per-category offsets and maxima as text."""
    return _render_figure3(_json_figure3(result))


def render_geography(result: StudyResult, max_rows: int = 6) -> str:
    """§5.2's additional observations as text."""
    return _render_geography(_json_geography(result), max_rows)


def render_ingest_health(result: StudyResult) -> str:
    """Ingest-health section: accepted/quarantined/retried counts.

    Rendered deterministically so a seeded fault-injection run
    reproduces the section byte for byte.
    """
    return _render_ingest(_json_ingest(result))


def render_study_report(result: StudyResult) -> str:
    """The full study report."""
    return render_report_from_json(to_json(result))


# ---------------------------------------------------------------------------
# fast-path / telemetry views (bookkeeping, not part of the stable export)
# ---------------------------------------------------------------------------


def render_fastpath(result: StudyResult) -> str:
    """Fast-path statistics of one run (cache hits, memo sizes).

    A thin view over the observability layer: ``run_study`` publishes
    these exact numbers into the run's metrics registry (as the
    ``crypto.verify_cache.*`` and ``notary.index.*`` gauges of the
    ``--metrics`` export), and this renderer formats the same deltas
    for humans. Deliberately *not* part of :func:`render_study_report`:
    the default report must be byte-identical across worker counts and
    fast-path modes, while these counters legitimately differ (a
    parallel run accumulates hits in forked children the parent never
    sees). Shown on demand via ``repro study --perf``.
    """
    out = StringIO()
    _rule(out, "Fast path: verification cache and Notary indexes")
    stats = result.fastpath
    if stats is None:
        out.write("  (fast-path statistics not captured)\n")
        return out.getvalue()
    state = "enabled" if stats.enabled else "disabled"
    out.write(f"  fast path {state}, workers={stats.workers}\n")
    out.write(f"  build cache: {stats.build_cache}\n")
    cache = stats.cache
    out.write(
        f"  verification cache: {cache.hits:,} hits / "
        f"{cache.misses:,} misses ({cache.hit_rate:.1%} hit rate), "
        f"{cache.entries:,} entries ({cache.entries_delta:+,} this run)\n"
    )
    for name, size in sorted(stats.notary_indexes.items()):
        out.write(f"  notary {name:<18} {size:>7,} memo(s)\n")
    return out.getvalue()


def _render_span(out: StringIO, span: dict, depth: int) -> None:
    """One line of the telemetry span tree, recursing into children."""
    extras = []
    attributes = span["attributes"]
    if "cache_hits" in attributes or "cache_misses" in attributes:
        extras.append(
            f"cache {attributes.get('cache_hits', 0):,}h/"
            f"{attributes.get('cache_misses', 0):,}m"
        )
    if span["dropped_events"]:
        extras.append(f"{span['dropped_events']:,} events dropped")
    suffix = f"  [{', '.join(extras)}]" if extras else ""
    width = max(36 - 2 * depth, len(span["name"]))
    out.write(
        f"    {'  ' * depth}{span['name']:<{width}} "
        f"{span['duration_s']:>9.3f}s{suffix}\n"
    )
    for child in span["children"]:
        _render_span(out, child, depth + 1)


def render_telemetry(result: StudyResult) -> str:
    """The run's pipeline telemetry: span tree, counters, histograms.

    Wall-clock durations differ run to run, so this section is never
    part of the default report; shown on demand via
    ``repro study --telemetry`` (the machine-readable twins are the
    ``--trace`` / ``--metrics`` JSON exports).
    """
    out = StringIO()
    _rule(out, "Pipeline telemetry")
    telemetry = result.telemetry
    if telemetry is None:
        out.write("  (telemetry not captured)\n")
        return out.getvalue()
    out.write("  span tree (wall seconds):\n")
    for span in telemetry.trace["spans"]:
        _render_span(out, span, 0)
    counters = telemetry.metrics["counters"]
    if counters:
        out.write("  counters:\n")
        for name, value in counters.items():
            out.write(f"    {name:<44} {value:>10,}\n")
    histograms = telemetry.metrics["histograms"]
    if histograms:
        out.write("  histograms:\n")
        for name, histogram in histograms.items():
            maximum = histogram["max"]
            out.write(
                f"    {name:<44} n={histogram['count']:,} "
                f"sum={histogram['sum']:.3f}s"
                + (f" max={maximum:.3f}s" if maximum is not None else "")
                + "\n"
            )
    return out.getvalue()
