"""Statistical helpers for measurement fractions.

The paper reports point estimates (39 % extended, 24 % rooted, ...).
For a measurement library, every such fraction should carry an
uncertainty estimate; this module provides Wilson score intervals and
cluster-aware bootstrap resampling (sessions cluster by handset, so
naive binomial intervals understate variance).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence

#: z value for 95% intervals.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class Estimate:
    """A point estimate with a confidence interval."""

    value: float
    low: float
    high: float
    confidence: float = 0.95

    def __contains__(self, other: float) -> bool:
        return self.low <= other <= self.high

    def __str__(self) -> str:
        return f"{self.value:.3f} [{self.low:.3f}, {self.high:.3f}]"


def wilson_interval(successes: int, total: int, *, z: float = _Z95) -> Estimate:
    """The Wilson score interval for a binomial proportion."""
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= successes <= total:
        raise ValueError("successes must be within [0, total]")
    p = successes / total
    denominator = 1 + z * z / total
    center = (p + z * z / (2 * total)) / denominator
    spread = (
        z
        * math.sqrt(p * (1 - p) / total + z * z / (4 * total * total))
        / denominator
    )
    return Estimate(value=p, low=max(0.0, center - spread), high=min(1.0, center + spread))


def bootstrap_fraction(
    clusters: Sequence[tuple[int, int]],
    *,
    rounds: int = 1000,
    seed: int = 7,
    confidence: float = 0.95,
) -> Estimate:
    """Cluster bootstrap for a fraction.

    ``clusters`` holds per-cluster (successes, total) pairs — e.g. per
    handset (extended sessions, total sessions). Clusters are resampled
    with replacement; the interval is the percentile interval of the
    resampled fractions.
    """
    if not clusters:
        raise ValueError("no clusters")
    total_successes = sum(s for s, _ in clusters)
    grand_total = sum(t for _, t in clusters)
    if grand_total == 0:
        raise ValueError("clusters contain no observations")
    rng = random.Random(seed)
    samples = []
    n = len(clusters)
    for _ in range(rounds):
        successes = 0
        total = 0
        for _ in range(n):
            s, t = clusters[rng.randrange(n)]
            successes += s
            total += t
        if total:
            samples.append(successes / total)
    samples.sort()
    alpha = (1 - confidence) / 2
    low_index = int(alpha * len(samples))
    high_index = min(len(samples) - 1, int((1 - alpha) * len(samples)))
    return Estimate(
        value=total_successes / grand_total,
        low=samples[low_index],
        high=samples[high_index],
        confidence=confidence,
    )


def session_fraction_estimate(
    diffs,
    predicate: Callable,
    *,
    rounds: int = 1000,
    seed: int = 7,
) -> Estimate:
    """Cluster-bootstrap a per-session fraction, clustering by handset.

    ``predicate`` maps a SessionDiff to bool (e.g. ``lambda d:
    d.is_extended``); clustering uses the privacy-preserving device
    tuple, exactly as the paper's device estimation does.
    """
    clusters: dict[object, list[bool]] = {}
    for diff in diffs:
        clusters.setdefault(diff.session.device_tuple, []).append(
            bool(predicate(diff))
        )
    pairs = [(sum(values), len(values)) for values in clusters.values()]
    return bootstrap_fraction(pairs, rounds=rounds, seed=seed)
