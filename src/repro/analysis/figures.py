"""Data series for the paper's three figures."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.analysis.classify import PresenceClassifier
from repro.analysis.ecdf import ecdf_points, fraction_zero
from repro.analysis.sessions import SessionDiff
from repro.notary.database import NotaryDatabase
from repro.notary.validation import validation_counts_by_root
from repro.parallel.executor import ParallelExecutor
from repro.rootstore.catalog import StorePresence
from repro.rootstore.store import RootStore
from repro.x509.fingerprint import equivalence_key, identity_key


# ---------------------------------------------------------------------------
# Figure 1 -- scatter of AOSP vs additional certificates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure1Point:
    """One marker: a (manufacturer, version, aosp, additional) bucket."""

    manufacturer: str
    os_version: str
    aosp_count: int
    additional_count: int
    session_count: int


def figure1_scatter(diffs: list[SessionDiff]) -> list[Figure1Point]:
    """Group sessions into Figure 1's scatter markers."""
    buckets: Counter = Counter()
    for diff in diffs:
        buckets[
            (
                diff.session.manufacturer,
                diff.session.os_version,
                diff.aosp_count,
                diff.additional_count,
            )
        ] += 1
    return [
        Figure1Point(
            manufacturer=manufacturer,
            os_version=version,
            aosp_count=aosp,
            additional_count=additional,
            session_count=count,
        )
        for (manufacturer, version, aosp, additional), count in sorted(
            buckets.items()
        )
    ]


# ---------------------------------------------------------------------------
# Figure 2 -- certificate × (manufacturer / operator) frequency matrix
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure2Cell:
    """One marker: an additional cert seen in a device group."""

    group: str  # "SAMSUNG 4.1" or "VERIZON(US)"
    group_kind: str  # "manufacturer" or "operator"
    cert_label: str
    cert_short_id: str
    frequency: float  # sessions with this cert / modified sessions in group
    presence: StorePresence


@dataclass
class Figure2Matrix:
    """The full Figure 2 dataset."""

    cells: list[Figure2Cell] = field(default_factory=list)
    class_fractions: dict[StorePresence, float] = field(default_factory=dict)
    min_group_sessions: int = 10

    def groups(self) -> list[str]:
        """All group labels with data."""
        return sorted({cell.group for cell in self.cells})

    def cells_for_group(self, group: str) -> list[Figure2Cell]:
        """The cells in one row."""
        return [cell for cell in self.cells if cell.group == group]


def figure2_matrix(
    diffs: list[SessionDiff],
    classifier: PresenceClassifier,
    *,
    min_group_sessions: int = 10,
) -> Figure2Matrix:
    """Build Figure 2: per-group frequencies of each additional cert.

    Groups with fewer than *min_group_sessions* modified sessions are
    omitted, as in the paper. Only non-rooted sessions participate
    (rooted handsets are analyzed separately, §4.1).
    """
    modified = [d for d in diffs if d.is_extended and not d.session.rooted]

    group_sessions: dict[tuple[str, str], int] = Counter()
    cert_sessions: dict[tuple[str, str], Counter] = defaultdict(Counter)
    examples: dict[tuple[int, bytes], object] = {}

    for diff in modified:
        session = diff.session
        groups = [
            ("manufacturer", f"{session.manufacturer} {session.os_version}"),
            ("operator", session.operator),
        ]
        for kind, group in groups:
            if group == "WIFI":
                continue
            group_sessions[(kind, group)] += 1
            for certificate in diff.additional:
                key = identity_key(certificate)
                examples.setdefault(key, certificate)
                cert_sessions[(kind, group)][key] += 1

    classified = {
        key: classifier.classify(certificate)
        for key, certificate in examples.items()
    }

    cells: list[Figure2Cell] = []
    for (kind, group), total in group_sessions.items():
        if total < min_group_sessions:
            continue
        for key, count in cert_sessions[(kind, group)].items():
            certificate = examples[key]
            from repro.x509.fingerprint import CertificateIdentity

            cells.append(
                Figure2Cell(
                    group=group,
                    group_kind=kind,
                    cert_label=certificate.subject.common_name
                    or str(certificate.subject),
                    cert_short_id=CertificateIdentity.of(certificate).short,
                    frequency=count / total,
                    presence=classified[key].presence,
                )
            )

    class_counts = Counter(item.presence for item in classified.values())
    total_certs = len(classified) or 1
    fractions = {
        presence: class_counts.get(presence, 0) / total_certs
        for presence in StorePresence
    }
    return Figure2Matrix(
        cells=sorted(cells, key=lambda c: (c.group_kind, c.group, c.cert_label)),
        class_fractions=fractions,
        min_group_sessions=min_group_sessions,
    )


# ---------------------------------------------------------------------------
# Figure 3 -- ECDFs of per-root validation counts per category
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure3Series:
    """One ECDF curve."""

    label: str
    root_count: int
    points: tuple[tuple[int, float], ...]
    zero_fraction: float


def figure3_ecdf(
    categories: dict[str, list],
    notary: NotaryDatabase,
    *,
    executor: ParallelExecutor | None = None,
) -> list[Figure3Series]:
    """Compute one ECDF per root-store category.

    ``categories`` maps a label to the certificates in that category
    (see :func:`store_categories` for the paper's grouping).
    """
    series = []
    for label, roots in categories.items():
        counts = validation_counts_by_root(notary, roots, executor=executor)
        series.append(
            Figure3Series(
                label=label,
                root_count=len(roots),
                points=tuple(ecdf_points(counts)),
                zero_fraction=fraction_zero(counts),
            )
        )
    return series


def store_categories(
    aosp: dict[str, RootStore],
    mozilla: RootStore,
    ios7: RootStore,
    extra_certificates: list,
) -> dict[str, list]:
    """The paper's Figure 3 / Table 4 category grouping.

    ``extra_certificates`` is the deduplicated list of non-AOSP
    additions recovered from the dataset (non-rooted sessions).
    """
    mozilla_keys = frozenset(
        equivalence_key(c) for c in mozilla.certificates(include_disabled=True)
    )
    aosp44 = aosp["4.4"].certificates(include_disabled=True)
    aosp41 = aosp["4.1"].certificates(include_disabled=True)

    extras_in_mozilla = [
        c for c in extra_certificates if equivalence_key(c) in mozilla_keys
    ]
    extras_outside_mozilla = [
        c for c in extra_certificates if equivalence_key(c) not in mozilla_keys
    ]
    aosp44_and_mozilla = [
        c for c in aosp44 if equivalence_key(c) in mozilla_keys
    ]
    aggregated = list(aosp44) + extras_outside_mozilla

    return {
        "Non AOSP and non Mozilla Android certs": extras_outside_mozilla,
        "Non AOSP root certs found on Mozilla's": extras_in_mozilla,
        "AOSP 4.4 and Mozilla root certs": aosp44_and_mozilla,
        "AOSP 4.1": list(aosp41),
        "AOSP 4.4": list(aosp44),
        "Aggregated Android root certs": aggregated,
        "Mozilla": mozilla.certificates(include_disabled=True),
        "iOS7": ios7.certificates(include_disabled=True),
        "Non AOSP Android certs": list(extra_certificates),
    }
