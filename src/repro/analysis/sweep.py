"""Parameter sweeps over the population model.

The reproduction's population is calibrated to one set of marginals;
these sweeps vary the generation parameters and re-run the measurement
pipeline at each point, checking that the paper's *findings* (not just
its numbers) are robust to the calibration:

* :func:`rooted_fraction_sweep` — §6's rooted-exclusive detection as
  the rooting rate varies;
* :func:`scale_sweep` — stability of the §5 extended-store fraction
  across corpus sizes (sampling robustness).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.analysis.sessions import SessionDiffer, extended_fraction
from repro.analysis.rooted import RootedDeviceAnalysis
from repro.android.population import PopulationConfig, PopulationGenerator
from repro.netalyzr.collector import collect_dataset
from repro.rootstore.catalog import CaCatalog, default_catalog
from repro.rootstore.factory import CertificateFactory
from repro.rootstore.vendors import PlatformStores, build_platform_stores


@dataclass(frozen=True)
class SweepPoint:
    """One sweep evaluation: the parameter value and its metrics."""

    value: float
    metrics: dict[str, float] = field(default_factory=dict)


class PopulationSweep:
    """Re-runs generation + collection + diffing per parameter value."""

    def __init__(
        self,
        factory: CertificateFactory | None = None,
        catalog: CaCatalog | None = None,
        stores: PlatformStores | None = None,
        *,
        base_config: PopulationConfig | None = None,
    ):
        self.factory = factory or CertificateFactory()
        self.catalog = catalog or default_catalog()
        self.stores = stores or build_platform_stores(self.factory, self.catalog)
        self.base_config = base_config or PopulationConfig(scale=0.08)

    def run_point(self, config: PopulationConfig) -> dict:
        """One full pipeline pass for one configuration."""
        population = PopulationGenerator(config, self.factory, self.catalog).generate()
        dataset = collect_dataset(population, self.factory, self.catalog)
        diffs = SessionDiffer(self.stores.aosp).diff_all(dataset)
        rooted = RootedDeviceAnalysis.run(diffs)
        return {
            "sessions": float(dataset.session_count),
            "extended_fraction": extended_fraction(diffs),
            "rooted_fraction": rooted.rooted_session_fraction,
            "exclusive_of_rooted": rooted.exclusive_session_fraction_of_rooted,
            "unique_certs": float(len(dataset.unique_certificates())),
        }

    def sweep(
        self,
        values: Sequence[float],
        configure: Callable[[PopulationConfig, float], PopulationConfig],
    ) -> list[SweepPoint]:
        """Evaluate the pipeline at each parameter value."""
        points = []
        for value in values:
            config = configure(self.base_config, value)
            config = replace(config, seed=f"{config.seed}/sweep-{value}")
            points.append(SweepPoint(value=value, metrics=self.run_point(config)))
        return points


def rooted_fraction_sweep(
    sweep: PopulationSweep, values: Sequence[float] = (0.05, 0.15, 0.24, 0.40)
) -> list[SweepPoint]:
    """§6 robustness: vary the rooting rate."""
    return sweep.sweep(
        values,
        lambda config, value: replace(config, rooted_fraction=value),
    )


def scale_sweep(
    sweep: PopulationSweep, values: Sequence[float] = (0.04, 0.08, 0.16)
) -> list[SweepPoint]:
    """Sampling robustness: vary the corpus size."""
    return sweep.sweep(
        values,
        lambda config, value: replace(config, scale=value),
    )
