"""The paper's published values, and comparison against a study run.

One structured source of truth for every number the paper reports,
consumed by the benchmarks, by ``examples/paper_comparison.py`` and by
EXPERIMENTS.md. ``compare_study`` evaluates a :class:`StudyResult`
against all of them and reports which reproduction claims hold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.study import StudyResult

# -- published values ----------------------------------------------------------

TABLE1_SIZES = {
    "AOSP 4.1": 139, "AOSP 4.2": 140, "AOSP 4.3": 146, "AOSP 4.4": 150,
    "iOS7": 227, "Mozilla": 153,
}

TABLE2_DEVICES = {
    "SAMSUNG Galaxy SIV": 2762, "SAMSUNG Galaxy SIII": 2108,
    "LG Nexus 4": 1331, "LG Nexus 5": 1010, "ASUS Nexus 7": 832,
}
TABLE2_MANUFACTURERS = {
    "SAMSUNG": 7709, "LG": 2908, "ASUS": 1876, "HTC": 963, "MOTOROLA": 837,
}

TABLE3_COUNTS = {
    "Mozilla": 744_069, "iOS 7": 745_736, "AOSP 4.1": 744_350,
    "AOSP 4.2": 744_350, "AOSP 4.3": 744_384, "AOSP 4.4": 744_398,
}
TABLE3_TOTAL_CURRENT = 1_000_000  # "one million have not expired"

TABLE4_ROWS = {
    "Non AOSP and non Mozilla Android certs": (85, 0.72),
    "Non AOSP root certs found on Mozilla's": (16, 0.38),
    "AOSP 4.4 and Mozilla root certs": (130, 0.15),
    "AOSP 4.1": (139, 0.22),
    "AOSP 4.4": (150, 0.23),
    "Aggregated Android root certs": (235, 0.40),
    "Mozilla": (153, 0.22),
    "iOS7": (227, 0.41),
}

TABLE5_DEVICES = {
    "CRAZY HOUSE": 70, "MIND OVERFLOW": 1, "USER_X": 1,
    "CDA/EMAILADDRESS": 1, "CIRRUS, PRIVATE": 1,
}

TABLE6_INTERCEPTED = (
    "gmail.com:443", "mail.google.com:443", "mail.yahoo.com:443",
    "orcart.facebook.com:443", "www.bankofamerica.com:443",
    "www.chase.com:443", "www.hsbc.com:443", "www.icsi.berkeley.edu:443",
    "www.outlook.com:443", "www.skype.com:443", "www.viber.com:443",
    "www.yahoo.com:443",
)
TABLE6_WHITELISTED = (
    "google-analytics.com:443", "maps.google.com:443",
    "orcart.facebook.com:8883", "play.google.com:443",
    "supl.google.com:7275", "www.facebook.com:443",
    "www.google.co.uk:443", "www.google.com:443", "www.twitter.com:443",
)

FIGURE2_CLASSES = {
    "mozilla_and_ios7": 0.067, "ios7_only": 0.162,
    "android_only": 0.371, "not_recorded": 0.400,
}

HEADLINES = {
    "sessions": 15_970,
    "estimated_devices": 3_835,
    "device_models": 435,
    "unique_certificates": 314,
    "extended_fraction": 0.39,
    "rooted_fraction": 0.24,
    "rooted_exclusive_of_rooted": 0.06,
    "rooted_exclusive_of_all": 0.015,
    "missing_cert_handsets": 5,
    "aosp44_in_mozilla_identical": 117,
    "aosp44_in_mozilla_equivalent": 130,
    "intercepted_sessions": 1,
}


# -- comparison ---------------------------------------------------------------


@dataclass(frozen=True)
class Claim:
    """One reproduction claim evaluated against a study."""

    name: str
    paper: object
    measured: object
    holds: bool
    note: str = ""


def _relative_close(measured: float, paper: float, tolerance: float) -> bool:
    if paper == 0:
        return measured == 0
    return abs(measured - paper) / abs(paper) <= tolerance


def compare_study(result: StudyResult) -> list[Claim]:
    """Evaluate the full claim list against a study result.

    Absolute session/device counts scale with
    ``result.config.population_scale``; fraction and structural claims
    are scale-independent.
    """
    scale = result.config.population_scale
    claims: list[Claim] = []

    def claim(name, paper, measured, holds, note=""):
        claims.append(Claim(name, paper, measured, bool(holds), note))

    # Table 1: exact.
    measured_sizes = dict(result.table1)
    claim("table1.sizes", TABLE1_SIZES, measured_sizes,
          measured_sizes == TABLE1_SIZES, "structural: must match exactly")

    # Table 2: same sets, leader order, counts within 25% (scaled).
    devices = dict(result.table2.top_devices)
    claim(
        "table2.device_set",
        sorted(TABLE2_DEVICES),
        sorted(devices),
        set(devices) == set(TABLE2_DEVICES),
    )
    for name, paper_count in TABLE2_MANUFACTURERS.items():
        measured = dict(result.table2.top_manufacturers).get(name, 0)
        claim(
            f"table2.manufacturer.{name}",
            paper_count,
            measured,
            _relative_close(measured, paper_count * scale, 0.25),
            f"scaled x{scale}",
        )

    # Table 3: ordering + near-equality.
    counts = dict(result.table3)
    claim(
        "table3.ordering",
        "iOS7 > AOSP4.4 > 4.3 > 4.2 = 4.1 > Mozilla",
        " > ".join(sorted(counts, key=counts.get, reverse=True)),
        counts["iOS 7"] > counts["AOSP 4.4"] >= counts["AOSP 4.3"]
        and counts["AOSP 4.3"] >= counts["AOSP 4.2"]
        and counts["AOSP 4.2"] == counts["AOSP 4.1"]
        and counts["AOSP 4.1"] > counts["Mozilla"],
    )
    spread = (max(counts.values()) - min(counts.values())) / max(counts.values())
    claim("table3.near_equality", "<1% spread", f"{spread:.2%}", spread < 0.01)

    # Table 4 offsets.
    for row in result.table4:
        paper_total, paper_fraction = TABLE4_ROWS[row.category]
        claim(
            f"table4.{row.category}",
            (paper_total, paper_fraction),
            (row.total_roots, round(row.fraction_validating_nothing, 2)),
            abs(row.total_roots - paper_total) <= max(4, paper_total * 0.05)
            and abs(row.fraction_validating_nothing - paper_fraction) <= 0.07,
        )

    # Table 5.
    top = dict(result.table5)
    crazy = top.get("CRAZY HOUSE", 0)
    claim(
        "table5.crazy_house",
        TABLE5_DEVICES["CRAZY HOUSE"],
        crazy,
        _relative_close(crazy, TABLE5_DEVICES["CRAZY HOUSE"] * scale, 0.3),
        f"scaled x{scale}",
    )

    # Table 6: exact lists.
    if result.table6 is not None:
        claim(
            "table6.intercepted",
            list(TABLE6_INTERCEPTED),
            result.table6.intercepted,
            tuple(result.table6.intercepted) == TABLE6_INTERCEPTED,
        )
        claim(
            "table6.whitelisted",
            list(TABLE6_WHITELISTED),
            result.table6.whitelisted,
            tuple(result.table6.whitelisted) == TABLE6_WHITELISTED,
        )
    else:
        claim("table6", "one finding", "none", False)

    # Figure 2 class mix.
    for key, paper_fraction in FIGURE2_CLASSES.items():
        from repro.rootstore.catalog import StorePresence

        measured = result.figure2.class_fractions[StorePresence(key)]
        claim(
            f"figure2.{key}",
            paper_fraction,
            round(measured, 3),
            abs(measured - paper_fraction) <= 0.07,
        )

    # Headline scalars.
    claim(
        "headline.sessions",
        HEADLINES["sessions"],
        result.dataset.session_count,
        _relative_close(
            result.dataset.session_count, HEADLINES["sessions"] * scale, 0.15
        ),
        f"scaled x{scale}",
    )
    claim(
        "headline.extended_fraction",
        HEADLINES["extended_fraction"],
        round(result.extended_fraction, 3),
        abs(result.extended_fraction - HEADLINES["extended_fraction"]) <= 0.05,
    )
    claim(
        "headline.rooted_fraction",
        HEADLINES["rooted_fraction"],
        round(result.rooted.rooted_session_fraction, 3),
        abs(result.rooted.rooted_session_fraction - HEADLINES["rooted_fraction"])
        <= 0.05,
    )
    claim(
        "headline.rooted_exclusive",
        HEADLINES["rooted_exclusive_of_rooted"],
        round(result.rooted.exclusive_session_fraction_of_rooted, 3),
        abs(
            result.rooted.exclusive_session_fraction_of_rooted
            - HEADLINES["rooted_exclusive_of_rooted"]
        )
        <= 0.05,
    )
    claim(
        "headline.missing_handsets",
        HEADLINES["missing_cert_handsets"],
        result.missing_cert_handsets,
        result.missing_cert_handsets == HEADLINES["missing_cert_handsets"],
    )
    claim(
        "headline.interceptions",
        HEADLINES["intercepted_sessions"],
        len(result.interceptions),
        len(result.interceptions) == HEADLINES["intercepted_sessions"],
    )
    return claims


def render_claims(claims: list[Claim]) -> str:
    """Render a claims table."""
    lines = [f"{'claim':<48} {'status':<6} paper -> measured"]
    for claim in claims:
        status = "OK" if claim.holds else "FAIL"
        lines.append(
            f"{claim.name:<48} {status:<6} {claim.paper!r} -> {claim.measured!r}"
            + (f"  ({claim.note})" if claim.note else "")
        )
    holding = sum(1 for c in claims if c.holds)
    lines.append(f"{holding}/{len(claims)} claims hold")
    return "\n".join(lines)
