"""Geographic and operator provenance of additional certificates (§5.2).

The paper's "additional observations" reason about *where* unusual
certificates turn up: Meditel (a Moroccan ISP) roots on devices in
Bermuda, Telefonica roots on devices attached to Claro networks, CFCA
roots across a dozen countries. This module recovers those signals:

* per-certificate country/operator spread, and
* *roaming findings* — an operator-issued root observed on a session
  attached to a different operator's network, "suggest[ing] a user
  roaming or traveling abroad".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.sessions import SessionDiff
from repro.rootstore.catalog import CaCatalog, CaKind, default_catalog
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import identity_key


@dataclass(frozen=True)
class CertFootprint:
    """Where one additional certificate was observed."""

    label: str
    certificate: Certificate
    countries: frozenset[str]
    attached_operators: frozenset[str]
    session_count: int

    @property
    def country_spread(self) -> int:
        """Number of distinct countries (the CFCA signal)."""
        return len(self.countries)


@dataclass(frozen=True)
class RoamingFinding:
    """An operator root seen under a different operator's network."""

    cert_label: str
    issuing_operator: str  # operator the deployment table attributes it to
    attached_operator: str  # network the session was actually on
    session_count: int


def certificate_footprints(
    diffs: list[SessionDiff], *, min_sessions: int = 1
) -> list[CertFootprint]:
    """Country/operator spread for each additional certificate."""
    sessions: dict[tuple[int, bytes], list] = defaultdict(list)
    examples: dict[tuple[int, bytes], Certificate] = {}
    for diff in diffs:
        for certificate in diff.additional:
            key = identity_key(certificate)
            sessions[key].append(diff.session)
            examples.setdefault(key, certificate)
    footprints = []
    for key, session_list in sessions.items():
        if len(session_list) < min_sessions:
            continue
        certificate = examples[key]
        footprints.append(
            CertFootprint(
                label=certificate.subject.common_name or str(certificate.subject),
                certificate=certificate,
                countries=frozenset(
                    s.attached_country or s.country for s in session_list
                ),
                attached_operators=frozenset(
                    s.attached_operator or s.operator for s in session_list
                ),
                session_count=len(session_list),
            )
        )
    footprints.sort(key=lambda f: (-f.country_spread, f.label))
    return footprints


def detect_roaming(
    diffs: list[SessionDiff],
    catalog: CaCatalog | None = None,
) -> list[RoamingFinding]:
    """§5.2's inference: operator roots under foreign networks.

    A certificate attributed (by the deployment table) exclusively to
    operator O, carried by a session attached to operator N != O,
    suggests a subscriber of O roaming on N.
    """
    catalog = catalog or default_catalog()
    operator_for_cert: dict[str, str] = {}
    for deployment in catalog.deployments:
        profile = catalog.by_name(deployment.cert_name)
        if profile.kind is not CaKind.OPERATOR or deployment.operator is None:
            continue
        operator_for_cert[deployment.cert_name] = deployment.operator

    counts: dict[tuple[str, str, str], int] = defaultdict(int)
    for diff in diffs:
        attached = diff.session.attached_operator or diff.session.operator
        for certificate in diff.additional:
            label = certificate.subject.common_name or ""
            issuing = operator_for_cert.get(label)
            if issuing is None or attached in ("WIFI", issuing):
                continue
            counts[(label, issuing, attached)] += 1

    findings = [
        RoamingFinding(
            cert_label=label,
            issuing_operator=issuing,
            attached_operator=attached,
            session_count=count,
        )
        for (label, issuing, attached), count in counts.items()
    ]
    findings.sort(key=lambda f: (-f.session_count, f.cert_label))
    return findings
