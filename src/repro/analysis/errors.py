"""Typed errors raised by the analysis pipeline."""

from __future__ import annotations


class AnalysisError(Exception):
    """Base class for recoverable analysis failures.

    Bulk operations (``SessionDiffer.diff_all``) catch this class to
    quarantine the offending record and continue; anything else is a
    genuine bug and propagates.
    """


class UnknownVersionError(AnalysisError, KeyError):
    """A session reports an Android version with no AOSP reference.

    Subclasses ``KeyError`` too, so callers that historically caught the
    bare mapping error keep working.
    """

    def __init__(self, version: str, session_id: str = ""):
        message = f"no AOSP reference for version {version!r}"
        if session_id:
            message += f" (session {session_id})"
        super().__init__(message)
        self.version = version
        self.session_id = session_id

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]
