"""TLS-interception detection from probed trust chains (§7, Table 6).

Netalyzr's detection signal is the probed chain itself: a domain whose
chain terminates in a root that is neither the expected public CA nor
any official store member is being intercepted on-path. The analysis
groups each suspicious session's probes into intercepted and untouched
domains — reproducing Table 6 — and extracts the interceptor identity
from the forged root's subject.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import PresenceClassifier
from repro.netalyzr.session import MeasurementSession
from repro.rootstore.catalog import StorePresence


def subject_organization(subject: str) -> str:
    """The O= component of a rendered subject, else the whole subject.

    The actor-identity heuristic both the Table 6 reproduction and the
    attribution pass (:mod:`repro.analysis.attribution`) key on.
    """
    for part in subject.split(","):
        part = part.strip()
        if part.startswith("O="):
            return part[2:]
    return subject


@dataclass
class InterceptionFinding:
    """One session observed behind an interception proxy."""

    session: MeasurementSession
    interceptor_subject: str
    intercepted_domains: list[str] = field(default_factory=list)
    untouched_domains: list[str] = field(default_factory=list)

    @property
    def interceptor_organization(self) -> str:
        """The O= component of the forged root subject, if present."""
        return subject_organization(self.interceptor_subject)


def detect_interception(
    sessions: list[MeasurementSession],
    classifier: PresenceClassifier,
) -> list[InterceptionFinding]:
    """Scan probed sessions for on-path TLS interception.

    A probe counts as intercepted when its chain's root is absent from
    every official store and unknown to the Notary — i.e. a
    :data:`StorePresence.NOT_RECORDED` root vouching for a major public
    domain. (A benign chain for these probe targets always terminates
    in a well-known public CA.)
    """
    findings: list[InterceptionFinding] = []
    for session in sessions:
        if not session.probes:
            continue
        intercepted: list[str] = []
        untouched: list[str] = []
        interceptor_subject = ""
        for probe in session.probes:
            if not probe.chain:
                continue
            root = probe.chain[-1]
            classified = classifier.classify(root)
            is_public = classified.presence is not StorePresence.NOT_RECORDED
            if is_public:
                untouched.append(probe.hostport)
            else:
                intercepted.append(probe.hostport)
                interceptor_subject = str(root.subject)
        if intercepted:
            findings.append(
                InterceptionFinding(
                    session=session,
                    interceptor_subject=interceptor_subject,
                    intercepted_domains=sorted(intercepted),
                    untouched_domains=sorted(untouched),
                )
            )
    return findings
