"""Interception attribution: from detection to actors and campaigns.

:func:`detect_interception` (Table 6) answers *whether* a session is
behind an on-path proxy. This pass answers the follow-up questions the
scenario engine makes testable: *which* sessions were intercepted, by
which campaign (actors keyed by the certificate identity of the roots
they mint), whether the interceptor was authorized (its root provisioned
into the device's own store — the enterprise-egress case) or on-path
malware, what pinning saved, and what a pin-bypassing whitelist
defeated. CA-injection campaigns — actors that plant an anchor instead
of sitting on path — are recovered from the rooted population's store
diffs.

Campaign identity is the SHA-256 of ``kind|organization``; the roots
behind a campaign are keyed with :func:`repro.x509.fingerprint.
api_fingerprint`, the same stable identifier the serve API uses, so
``/v1/interceptions/{campaign}`` and the attribution export agree
byte-for-byte. Leaf certificates are deliberately never keyed — forged
leaves are regenerated per proxy instance and are not stable across
processes.

When a :class:`~repro.scenarios.engine.ScenarioFleet` ground truth is
available, :func:`score_attribution` grades the pass: recall over the
injected malicious campaigns, precision against the benign control
group. Organic background abuse (the population's own CRAZY HOUSE and
Table 5 anchors) is excluded from scoring — the ground truth is silent
about it, and flagging it is correct behaviour, not a false positive.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.analysis.classify import PresenceClassifier
from repro.analysis.interception import subject_organization
from repro.netalyzr.session import MeasurementSession
from repro.rootstore.catalog import StorePresence
from repro.tlssim.endpoints import PROBE_TARGETS
from repro.x509.fingerprint import api_fingerprint

#: Attributed campaign kinds.
KIND_ON_PATH = "on-path-proxy"
KIND_AUTHORIZED = "authorized-proxy"
KIND_CA_INJECTION = "ca-injection"

#: ``host:port`` endpoints whose apps pin (the probes pinning defends).
PINNED_HOSTPORTS: frozenset[str] = frozenset(
    e.hostport for e in PROBE_TARGETS if e.pinned
)


def campaign_id(kind: str, organization: str) -> str:
    """Stable campaign identifier: SHA-256 of ``kind|organization``."""
    return hashlib.sha256(f"{kind}|{organization}".encode("utf-8")).hexdigest()


@dataclass
class AttributedCampaign:
    """One actor recovered from the corpus."""

    campaign_id: str
    organization: str
    kind: str
    root_fingerprints: tuple[str, ...]
    session_ids: tuple[int, ...]
    intercepted_domains: tuple[str, ...]
    relayed_domains: tuple[str, ...]
    #: pinned probes the campaign's sessions made that were *not*
    #: successfully compromised: relayed untouched (the proxy's
    #: whitelist — pinning forced its hand) or intercepted but failing
    #: the pin check (the app refused the forged chain).
    pinning_saved: int
    #: pinned probes intercepted *and* passing the pin check — an
    #: app-side pin-bypass whitelist defeated the pin.
    whitelist_defeated: int

    def to_dict(self) -> dict:
        """The campaign as plain JSON data."""
        return {
            "campaign_id": self.campaign_id,
            "organization": self.organization,
            "kind": self.kind,
            "root_fingerprints": list(self.root_fingerprints),
            "session_count": len(self.session_ids),
            "session_ids": list(self.session_ids),
            "intercepted_domains": list(self.intercepted_domains),
            "relayed_domains": list(self.relayed_domains),
            "pinning_saved": self.pinning_saved,
            "whitelist_defeated": self.whitelist_defeated,
        }


@dataclass
class AttributionReport:
    """Every campaign recovered from one corpus."""

    campaigns: tuple[AttributedCampaign, ...]

    def __post_init__(self):
        self.by_id = {c.campaign_id: c for c in self.campaigns}

    def of_kind(self, kind: str) -> tuple[AttributedCampaign, ...]:
        """Campaigns of one kind, report order preserved."""
        return tuple(c for c in self.campaigns if c.kind == kind)

    @property
    def intercepted_session_ids(self) -> tuple[int, ...]:
        """All sessions attributed to an on-path or authorized proxy."""
        ids: set[int] = set()
        for campaign in self.campaigns:
            if campaign.kind != KIND_CA_INJECTION:
                ids.update(campaign.session_ids)
        return tuple(sorted(ids))

    def to_json(self) -> dict:
        """The report as plain JSON data (deterministic ordering)."""
        return {
            "campaign_count": len(self.campaigns),
            "intercepted_sessions": len(self.intercepted_session_ids),
            "kinds": {
                kind: len(self.of_kind(kind))
                for kind in (KIND_ON_PATH, KIND_AUTHORIZED, KIND_CA_INJECTION)
            },
            "campaigns": [c.to_dict() for c in self.campaigns],
        }


class _CampaignBuilder:
    """Mutable accumulator for one (kind, organization) actor."""

    def __init__(self, kind: str, organization: str):
        self.kind = kind
        self.organization = organization
        self.root_fingerprints: set[str] = set()
        self.session_ids: set[int] = set()
        self.intercepted: set[str] = set()
        self.relayed: set[str] = set()
        self.pinning_saved = 0
        self.whitelist_defeated = 0

    def build(self) -> AttributedCampaign:
        return AttributedCampaign(
            campaign_id=campaign_id(self.kind, self.organization),
            organization=self.organization,
            kind=self.kind,
            root_fingerprints=tuple(sorted(self.root_fingerprints)),
            session_ids=tuple(sorted(self.session_ids)),
            intercepted_domains=tuple(sorted(self.intercepted)),
            relayed_domains=tuple(sorted(self.relayed)),
            pinning_saved=self.pinning_saved,
            whitelist_defeated=self.whitelist_defeated,
        )


def attribute_interceptions(
    sessions: list[MeasurementSession],
    diffs,
    classifier: PresenceClassifier,
) -> AttributionReport:
    """Recover interception and CA-injection campaigns from a corpus.

    A probe is intercepted when its chain root is
    :data:`StorePresence.NOT_RECORDED` (the Table 6 detection rule); the
    interceptor is *authorized* when that root is also present in the
    session's own collected store (the user or their IT provisioned it —
    the enterprise-proxy case), on-path malware otherwise. CA-injection
    actors are read off the rooted population's store diffs: additional
    NOT_RECORDED anchors grouped by organization, excluding roots
    already attributed to a proxy campaign (an authorized proxy's
    provisioned root is not a second actor).
    """
    builders: dict[tuple[str, str], _CampaignBuilder] = {}

    def builder(kind: str, organization: str) -> _CampaignBuilder:
        key = (kind, organization)
        if key not in builders:
            builders[key] = _CampaignBuilder(kind, organization)
        return builders[key]

    for session in sessions:
        if not session.probes:
            continue
        own_roots: set[str] | None = None
        hits: dict[tuple[str, str], _CampaignBuilder] = {}
        clean_pinned_saved = 0
        relayed: set[str] = set()
        for probe in session.probes:
            if not probe.chain:
                continue
            root = probe.chain[-1]
            if classifier.classify(root).presence is not StorePresence.NOT_RECORDED:
                relayed.add(probe.hostport)
                if probe.hostport in PINNED_HOSTPORTS:
                    clean_pinned_saved += 1
                continue
            if own_roots is None:
                own_roots = {
                    api_fingerprint(c) for c in session.root_certificates
                }
            fingerprint = api_fingerprint(root)
            kind = KIND_AUTHORIZED if fingerprint in own_roots else KIND_ON_PATH
            actor = builder(kind, subject_organization(str(root.subject)))
            hits[(kind, actor.organization)] = actor
            actor.root_fingerprints.add(fingerprint)
            actor.session_ids.add(session.session_id)
            actor.intercepted.add(probe.hostport)
            if probe.hostport in PINNED_HOSTPORTS:
                if probe.pin_ok:
                    actor.whitelist_defeated += 1
                else:
                    actor.pinning_saved += 1
        # Untouched probes (and the pinned ones among them) belong to
        # the session's interceptor(s): they are what the proxy let
        # through.
        for actor in hits.values():
            actor.relayed.update(relayed)
            actor.pinning_saved += clean_pinned_saved
    proxy_fingerprints = {
        fingerprint
        for accumulator in builders.values()
        for fingerprint in accumulator.root_fingerprints
    }
    for diff in diffs:
        session = diff.session
        if not session.rooted or session.degraded:
            continue
        for certificate in diff.additional:
            if classifier.classify(certificate).presence is not StorePresence.NOT_RECORDED:
                continue
            fingerprint = api_fingerprint(certificate)
            if fingerprint in proxy_fingerprints:
                continue
            actor = builder(
                KIND_CA_INJECTION, subject_organization(str(certificate.subject))
            )
            actor.root_fingerprints.add(fingerprint)
            actor.session_ids.add(session.session_id)
    campaigns = tuple(
        builders[key].build() for key in sorted(builders, key=lambda k: (k[0], k[1]))
    )
    return AttributionReport(campaigns=campaigns)


@dataclass(frozen=True)
class AttributionScore:
    """Precision/recall of attribution against scenario ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); vacuously 1.0 with nothing attributed."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); vacuously 1.0 with no truth campaigns."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    def to_dict(self) -> dict:
        """The score as plain JSON data."""
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
        }


def score_attribution(report: AttributionReport, fleet) -> AttributionScore:
    """Grade *report* against a scenario fleet's ground truth.

    A malicious truth campaign (interception-proxy or ca-injection —
    the families that mint anchors) counts recovered when some
    malicious attributed campaign shares a root fingerprint with it;
    unrecovered ones are false negatives. A malicious attributed
    campaign claiming a *benign* truth campaign's root (the enterprise
    control group flagged as malware) is a false positive. Attributed
    campaigns touching no truth fingerprint at all are the population's
    organic abuse and are not scored.
    """
    malicious_kinds = (KIND_ON_PATH, KIND_CA_INJECTION)
    attributed = [c for c in report.campaigns if c.kind in malicious_kinds]
    attributed_fingerprints = {
        fingerprint for c in attributed for fingerprint in c.root_fingerprints
    }
    truth = [c for c in fleet.malicious if c.root_fingerprints]
    recovered = sum(
        1
        for campaign in truth
        if attributed_fingerprints & set(campaign.root_fingerprints)
    )
    benign_fingerprints = {
        fingerprint
        for campaign in fleet.benign
        for fingerprint in campaign.root_fingerprints
    }
    false_positives = sum(
        1
        for c in attributed
        if benign_fingerprints & set(c.root_fingerprints)
    )
    return AttributionScore(
        true_positives=recovered,
        false_positives=false_positives,
        false_negatives=len(truth) - recovered,
    )
