"""Row generators for the paper's six tables."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ecdf import fraction_zero
from repro.analysis.interception import InterceptionFinding
from repro.analysis.rooted import RootedDeviceAnalysis
from repro.netalyzr.dataset import NetalyzrDataset
from repro.notary.database import NotaryDatabase
from repro.notary.validation import (
    store_validation_count,
    validation_counts_by_root,
)
from repro.parallel.executor import ParallelExecutor
from repro.rootstore.vendors import PlatformStores


# -- Table 1 -----------------------------------------------------------------


def table1_store_sizes(stores: PlatformStores) -> list[tuple[str, int]]:
    """Table 1: number of certificates in each official root store."""
    sizes = stores.table1_sizes()
    order = ["AOSP 4.1", "AOSP 4.2", "AOSP 4.3", "AOSP 4.4", "iOS7", "Mozilla"]
    return [(name, sizes[name]) for name in order]


# -- Table 2 -----------------------------------------------------------------


@dataclass(frozen=True)
class Table2:
    """Top devices and manufacturers by session count."""

    top_devices: list[tuple[str, int]]
    top_manufacturers: list[tuple[str, int]]


def table2_top_devices(dataset: NetalyzrDataset, limit: int = 5) -> Table2:
    """Table 2: the five most-seen models and manufacturers."""
    models = dataset.sessions_by_model().most_common(limit)
    manufacturers = dataset.sessions_by_manufacturer().most_common(limit)
    return Table2(
        top_devices=[
            (f"{manufacturer} {model}", count)
            for (manufacturer, model), count in models
        ],
        top_manufacturers=list(manufacturers),
    )


# -- Table 3 -----------------------------------------------------------------


def table3_validated_counts(
    stores: PlatformStores, notary: NotaryDatabase
) -> list[tuple[str, int]]:
    """Table 3: Notary certificates validated by each root store."""
    rows = [
        ("Mozilla", store_validation_count(notary, stores.mozilla)),
        ("iOS 7", store_validation_count(notary, stores.ios7)),
    ]
    for version in sorted(stores.aosp):
        rows.append(
            (f"AOSP {version}", store_validation_count(notary, stores.aosp[version]))
        )
    return rows


# -- Table 4 -----------------------------------------------------------------


@dataclass(frozen=True)
class Table4Row:
    """One Table 4 row: a category with its validate-nothing fraction."""

    category: str
    total_roots: int
    fraction_validating_nothing: float


def table4_category_offsets(
    categories: dict[str, list],
    notary: NotaryDatabase,
    *,
    executor: ParallelExecutor | None = None,
) -> list[Table4Row]:
    """Table 4: per-category root counts and validate-nothing fractions.

    ``categories`` comes from
    :func:`repro.analysis.figures.store_categories`.
    """
    order = [
        "Non AOSP and non Mozilla Android certs",
        "Non AOSP root certs found on Mozilla's",
        "AOSP 4.4 and Mozilla root certs",
        "AOSP 4.1",
        "AOSP 4.4",
        "Aggregated Android root certs",
        "Mozilla",
        "iOS7",
    ]
    rows = []
    for label in order:
        roots = categories[label]
        counts = validation_counts_by_root(notary, roots, executor=executor)
        rows.append(
            Table4Row(
                category=label,
                total_roots=len(roots),
                fraction_validating_nothing=fraction_zero(counts) if counts else 0.0,
            )
        )
    return rows


# -- Table 5 -----------------------------------------------------------------


def table5_rooted_cas(
    analysis: RootedDeviceAnalysis, limit: int = 5
) -> list[tuple[str, int]]:
    """Table 5: CAs found exclusively on rooted devices, by device count."""
    return [
        (finding.ca_label, finding.device_count)
        for finding in analysis.top_findings(limit)
    ]


# -- Table 6 -----------------------------------------------------------------


@dataclass(frozen=True)
class Table6:
    """The interception case study's domain lists."""

    interceptor: str
    intercepted: list[str]
    whitelisted: list[str]


def table6_interception_domains(findings: list[InterceptionFinding]) -> Table6 | None:
    """Table 6: intercepted vs whitelisted domains of the first finding."""
    if not findings:
        return None
    finding = findings[0]
    return Table6(
        interceptor=finding.interceptor_organization,
        intercepted=finding.intercepted_domains,
        whitelisted=finding.untouched_domains,
    )
