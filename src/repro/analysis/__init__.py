"""The paper's analysis pipeline.

Consumes a Netalyzr dataset, the platform stores and the Notary, and
regenerates every table and figure of the evaluation:

=========  =====================================================  ==================
Artifact   Content                                                Module
=========  =====================================================  ==================
Table 1    root-store sizes                                       :mod:`.tables`
Table 2    top devices / manufacturers                            :mod:`.tables`
Table 3    Notary certs validated per store                       :mod:`.tables`
Table 4    per-category validate-nothing offsets                  :mod:`.tables`
Table 5    rooted-device CAs                                      :mod:`.rooted`
Table 6    intercepted / whitelisted domains                      :mod:`.interception`
Figure 1   AOSP-vs-additional scatter                             :mod:`.figures`
Figure 2   cert × manufacturer/operator matrix                    :mod:`.figures`
Figure 3   per-root validation ECDFs                              :mod:`.ecdf`
=========  =====================================================  ==================
"""

from repro.analysis.errors import AnalysisError, UnknownVersionError
from repro.analysis.sessions import SessionDiff, SessionDiffer
from repro.analysis.classify import PresenceClassifier
from repro.analysis.ecdf import cumulative_coverage, ecdf_points
from repro.analysis.rooted import RootedDeviceAnalysis
from repro.analysis.interception import InterceptionFinding, detect_interception
from repro.analysis.figures import figure1_scatter, figure2_matrix, figure3_ecdf
from repro.analysis import tables
from repro.analysis.report import (
    STUDY_JSON_SCHEMA,
    render_fastpath,
    render_report_from_json,
    render_study_report,
    render_telemetry,
    to_json,
    to_json_bytes,
)
from repro.analysis.study import FastPathStats, StudyConfig, StudyResult, run_study
from repro.analysis.evolution import classify_additions, store_changelog
from repro.analysis.stats import (
    Estimate,
    bootstrap_fraction,
    session_fraction_estimate,
    wilson_interval,
)
from repro.analysis.paper import compare_study, render_claims
from repro.analysis.geography import (
    certificate_footprints,
    detect_roaming,
)

__all__ = [
    "AnalysisError",
    "UnknownVersionError",
    "SessionDiff",
    "SessionDiffer",
    "PresenceClassifier",
    "ecdf_points",
    "cumulative_coverage",
    "RootedDeviceAnalysis",
    "InterceptionFinding",
    "detect_interception",
    "figure1_scatter",
    "figure2_matrix",
    "figure3_ecdf",
    "tables",
    "STUDY_JSON_SCHEMA",
    "render_fastpath",
    "render_report_from_json",
    "render_study_report",
    "render_telemetry",
    "to_json",
    "to_json_bytes",
    "FastPathStats",
    "StudyConfig",
    "StudyResult",
    "run_study",
    "store_changelog",
    "classify_additions",
    "Estimate",
    "wilson_interval",
    "bootstrap_fraction",
    "session_fraction_estimate",
    "compare_study",
    "render_claims",
    "certificate_footprints",
    "detect_roaming",
]
