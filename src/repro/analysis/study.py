"""End-to-end orchestration: regenerate the whole paper in one call.

``run_study()`` wires the substrates together — catalog → stores →
population → Netalyzr collection → Notary → analyses — and returns a
:class:`StudyResult` holding every table and figure.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

from repro import obs
from repro.analysis import tables as tables_mod
from repro.analysis.classify import PresenceClassifier
from repro.analysis.figures import (
    Figure1Point,
    Figure2Matrix,
    Figure3Series,
    figure1_scatter,
    figure2_matrix,
    figure3_ecdf,
    store_categories,
)
from repro.analysis.interception import InterceptionFinding, detect_interception
from repro.analysis.rooted import RootedDeviceAnalysis
from repro.analysis.sessions import (
    SessionDiff,
    SessionDiffer,
    extended_fraction,
    handsets_missing_certificates,
)
from repro.android.population import Population, PopulationConfig, PopulationGenerator
from repro.buildcache import BuildCache
from repro.crypto.cache import CacheStats, default_verification_cache, fastpath_disabled
from repro.faults.injector import FaultInjector
from repro.faults.quarantine import IngestHealth, Quarantine
from repro.netalyzr.collector import collect_dataset
from repro.netalyzr.dataset import NetalyzrDataset
from repro.notary.database import NotaryDatabase, build_notary
from repro.obs import TelemetrySnapshot
from repro.parallel.executor import ParallelExecutor
from repro.rootstore.catalog import CaCatalog, default_catalog
from repro.rootstore.factory import CertificateFactory
from repro.rootstore.vendors import PlatformStores, build_platform_stores
from repro.scenarios.engine import apply_scenarios
from repro.storage.backend import DiskBackend
from repro.x509.fingerprint import identity_key


@dataclass
class StudyConfig:
    """Knobs for one study run."""

    seed: str = "tangled-mass"
    population_scale: float = 1.0
    notary_scale: float = 1.0
    key_bits: int = 512
    #: fraction of sessions / leaves / probes hit by injected faults
    #: (0 disables fault injection entirely).
    fault_rate: float = 0.0
    #: seed of the fault-injection RNG streams; defaults to ``seed``.
    fault_seed: str = ""
    #: worker processes for the build (key generation, leaf signing)
    #: and the hot analysis queries (1 = serial; the report is
    #: byte-identical at any count).
    workers: int = 1
    #: memoization fast path (verification cache + Notary indexes);
    #: disabling it reruns every RSA check from first principles.
    fastpath: bool = True
    #: directory of the persistent build-artifact cache; empty disables
    #: caching. A warm hit skips the whole universe build (the report is
    #: byte-identical either way). Ignored when fault injection is on —
    #: fault runs must exercise the real ingest path — and when
    #: ``storage_dir`` is set (the storage backend is its own
    #: persistence; pickling a disk-backed notary would be wrong).
    build_cache_dir: str = ""
    #: directory of the sharded persistent storage backend; empty keeps
    #: everything in memory (seed behavior). When set, certificates and
    #: observed leaves live on disk behind bounded caches and the run's
    #: peak memory grows ~4x slower as ``notary_scale`` does (only the
    #: compact per-leaf index stays resident). The report is
    #: byte-identical either way.
    storage_dir: str = ""
    #: abuse campaigns injected into the generated population
    #: (:class:`repro.scenarios.ScenarioSpec` tuple); empty runs the
    #: stock paper universe, byte-identical to a pre-scenario build.
    #: Scenario runs bypass the build cache — the cache key would
    #: otherwise have to hash the full spec set.
    scenarios: tuple = ()
    #: seed of the scenario engine's RNG streams; defaults to ``seed``.
    scenario_seed: str = ""


@dataclass(frozen=True)
class FastPathStats:
    """Fast-path bookkeeping of one study run.

    Never rendered in the default study report (which must stay
    byte-identical across fast-path modes and worker counts); surfaced
    on demand via ``render_fastpath`` / ``repro study --perf``.
    """

    workers: int
    enabled: bool
    #: verification-cache activity during this run (delta, not lifetime).
    cache: CacheStats
    #: sizes of the Notary's derived memo layers after the run.
    notary_indexes: dict[str, int]
    #: build-artifact cache outcome: "off", "miss" (cold build, artifact
    #: written) or "hit" (universe loaded, build skipped).
    build_cache: str = "off"


@dataclass
class StudyResult:
    """Everything the study produces."""

    config: StudyConfig
    stores: PlatformStores
    population: Population
    dataset: NetalyzrDataset
    notary: NotaryDatabase
    diffs: list[SessionDiff]

    # headline scalars (§4-§7 text)
    extended_fraction: float = 0.0
    missing_cert_handsets: int = 0
    unique_certificates: int = 0
    estimated_devices: int = 0

    # tables
    table1: list = field(default_factory=list)
    table2: object = None
    table3: list = field(default_factory=list)
    table4: list = field(default_factory=list)
    table5: list = field(default_factory=list)
    table6: object = None

    # figures
    figure1: list[Figure1Point] = field(default_factory=list)
    figure2: Figure2Matrix | None = None
    figure3: list[Figure3Series] = field(default_factory=list)

    # sub-analyses
    rooted: RootedDeviceAnalysis | None = None
    interceptions: list[InterceptionFinding] = field(default_factory=list)
    footprints: list = field(default_factory=list)
    roaming: list = field(default_factory=list)
    #: the interception-attribution pass (always runs; empty-campaign
    #: reports render nothing, so the scenario-free export is unchanged).
    attribution: object = None
    #: scenario ground truth (a ScenarioFleet) when campaigns were
    #: injected; None on stock runs.
    scenarios: object = None
    #: per-OS-version fleet audit of the scenario population (a
    #: FleetSummary); only computed on scenario runs.
    fleet_audit: object = None

    # fault injection / ingest health
    fault_injector: FaultInjector | None = None

    # fast-path bookkeeping (not part of the rendered report)
    fastpath: FastPathStats | None = None

    # the run's exported telemetry (metrics dump + trace tree); captured
    # by ``run_study`` on every run, never consulted by report rendering.
    telemetry: TelemetrySnapshot | None = None

    @property
    def ingest_health(self) -> IngestHealth:
        """The dataset's ingest counters (§4.1 corpus side)."""
        return self.dataset.health

    def combined_quarantine(self) -> Quarantine:
        """Every dead-lettered record, Netalyzr corpus first, then Notary."""
        combined = Quarantine()
        combined.extend(self.dataset.quarantine)
        combined.extend(self.notary.quarantine)
        return combined


@contextmanager
def _phase(name: str, cache, **attributes):
    """A study-phase trace span that records verification-cache deltas.

    Every phase span carries the cache hit/miss/entry movement its body
    caused — the per-phase view of the fast path the old ``CacheStats``
    islands could never give.
    """
    before = cache.stats()
    with obs.span(name, **attributes) as span:
        try:
            yield span
        finally:
            delta = cache.stats().since(before)
            span.set("cache_hits", delta.hits)
            span.set("cache_misses", delta.misses)
            span.set("cache_entries_delta", delta.entries_delta)


def run_study(config: StudyConfig | None = None) -> StudyResult:
    """Run the full reproduction pipeline.

    The report-bearing output is byte-identical for any ``workers``
    count, with the fast path on or off, with telemetry exported or
    discarded, and whether the universe was built cold or loaded from a
    warm build cache; only the wall-clock time and the
    :class:`FastPathStats` / :class:`~repro.obs.TelemetrySnapshot`
    bookkeeping differ. Telemetry is captured in a fresh
    :func:`repro.obs.capture` window, so one run's spans and counters
    never bleed into the next run's export.
    """
    config = config or StudyConfig()
    guard = nullcontext() if config.fastpath else fastpath_disabled()
    cache = default_verification_cache()
    baseline = cache.stats()
    executor = ParallelExecutor(workers=config.workers)

    backend: DiskBackend | None = None
    if config.storage_dir:
        backend = DiskBackend(config.storage_dir)

    build_cache: BuildCache | None = None
    build_cache_state = "off"
    if (
        config.build_cache_dir
        and config.fault_rate == 0
        and backend is None
        and not config.scenarios
    ):
        build_cache = BuildCache(config.build_cache_dir)
    build_params = {
        "seed": config.seed,
        "population_scale": config.population_scale,
        "notary_scale": config.notary_scale,
        "key_bits": config.key_bits,
    }

    with obs.capture() as (registry, tracer):
        with guard, obs.span(
            "study",
            seed=config.seed,
            workers=config.workers,
            fastpath=config.fastpath,
            fault_rate=config.fault_rate,
            population_scale=config.population_scale,
            notary_scale=config.notary_scale,
        ):
            catalog = default_catalog()

            injector: FaultInjector | None = None
            if config.fault_rate > 0:
                injector = FaultInjector(
                    rate=config.fault_rate, seed=config.fault_seed or config.seed
                )

            scenario_fleet = None
            with _phase("study.build", cache, workers=config.workers) as build_span:
                universe = (
                    build_cache.get("universe", build_params)
                    if build_cache
                    else None
                )
                if isinstance(universe, dict) and universe.keys() >= {
                    "factory", "stores", "population", "dataset", "notary"
                }:
                    build_cache_state = "hit"
                    factory = universe["factory"]
                    stores = universe["stores"]
                    population = universe["population"]
                    dataset = universe["dataset"]
                    notary = universe["notary"]
                else:
                    with _phase("study.build.stores", cache):
                        factory = CertificateFactory(
                            seed=config.seed, key_bits=config.key_bits
                        )
                        stores = build_platform_stores(factory, catalog)
                    with _phase("study.build.population", cache):
                        population = PopulationGenerator(
                            PopulationConfig(
                                seed=config.seed, scale=config.population_scale
                            ),
                            factory,
                            catalog,
                        ).generate(executor=executor)
                        scenario_fleet = apply_scenarios(
                            population,
                            tuple(config.scenarios),
                            config.scenario_seed or config.seed,
                        )
                    with _phase("study.collect", cache) as collect_span:
                        dataset = collect_dataset(
                            population,
                            factory,
                            catalog,
                            injector=injector,
                            executor=executor,
                            backend=backend,
                        )
                        collect_span.set("sessions", dataset.session_count)
                        collect_span.set("quarantined", len(dataset.quarantine))
                    with _phase("study.build_notary", cache) as notary_span:
                        notary = build_notary(
                            factory,
                            catalog,
                            scale=config.notary_scale,
                            injector=injector,
                            executor=executor,
                            backend=backend,
                        )
                        notary_span.set("leaves", notary.total_certificates)
                        notary_span.set("quarantined", len(notary.quarantine))
                    if backend is not None:
                        # Visibility barrier: every record the analyses
                        # will read back is committed before queries run.
                        backend.flush()
                    if build_cache is not None:
                        build_cache_state = "miss"
                        with obs.span("study.build.cache_put"):
                            build_cache.put(
                                "universe",
                                build_params,
                                {
                                    "factory": factory,
                                    "stores": stores,
                                    "population": population,
                                    "dataset": dataset,
                                    "notary": notary,
                                },
                            )
                build_span.set("build_cache", build_cache_state)

            result = StudyResult(
                config=config,
                stores=stores,
                population=population,
                dataset=dataset,
                notary=notary,
                diffs=[],
                fault_injector=injector,
                scenarios=scenario_fleet,
            )
            analyze(result, catalog, executor=executor)

        # Publish the run's fast-path summary into the metrics registry:
        # the ``--perf`` view and the ``--metrics`` export now read the
        # same numbers from the same spine.
        cache_delta = cache.stats().since(baseline)
        cache_delta.publish(registry)
        for name, size in notary.fastpath_index_sizes().items():
            registry.gauge(f"notary.index.{name}").set(size)
        registry.gauge("study.workers").set(config.workers)
        registry.gauge("study.fastpath_enabled").set(int(config.fastpath))
        registry.gauge("study.quarantine.total").set(
            len(result.combined_quarantine())
        )
        if backend is not None:
            for name, value in backend.stats().items():
                registry.gauge(f"storage.{name}").set(value)

    result.fastpath = FastPathStats(
        workers=config.workers,
        enabled=config.fastpath,
        cache=cache_delta,
        notary_indexes=notary.fastpath_index_sizes(),
        build_cache=build_cache_state,
    )
    result.telemetry = TelemetrySnapshot(
        metrics=registry.to_dict(), trace=tracer.to_dict()
    )
    return result


def analyze(
    result: StudyResult,
    catalog: CaCatalog | None = None,
    *,
    executor: ParallelExecutor | None = None,
) -> None:
    """Run every analysis stage over an assembled StudyResult in place."""
    stores, dataset = result.stores, result.dataset
    if executor is None:
        executor = ParallelExecutor()
    cache = default_verification_cache()

    with _phase("study.analyze", cache, workers=executor.workers):
        with _phase("study.analyze.diff_all", cache) as diff_span:
            differ = SessionDiffer(stores.aosp)
            result.diffs = differ.diff_all(dataset, executor=executor)
            diff_span.set("diffs", len(result.diffs))
        _analyze_tail(result, catalog, executor, cache)


def analyze_from_diffs(
    result: StudyResult,
    catalog: CaCatalog | None = None,
    *,
    executor: ParallelExecutor | None = None,
) -> None:
    """Run every post-diff analysis stage over a StudyResult in place.

    The stream engine's republish path: per-session diffs are computed
    incrementally at ingest time, so ``result.diffs`` arrives already
    populated and only the aggregations need (re)computing. Producing
    the same ``result.diffs`` a batch :func:`analyze` would have built
    yields the same report bytes.
    """
    if executor is None:
        executor = ParallelExecutor()
    cache = default_verification_cache()
    with _phase(
        "study.analyze", cache, workers=executor.workers, incremental=True
    ):
        _analyze_tail(result, catalog, executor, cache)


def _analyze_tail(
    result: StudyResult,
    catalog: CaCatalog | None,
    executor: ParallelExecutor,
    cache,
) -> None:
    """Every analysis stage downstream of the per-session diffs."""
    stores, dataset, notary = result.stores, result.dataset, result.notary
    classifier = PresenceClassifier(stores.mozilla, stores.ios7, notary)

    # headline scalars
    with _phase("study.analyze.headline", cache):
        result.extended_fraction = extended_fraction(result.diffs)
        result.missing_cert_handsets = handsets_missing_certificates(
            result.diffs
        )
        result.unique_certificates = len(dataset.unique_certificates())
        result.estimated_devices = dataset.estimated_devices()

    # the deduplicated extras from non-rooted sessions (the §5 universe)
    extras: dict[tuple[int, bytes], object] = {}
    for diff in result.diffs:
        if diff.session.rooted:
            continue
        for certificate in diff.additional:
            extras.setdefault(identity_key(certificate), certificate)
    extra_certificates = list(extras.values())

    categories = store_categories(
        stores.aosp, stores.mozilla, stores.ios7, extra_certificates
    )

    # tables
    with _phase("study.analyze.tables", cache):
        result.table1 = tables_mod.table1_store_sizes(stores)
        result.table2 = tables_mod.table2_top_devices(dataset)
        result.table3 = tables_mod.table3_validated_counts(stores, notary)
        result.table4 = tables_mod.table4_category_offsets(
            categories, notary, executor=executor
        )
        result.rooted = RootedDeviceAnalysis.run(result.diffs, notary)
        result.table5 = tables_mod.table5_rooted_cas(result.rooted)
        result.interceptions = detect_interception(
            dataset.sessions, classifier
        )
        result.table6 = tables_mod.table6_interception_domains(
            result.interceptions
        )

    # figures
    with _phase("study.analyze.figures", cache):
        result.figure1 = figure1_scatter(result.diffs)
        result.figure2 = figure2_matrix(result.diffs, classifier)
        result.figure3 = figure3_ecdf(categories, notary, executor=executor)

    # §5.2 geography
    from repro.analysis.geography import certificate_footprints, detect_roaming

    with _phase("study.analyze.geography", cache):
        result.footprints = certificate_footprints(result.diffs)
        result.roaming = detect_roaming(result.diffs, catalog)

    # interception attribution (always cheap; only *exported* on
    # scenario runs, so the stock report stays byte-identical) plus the
    # scenario fleet's store audit.
    from repro.analysis.attribution import attribute_interceptions

    with _phase("study.analyze.attribution", cache):
        result.attribution = attribute_interceptions(
            dataset.sessions, result.diffs, classifier
        )
    if result.scenarios is not None:
        # Function-level import: repro.audit imports from this package.
        from repro.audit import audit_population, build_fleet_auditors

        with _phase("study.analyze.fleet_audit", cache):
            auditors = build_fleet_auditors(
                stores, classifier=classifier, notary=notary
            )
            result.fleet_audit = audit_population(result.population, auditors)
