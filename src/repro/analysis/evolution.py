"""Root-store evolution analysis: the version-over-version changelog.

§2 tracks AOSP's growth release by release (139 → 140 → 146 → 150) and
§5.1 notes certificates "added which [are] also present in newer AOSP
versions". This module derives the changelog between store versions and
classifies a device's additions as *backports* (official roots of a
newer version) versus genuinely foreign roots — sharpening Figure 1's
"additional certificates" measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rootstore.store import RootStore
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import equivalence_key, identity_key


@dataclass(frozen=True)
class VersionDelta:
    """The changelog between two consecutive store versions."""

    from_name: str
    to_name: str
    added: tuple[Certificate, ...]
    removed: tuple[Certificate, ...]

    @property
    def net_growth(self) -> int:
        """Net certificate count change."""
        return len(self.added) - len(self.removed)


def store_changelog(stores: dict[str, RootStore]) -> list[VersionDelta]:
    """Deltas between consecutive versions (sorted by version key)."""
    versions = sorted(stores)
    deltas = []
    for older, newer in zip(versions, versions[1:]):
        old_ids = {
            identity_key(c): c
            for c in stores[older].certificates(include_disabled=True)
        }
        new_ids = {
            identity_key(c): c
            for c in stores[newer].certificates(include_disabled=True)
        }
        deltas.append(
            VersionDelta(
                from_name=stores[older].name,
                to_name=stores[newer].name,
                added=tuple(c for k, c in new_ids.items() if k not in old_ids),
                removed=tuple(c for k, c in old_ids.items() if k not in new_ids),
            )
        )
    return deltas


@dataclass(frozen=True)
class AdditionProvenance:
    """A device's additions split by where they could have come from."""

    backports: tuple[Certificate, ...]  # official roots of a newer AOSP
    foreign: tuple[Certificate, ...]  # not in any AOSP version

    @property
    def backport_count(self) -> int:
        """Number of newer-AOSP backports among the additions."""
        return len(self.backports)


def classify_additions(
    additions: tuple[Certificate, ...] | list[Certificate],
    device_version: str,
    aosp_stores: dict[str, RootStore],
) -> AdditionProvenance:
    """Split a device's additions into newer-AOSP backports vs foreign.

    Uses §4.2 equivalence, so a backported root re-issued with new
    dates still counts as a backport.
    """
    newer_keys: set[object] = set()
    for version, store in aosp_stores.items():
        if version <= device_version:
            continue
        for certificate in store.certificates(include_disabled=True):
            newer_keys.add(equivalence_key(certificate))
    backports = tuple(
        c for c in additions if equivalence_key(c) in newer_keys
    )
    foreign = tuple(
        c for c in additions if equivalence_key(c) not in newer_keys
    )
    return AdditionProvenance(backports=backports, foreign=foreign)
