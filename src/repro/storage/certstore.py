"""The content-addressed certificate store: DER keyed by SHA-256.

Certificates are stored exactly once, as raw DER, in rolled append-only
:class:`~repro.storage.segment.SegmentLog` files; the in-memory state
is only the address book (SHA-256 → segment/offset/length) plus a
bounded LRU of parsed :class:`~repro.x509.certificate.Certificate`
objects. That inversion is the whole memory story: the parsed object —
names, extensions, key material, several KB each — becomes a cache line
that can be evicted, while the durable truth lives on disk.

Content addressing doubles as deduplication (a root certificate shared
by thousands of sessions is one record) and as end-to-end integrity:
the address *is* the digest, so a record that decodes to different
bytes than its key is detected twice over (segment envelope + address
check) before a parse is ever attempted.

On open, every segment is rescanned: intact records rebuild the address
book, torn or corrupt tails are quarantined and truncated away (see
:mod:`repro.storage.segment`). A missing certificate after recovery
reads as absence — the caller rebuilds, mirroring
:mod:`repro.buildcache`'s corruption-costs-time-never-correctness rule.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
from collections import OrderedDict

from repro import obs
from repro.faults.quarantine import ErrorCategory, Quarantine
from repro.storage.segment import SEGMENT_MAGIC, SegmentCorruption, SegmentLog
from repro.x509.certificate import Certificate

#: Roll to a new segment once the current one commits this many bytes.
DEFAULT_SEGMENT_BYTES = 64 * 1024 * 1024

#: Parsed-certificate LRU entries (the RAM bound for hot certificates).
DEFAULT_PARSE_CACHE = 4096


class CertStore:
    """Content-addressed DER records across rolled segment files."""

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        quarantine: Quarantine | None = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        parse_cache: int = DEFAULT_PARSE_CACHE,
    ):
        self.root = pathlib.Path(root)
        self.quarantine = quarantine if quarantine is not None else Quarantine()
        self.segment_bytes = segment_bytes
        self.parse_cache = parse_cache
        #: SHA-256 digest → (segment index, offset, length).
        self._index: dict[bytes, tuple[int, int, int]] = {}
        self._segments: list[SegmentLog] = []
        self._parsed: OrderedDict[bytes, Certificate] = OrderedDict()
        self._recover()

    # -- recovery ----------------------------------------------------------------

    def _segment_path(self, index: int) -> pathlib.Path:
        return self.root / f"certs-{index:05d}.seg"

    def _recover(self) -> None:
        """Rebuild the address book from whatever segments survive."""
        self.root.mkdir(parents=True, exist_ok=True)
        paths = sorted(self.root.glob("certs-*.seg"))
        for path in paths:
            log, damage = SegmentLog.open(path)
            for corruption in damage:
                self._quarantine(path.name, corruption)
            segment_index = len(self._segments)
            self._segments.append(log)
            for offset, body in log.scan():
                self._index[hashlib.sha256(body).digest()] = (
                    segment_index, offset, len(body),
                )
        if not self._segments:
            self._segments.append(SegmentLog.create(self._segment_path(0)))
        obs.event(
            "storage.certstore_open",
            segments=len(self._segments),
            certificates=len(self._index),
        )

    def _quarantine(self, where: str, corruption: SegmentCorruption) -> None:
        obs.counter_inc("storage.corruption")
        self.quarantine.add(
            ErrorCategory.CACHE_CORRUPTION,
            f"certstore:{where}",
            f"{corruption.reason}: {corruption.detail}",
        )

    # -- write -------------------------------------------------------------------

    def add(self, der: bytes) -> bytes:
        """Store one DER blob; return its SHA-256 address (idempotent)."""
        digest = hashlib.sha256(der).digest()
        if digest in self._index:
            return digest
        tail = self._segments[-1]
        if (
            tail.size + len(der) > self.segment_bytes
            and tail.size > len(SEGMENT_MAGIC)  # never roll an empty tail
        ):
            tail.flush()
            tail = SegmentLog.create(self._segment_path(len(self._segments)))
            self._segments.append(tail)
        offset, length = tail.append(der)
        self._index[digest] = (len(self._segments) - 1, offset, length)
        return digest

    def add_certificate(self, certificate: Certificate) -> bytes:
        """Store a parsed certificate's DER and prime the parse cache."""
        digest = self.add(certificate.encoded)
        self._cache_parsed(digest, certificate)
        return digest

    # -- read --------------------------------------------------------------------

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._index

    def __len__(self) -> int:
        return len(self._index)

    def der(self, digest: bytes) -> bytes:
        """The stored DER at one address; raises KeyError when absent."""
        segment_index, offset, length = self._index[digest]
        body = self._segments[segment_index].read(offset, length)
        if hashlib.sha256(body).digest() != digest:
            # The segment envelope already verified these bytes, so this
            # is an address-book bug, not disk damage — fail loudly.
            raise SegmentCorruption(
                "address-mismatch", f"record does not match its address"
            )
        return body

    def certificate(self, digest: bytes) -> Certificate:
        """The parsed certificate at one address (LRU-cached)."""
        cached = self._parsed.get(digest)
        if cached is not None:
            self._parsed.move_to_end(digest)
            obs.counter_inc("storage.parse_hits")
            return cached
        certificate = Certificate.from_der(self.der(digest))
        obs.counter_inc("storage.parses")
        self._cache_parsed(digest, certificate)
        return certificate

    def _cache_parsed(self, digest: bytes, certificate: Certificate) -> None:
        if self.parse_cache <= 0:
            return
        self._parsed[digest] = certificate
        self._parsed.move_to_end(digest)
        while len(self._parsed) > self.parse_cache:
            self._parsed.popitem(last=False)

    # -- maintenance -------------------------------------------------------------

    def flush(self) -> None:
        """Barrier: every stored record is readable (e.g. post-fork)."""
        for segment in self._segments:
            segment.flush()
        obs.counter_inc("storage.certstore_flushes")

    def close(self) -> None:
        for segment in self._segments:
            segment.close()

    def stats(self) -> dict[str, int]:
        """Size bookkeeping for telemetry and the benchmark."""
        return {
            "certificates": len(self._index),
            "segments": len(self._segments),
            "bytes": sum(segment.size for segment in self._segments),
            "parse_cache_entries": len(self._parsed),
        }
