"""Append-only segment logs with per-record envelopes and crash recovery.

A segment file is a fixed 8-byte MAGIC header followed by records::

    u32 length (big-endian) || SHA-256(body) (32 bytes) || body

Appends go to the tail only; records are never rewritten. The crash
model is therefore simple: the only state an interrupted writer can
leave behind is a *torn tail* — a record cut inside its length field,
its digest, or its body. :meth:`SegmentLog.open` rescans the file,
keeps every intact record, and truncates the file back to the last good
record boundary, reporting what it dropped so the caller can quarantine
and re-ingest. A damaged record *before* the tail (bit rot, an
overwrite) fails its digest check on read and is reported the same way
— corruption can cost a rebuild, never a wrong answer.

Reads go through :func:`os.pread` on a dedicated read descriptor:
offset-explicit, no shared seek state, safe to use concurrently from
forked :class:`~repro.parallel.executor.ParallelExecutor` workers that
inherited the descriptor.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import struct
from typing import Iterator

from repro import obs

#: Leading magic of every segment file (name + format revision).
SEGMENT_MAGIC = b"RPSG0001"

#: Per-record prefix: u32 body length + 32-byte SHA-256 of the body.
_RECORD_PREFIX = struct.Struct(">I32s")

#: Refuse records claiming more than this (a corrupt length field would
#: otherwise make recovery read gigabytes before failing the digest).
MAX_RECORD_BYTES = 64 * 1024 * 1024


class SegmentCorruption(Exception):
    """A record (or the header) of a segment could not be trusted."""

    def __init__(self, reason: str, detail: str):
        super().__init__(detail)
        self.reason = reason
        self.detail = detail


class SegmentLog:
    """One append-only, integrity-checked record log.

    Use :meth:`create` for a fresh segment and :meth:`open` to recover
    an existing file (possibly torn by a crash). The instance tracks
    the flushed size so readers never see buffered-but-unwritten bytes.
    """

    def __init__(self, path: pathlib.Path):
        self.path = pathlib.Path(path)
        self._write: object | None = None  # buffered append handle
        self._read_fd: int | None = None
        self._size = 0  # committed bytes (header + intact records)
        self._flushed = 0  # bytes visible to readers

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(cls, path: pathlib.Path) -> "SegmentLog":
        """Start a fresh segment (truncates anything already there)."""
        log = cls(path)
        log.path.parent.mkdir(parents=True, exist_ok=True)
        with open(log.path, "wb") as handle:
            handle.write(SEGMENT_MAGIC)
        log._size = log._flushed = len(SEGMENT_MAGIC)
        obs.counter_inc("storage.segment_opens")
        return log

    @classmethod
    def open(cls, path: pathlib.Path) -> tuple["SegmentLog", list[SegmentCorruption]]:
        """Open (or create) a segment, recovering from a torn tail.

        Returns the usable log plus every corruption found. A damaged
        header quarantines the whole file (all records are unreachable
        without a trusted start); a damaged or torn record truncates the
        file back to the last intact boundary. Never raises on bad
        bytes — recovery is the contract.
        """
        path = pathlib.Path(path)
        if not path.exists():
            return cls.create(path), []
        log = cls(path)
        damage: list[SegmentCorruption] = []
        good_end = len(SEGMENT_MAGIC)
        data = path.read_bytes()
        if len(data) < len(SEGMENT_MAGIC) or not data.startswith(SEGMENT_MAGIC):
            reason = (
                "truncated-header"
                if SEGMENT_MAGIC.startswith(data)
                else "bad-magic"
            )
            damage.append(
                SegmentCorruption(reason, f"segment header unusable: {path.name}")
            )
            with open(path, "wb") as handle:
                handle.write(SEGMENT_MAGIC)
            log._size = log._flushed = len(SEGMENT_MAGIC)
            obs.counter_inc("storage.segments_rebuilt")
            return log, damage
        offset = len(SEGMENT_MAGIC)
        while offset < len(data):
            try:
                body, next_offset = _parse_record(data, offset)
            except SegmentCorruption as exc:
                damage.append(exc)
                break
            good_end = next_offset
            offset = next_offset
        else:
            good_end = offset
        if good_end < len(data):
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
            obs.counter_inc("storage.records_dropped")
        log._size = log._flushed = good_end
        obs.counter_inc("storage.segment_opens")
        if damage:
            obs.event(
                "storage.segment_recovered",
                segment=path.name,
                dropped_bytes=len(data) - good_end,
            )
        return log, damage

    def close(self) -> None:
        """Flush and release both descriptors."""
        self.flush()
        if self._write is not None:
            self._write.close()
            self._write = None
        if self._read_fd is not None:
            os.close(self._read_fd)
            self._read_fd = None

    # -- append ------------------------------------------------------------------

    def append(self, body: bytes) -> tuple[int, int]:
        """Append one record; return its ``(offset, length)`` locator.

        The locator addresses the *body* (what :meth:`read` returns);
        the envelope prefix around it is an implementation detail.
        """
        if len(body) > MAX_RECORD_BYTES:
            raise ValueError(f"record of {len(body)} bytes exceeds the segment cap")
        if self._write is None:
            # Unbuffered on purpose: one write() per record means a fork
            # (the parallel executor's workers inherit this handle) can
            # never re-flush half-buffered bytes into the file, and the
            # record is reader-visible the moment append returns.
            self._write = open(self.path, "ab", buffering=0)
        prefix = _RECORD_PREFIX.pack(len(body), hashlib.sha256(body).digest())
        self._write.write(prefix + body)
        offset = self._size + len(prefix)
        self._size += len(prefix) + len(body)
        self._flushed = self._size
        obs.counter_inc("storage.appends")
        return offset, len(body)

    def flush(self) -> None:
        """Make every appended record visible to readers.

        Appends are unbuffered, so this only reconciles bookkeeping; it
        exists so callers can state the barrier they rely on.
        """
        self._flushed = self._size

    # -- read --------------------------------------------------------------------

    def read(self, offset: int, length: int) -> bytes:
        """The verified body of one record (by its append locator)."""
        if offset + length > self._flushed:
            self.flush()
        if self._read_fd is None:
            self._read_fd = os.open(self.path, os.O_RDONLY)
        prefix_len = _RECORD_PREFIX.size
        blob = os.pread(self._read_fd, prefix_len + length, offset - prefix_len)
        if len(blob) != prefix_len + length:
            raise SegmentCorruption(
                "truncated-record",
                f"record at {offset} cut short in {self.path.name}",
            )
        stored_length, digest = _RECORD_PREFIX.unpack_from(blob)
        body = blob[prefix_len:]
        if stored_length != length or hashlib.sha256(body).digest() != digest:
            raise SegmentCorruption(
                "digest-mismatch",
                f"record at {offset} failed verification in {self.path.name}",
            )
        obs.counter_inc("storage.reads")
        return body

    def scan(self) -> Iterator[tuple[int, bytes]]:
        """Yield every intact ``(offset, body)``, stopping at damage."""
        self.flush()
        data = self.path.read_bytes()[: self._flushed]
        offset = len(SEGMENT_MAGIC)
        while offset < len(data):
            try:
                body, next_offset = _parse_record(data, offset)
            except SegmentCorruption:
                return
            yield offset + _RECORD_PREFIX.size, body
            offset = next_offset

    @property
    def size(self) -> int:
        """Committed bytes (header + every appended record)."""
        return self._size


def _parse_record(data: bytes, offset: int) -> tuple[bytes, int]:
    """Parse one record at *offset*; raise :class:`SegmentCorruption`."""
    prefix_len = _RECORD_PREFIX.size
    if offset + prefix_len > len(data):
        raise SegmentCorruption(
            "truncated-record", f"record prefix cut at offset {offset}"
        )
    length, digest = _RECORD_PREFIX.unpack_from(data, offset)
    if length > MAX_RECORD_BYTES:
        raise SegmentCorruption(
            "digest-mismatch", f"implausible record length {length} at {offset}"
        )
    body_start = offset + prefix_len
    if body_start + length > len(data):
        raise SegmentCorruption(
            "truncated-record", f"record body cut at offset {offset}"
        )
    body = data[body_start : body_start + length]
    if hashlib.sha256(body).digest() != digest:
        raise SegmentCorruption(
            "digest-mismatch", f"record digest mismatch at offset {offset}"
        )
    return body, body_start + length
