"""``repro.storage`` — sharded, persistent, memory-bounded storage.

The reproduction's default data plane holds everything in process
memory: every observed leaf certificate lives as a parsed
:class:`~repro.x509.certificate.Certificate` inside
:class:`~repro.notary.database.NotaryDatabase`, which is why build
memory grows linearly with ``notary_scale``. This package provides the
on-disk alternative the ROADMAP names: a content-addressed certificate
store (DER keyed by SHA-256 in append-only, integrity-checked segments)
plus per-root leaf-set shards keyed by root fingerprint, behind a
:class:`StorageBackend` protocol the Notary and dataset accept.

Layering (bottom up):

* :mod:`repro.storage.envelope` — the MAGIC + SHA-256 integrity
  envelope shared with :mod:`repro.buildcache` (atomic publish,
  corruption detection that classifies *why* bytes are bad);
* :mod:`repro.storage.segment` — append-only segment logs with
  per-record envelopes and truncate-to-last-good crash recovery;
* :mod:`repro.storage.certstore` — the content-addressed DER store
  with a bounded parsed-certificate LRU;
* :mod:`repro.storage.leafstore` — observed-leaf records sharded by
  root fingerprint, so parallel workers read disjoint shard files;
* :mod:`repro.storage.backend` — the :class:`StorageBackend` protocol
  with the default :class:`InMemoryBackend` and the opt-in
  :class:`DiskBackend` (``StudyConfig.storage_dir`` / ``--storage``).

The design invariant mirrors the rest of the engine: **the storage
backend never changes any reported number**. Reports are byte-identical
between backends at any worker count; only the resident-set size and
the wall-clock profile differ.
"""

from __future__ import annotations

from repro.storage.backend import DiskBackend, InMemoryBackend, StorageBackend
from repro.storage.certstore import CertStore
from repro.storage.envelope import EnvelopeError, read_envelope, write_envelope
from repro.storage.leafstore import LeafShardStore, ShardedLeafList, shard_key_for
from repro.storage.segment import SegmentLog

__all__ = [
    "CertStore",
    "DiskBackend",
    "EnvelopeError",
    "InMemoryBackend",
    "LeafShardStore",
    "SegmentLog",
    "ShardedLeafList",
    "StorageBackend",
    "read_envelope",
    "shard_key_for",
    "write_envelope",
]
