"""The :class:`StorageBackend` protocol and its two implementations.

The Notary and the Netalyzr dataset don't know about segments or
shards; they ask a backend for two things:

* :meth:`~StorageBackend.leaf_sequence` — the container behind
  ``NotaryDatabase.leaves`` (a plain list in memory, a
  :class:`~repro.storage.leafstore.ShardedLeafList` on disk);
* :meth:`~StorageBackend.intern_certificate` — content-addressed
  deduplication for session root certificates (identity in memory; on
  disk the DER is persisted and the one canonical parsed instance is
  shared by every session that carries that root).

``InMemoryBackend`` is the default everywhere and is byte-for-byte the
pre-storage behavior. ``DiskBackend`` is opted into via
``StudyConfig.storage_dir`` / ``repro study --storage DIR``.
"""

from __future__ import annotations

import os
import pathlib
from typing import Protocol, runtime_checkable

from repro import obs
from repro.faults.quarantine import Quarantine
from repro.storage.certstore import CertStore
from repro.storage.leafstore import LeafShardStore, ShardedLeafList
from repro.x509.certificate import Certificate


@runtime_checkable
class StorageBackend(Protocol):
    """What the Notary/dataset need from a storage implementation."""

    def leaf_sequence(self):  # -> MutableSequence[ObservedLeaf]-alike
        """A fresh, empty container for observed leaves."""

    def intern_certificate(self, certificate: Certificate) -> Certificate:
        """The canonical shared instance of one certificate."""

    def flush(self) -> None:
        """Durability/visibility barrier (call before forking readers)."""

    def stats(self) -> dict[str, int]:
        """Size bookkeeping for telemetry."""


class InMemoryBackend:
    """The default: everything stays in process memory (seed behavior)."""

    def leaf_sequence(self) -> list:
        return []

    def intern_certificate(self, certificate: Certificate) -> Certificate:
        return certificate

    def flush(self) -> None:
        return None

    def stats(self) -> dict[str, int]:
        return {}


class DiskBackend:
    """Content-addressed certificates + per-root leaf shards on disk.

    Layout under ``root``::

        certs/certs-00000.seg ...   content-addressed DER segments
        shards/shard-<fp>.seg ...   per-root observed-leaf records

    One backend instance may serve both the Notary and the dataset of a
    run: the certificate store is shared (a root certificate observed
    in traffic *and* carried by sessions is stored once), the leaf
    shards belong to the Notary side.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        quarantine: Quarantine | None = None,
        parse_cache: int | None = None,
        leaf_cache: int | None = None,
    ):
        self.root = pathlib.Path(root)
        self.quarantine = quarantine if quarantine is not None else Quarantine()
        kwargs = {} if parse_cache is None else {"parse_cache": parse_cache}
        self.certs = CertStore(
            self.root / "certs", quarantine=self.quarantine, **kwargs
        )
        self.shards = LeafShardStore(
            self.root / "shards", self.certs, quarantine=self.quarantine
        )
        self.leaf_cache = leaf_cache
        #: canonical parsed instance per address, for session interning.
        #: Strong references on purpose: the working set is the few
        #: hundred distinct *root* certificates sessions carry, and
        #: analyses compare them by identity-derived keys all over.
        self._interned: dict[bytes, Certificate] = {}
        obs.event("storage.backend_open", root=str(self.root))

    def leaf_sequence(self) -> ShardedLeafList:
        kwargs = {} if self.leaf_cache is None else {"leaf_cache": self.leaf_cache}
        return ShardedLeafList(self.shards, **kwargs)

    def intern_certificate(self, certificate: Certificate) -> Certificate:
        address = self.certs.add(certificate.encoded)
        canonical = self._interned.get(address)
        if canonical is None:
            canonical = self._interned[address] = certificate
        return canonical

    def flush(self) -> None:
        self.shards.flush()
        obs.counter_inc("storage.backend_flushes")

    def close(self) -> None:
        self.shards.close()
        self.certs.close()

    def stats(self) -> dict[str, int]:
        merged = {f"certs_{k}": v for k, v in self.certs.stats().items()}
        merged.update(
            {f"shards_{k}": v for k, v in self.shards.stats().items()}
        )
        merged["interned_certificates"] = len(self._interned)
        return merged
