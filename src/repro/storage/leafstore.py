"""Observed-leaf records sharded by root fingerprint.

The Notary's hot analyses are *per root*: "how many leaves does this
anchor validate" walks exactly the leaves issued under one root. The
leaf store therefore shards its records by the fingerprint of the root
that anchored the observation — one append-only segment per root — so

* a :class:`~repro.parallel.executor.ParallelExecutor` worker computing
  counts for its chunk of roots touches only its own shard files
  (disjoint I/O, no cross-worker contention), and
* a streaming future (CT-log-scale universes) can ingest and expire
  shards independently.

What stays in RAM per leaf is a fixed-size locator row (shard id,
offset, length) plus the two fields every summary statistic needs
(``expired``, ``session_count``) in compact typed arrays — tens of
bytes instead of the several-KB parsed leaf. The certificates
themselves live in the shared :class:`~repro.storage.certstore.
CertStore`; a leaf record is just the address book entry tying them to
the observation metadata.

``ShardedLeafList`` exposes the whole thing as a list-equivalent
sequence (``len`` / index / iterate / ``bool``), which is what lets
:class:`~repro.notary.database.NotaryDatabase` swap it in for its
``leaves`` list without changing a single query result.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
from array import array
from collections import OrderedDict

from repro import obs
from repro.faults.quarantine import ErrorCategory, Quarantine
from repro.storage.certstore import CertStore
from repro.storage.segment import SegmentLog
from repro.tlssim.traffic import ObservedLeaf
from repro.x509.certificate import Certificate

#: Open shard segment handles kept at once (LRU; ~457 catalog roots
#: would otherwise pin two descriptors each for the whole build).
DEFAULT_OPEN_SHARDS = 128

#: Rehydrated-ObservedLeaf LRU entries.
DEFAULT_LEAF_CACHE = 2048


def shard_key_for(root: Certificate | None, issuer_subject: object) -> str:
    """The shard a leaf observation belongs to.

    Keyed by the anchoring root's identity fingerprint (modulus +
    signature, the paper's §4.1 identity) when the chain carried one;
    leaves observed without a root fall back to a digest of their
    issuer subject, which groups them exactly as the Notary's
    ``_by_issuer`` index does.
    """
    if root is not None:
        modulus = root.public_key.modulus
        blob = (
            modulus.to_bytes((modulus.bit_length() + 7) // 8, "big")
            + root.signature
        )
        return hashlib.sha256(blob).hexdigest()[:40]
    return hashlib.sha256(repr(issuer_subject).encode()).hexdigest()[:40]


class LeafShardStore:
    """Per-root segment files holding serialized leaf records."""

    def __init__(
        self,
        root: str | os.PathLike,
        certs: CertStore,
        *,
        quarantine: Quarantine | None = None,
        open_shards: int = DEFAULT_OPEN_SHARDS,
    ):
        self.root = pathlib.Path(root)
        self.certs = certs
        self.quarantine = quarantine if quarantine is not None else Quarantine()
        self.open_shards = open_shards
        self.root.mkdir(parents=True, exist_ok=True)
        #: shard key → shard id (dense ints; the locator rows store ids).
        self._shard_ids: dict[str, int] = {}
        self._shard_keys: list[str] = []
        #: shard id → open segment (bounded LRU; evicted ones reopen).
        self._open: OrderedDict[int, SegmentLog] = OrderedDict()

    def _shard_path(self, key: str) -> pathlib.Path:
        return self.root / f"shard-{key}.seg"

    def shard_id(self, key: str) -> int:
        identifier = self._shard_ids.get(key)
        if identifier is None:
            identifier = len(self._shard_keys)
            self._shard_ids[key] = identifier
            self._shard_keys.append(key)
        return identifier

    def _segment(self, shard_id: int) -> SegmentLog:
        segment = self._open.get(shard_id)
        if segment is None:
            path = self._shard_path(self._shard_keys[shard_id])
            segment, damage = SegmentLog.open(path)
            for corruption in damage:
                obs.counter_inc("storage.corruption")
                self.quarantine.add(
                    # Same dead-letter category as the build cache: a
                    # damaged record is rebuilt, never trusted.
                    ErrorCategory.CACHE_CORRUPTION,
                    f"leafshard:{path.name}",
                    f"{corruption.reason}: {corruption.detail}",
                )
            self._open[shard_id] = segment
            while len(self._open) > self.open_shards:
                _, evicted = self._open.popitem(last=False)
                evicted.close()
        else:
            self._open.move_to_end(shard_id)
        return segment

    # -- records -----------------------------------------------------------------

    def append(self, shard_key: str, leaf: ObservedLeaf) -> tuple[int, int, int]:
        """Persist one leaf; return its ``(shard id, offset, length)``.

        The certificate and any intermediates go to the content-
        addressed store; the shard record carries their addresses plus
        the observation metadata.
        """
        cert_address = self.certs.add(leaf.certificate.encoded)
        intermediate_addresses = tuple(
            self.certs.add_certificate(intermediate)
            for intermediate in leaf.intermediates
        )
        record = pickle.dumps(
            (
                cert_address,
                leaf.issuer_name,
                leaf.expired,
                leaf.session_count,
                intermediate_addresses,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        shard = self.shard_id(shard_key)
        offset, length = self._segment(shard).append(record)
        return shard, offset, length

    def load(self, shard_id: int, offset: int, length: int) -> ObservedLeaf:
        """Rehydrate one leaf record."""
        body = self._segment(shard_id).read(offset, length)
        (
            cert_address,
            issuer_name,
            expired,
            session_count,
            intermediate_addresses,
        ) = pickle.loads(body)
        return ObservedLeaf(
            certificate=self.certs.certificate(cert_address),
            issuer_name=issuer_name,
            expired=expired,
            session_count=session_count,
            intermediates=tuple(
                self.certs.certificate(address)
                for address in intermediate_addresses
            ),
        )

    def flush(self) -> None:
        for segment in self._open.values():
            segment.flush()
        self.certs.flush()

    def close(self) -> None:
        for segment in self._open.values():
            segment.close()
        self._open.clear()

    def stats(self) -> dict[str, int]:
        return {"shards": len(self._shard_keys), "open_shards": len(self._open)}


class ShardedLeafList:
    """A list-equivalent view over disk-resident observed leaves.

    Supports exactly the operations ``NotaryDatabase`` and the report
    layer use on the in-memory list — ``append`` (with an optional
    shard hint), ``len``, indexing, iteration, truthiness — plus the
    compact accessors (:meth:`expired_at`, :meth:`session_count_at`)
    that answer summary statistics straight from RAM.
    """

    def __init__(self, store: LeafShardStore, *, leaf_cache: int = DEFAULT_LEAF_CACHE):
        self._store = store
        self.leaf_cache = leaf_cache
        self._shards = array("i")
        self._offsets = array("q")
        self._lengths = array("i")
        self._expired = array("b")
        self._session_counts = array("q")
        self._hot: OrderedDict[int, ObservedLeaf] = OrderedDict()

    # -- writes ------------------------------------------------------------------

    def append(self, leaf: ObservedLeaf, *, shard_key: str | None = None) -> None:
        """Persist and index one leaf (in observation order)."""
        if shard_key is None:
            shard_key = shard_key_for(None, leaf.certificate.issuer.normalized())
        shard, offset, length = self._store.append(shard_key, leaf)
        self._shards.append(shard)
        self._offsets.append(offset)
        self._lengths.append(length)
        self._expired.append(1 if leaf.expired else 0)
        self._session_counts.append(leaf.session_count)

    # -- compact accessors --------------------------------------------------------

    def expired_at(self, index: int) -> bool:
        return bool(self._expired[index])

    def session_count_at(self, index: int) -> int:
        return self._session_counts[index]

    # -- sequence protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._shards)

    def __bool__(self) -> bool:
        return len(self._shards) > 0

    def __getitem__(self, index: int) -> ObservedLeaf:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self._shards):
            raise IndexError(index)
        hot = self._hot.get(index)
        if hot is not None:
            self._hot.move_to_end(index)
            return hot
        leaf = self._store.load(
            self._shards[index], self._offsets[index], self._lengths[index]
        )
        if self.leaf_cache > 0:
            self._hot[index] = leaf
            while len(self._hot) > self.leaf_cache:
                self._hot.popitem(last=False)
        return leaf

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]
