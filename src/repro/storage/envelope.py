"""The MAGIC + SHA-256 integrity envelope shared by every on-disk artifact.

One discipline for all persistent bytes in the engine (the build cache,
the certificate segments, the leaf shards): a payload is published as

    MAGIC (8 bytes) || SHA-256(payload) (32 bytes) || payload

written to a temp file and :func:`os.replace`'d into place, so a
concurrent or interrupted writer can never expose a partial artifact
under its final name. Readers verify the digest before trusting a
single payload byte; anything torn, bit-flipped, or foreign reads as an
:class:`EnvelopeError` whose ``reason`` says *where* the bytes went bad
(the crash-injection tests assert on these reasons).
"""

from __future__ import annotations

import hashlib
import os
import pathlib

#: MAGIC length || digest length — the fixed envelope prefix size.
HEADER_LEN = 8 + 32


class EnvelopeError(ValueError):
    """The bytes under an envelope cannot be trusted.

    ``reason`` is a stable machine-readable slug: ``empty``,
    ``bad-magic``, ``truncated-header`` (cut inside the MAGIC or the
    SHA-256 trailer) or ``digest-mismatch`` (payload bytes damaged).
    """

    def __init__(self, reason: str, detail: str):
        super().__init__(detail)
        self.reason = reason
        self.detail = detail


def write_envelope(magic: bytes, body: bytes) -> bytes:
    """Wrap *body* in its integrity envelope."""
    if len(magic) != 8:
        raise ValueError(f"magic must be 8 bytes, got {len(magic)}")
    return magic + hashlib.sha256(body).digest() + body


def read_envelope(magic: bytes, blob: bytes) -> bytes:
    """Unwrap and verify one envelope; raise :class:`EnvelopeError`."""
    if not blob:
        raise EnvelopeError("empty", "zero-length artifact")
    if len(blob) < len(magic):
        if magic.startswith(blob):
            # A correct MAGIC prefix cut short: torn write, not garbage.
            raise EnvelopeError("truncated-header", "artifact cut inside magic")
        raise EnvelopeError("bad-magic", "unrecognized artifact magic")
    if not blob.startswith(magic):
        raise EnvelopeError("bad-magic", "unrecognized artifact magic")
    if len(blob) < HEADER_LEN:
        raise EnvelopeError(
            "truncated-header", "artifact cut inside the SHA-256 trailer"
        )
    digest, body = blob[len(magic) : HEADER_LEN], blob[HEADER_LEN:]
    if hashlib.sha256(body).digest() != digest:
        raise EnvelopeError("digest-mismatch", "payload digest mismatch")
    return body


def atomic_write(path: pathlib.Path, blob: bytes) -> None:
    """Publish *blob* at *path* atomically (temp file + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_bytes(blob)
        os.replace(tmp, path)
    finally:
        try:
            tmp.unlink()
        except OSError:
            pass
