"""Command-line tools: ``python -m repro.cli <command>``.

Commands:

* ``dump-store``  — materialize an official store to a PEM/JSON file;
* ``diff-store``  — diff two store files (the §4.1 comparison);
* ``audit-store`` — audit a store file against an AOSP reference (§8);
* ``collect``     — generate a population, run Netalyzr over it, save
  the dataset to JSON;
* ``analyze``     — run the analysis pipeline over a saved dataset;
* ``study``       — run the full reproduction study and print the report;
* ``stream``      — run the study live (continuous ingestion, cadence
  republish), optionally serving the growing study while it fills;
* ``serve``       — run the study once, then serve it as an HTTP/JSON API.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.analysis import StudyConfig, render_study_report, run_study
from repro.analysis.classify import PresenceClassifier
from repro.audit import Severity, StoreAuditor
from repro.notary import build_notary
from repro.rootstore import CertificateFactory, build_platform_stores, diff_stores
from repro.rootstore.serialization import load_store, save_store


def _factory(args: argparse.Namespace) -> CertificateFactory:
    """The PKI factory, warm-loaded from --universe when available."""
    import pathlib

    universe = getattr(args, "universe", None)
    if universe and pathlib.Path(universe).exists():
        from repro.rootstore.persistence import load_factory

        factory = load_factory(universe)
        if factory.seed == args.seed:
            return factory
    return CertificateFactory(seed=args.seed)


def _save_universe(factory: CertificateFactory, args: argparse.Namespace) -> None:
    universe = getattr(args, "universe", None)
    if universe:
        from repro.rootstore.persistence import save_factory

        save_factory(factory, universe)


def _stores(seed_or_args):
    if isinstance(seed_or_args, str):
        factory = CertificateFactory(seed=seed_or_args)
    else:
        factory = _factory(seed_or_args)
    stores = build_platform_stores(factory)
    if not isinstance(seed_or_args, str):
        _save_universe(factory, seed_or_args)
    return factory, stores


def cmd_dump_store(args: argparse.Namespace) -> int:
    """Write an official store to a PEM/JSON file."""
    _, stores = _stores(args)
    catalog = {
        "aosp-4.1": stores.aosp["4.1"],
        "aosp-4.2": stores.aosp["4.2"],
        "aosp-4.3": stores.aosp["4.3"],
        "aosp-4.4": stores.aosp["4.4"],
        "mozilla": stores.mozilla,
        "ios7": stores.ios7,
    }
    store = catalog[args.store]
    path = save_store(store, args.output)
    print(f"wrote {len(store)} roots to {path}")
    return 0


def cmd_diff_store(args: argparse.Namespace) -> int:
    """Diff two store files."""
    left = load_store(args.store)
    right = load_store(args.reference)
    diff = diff_stores(left, right)
    print(diff.summary())
    for certificate in diff.added:
        print(f"  + {certificate.subject}")
    for certificate in diff.missing:
        print(f"  - {certificate.subject}")
    return 0 if diff.is_stock else 1


def cmd_audit_store(args: argparse.Namespace) -> int:
    """Audit a store file against an AOSP reference."""
    factory, stores = _stores(args)
    store = load_store(args.store)
    notary = None
    classifier = None
    if args.with_notary:
        notary = build_notary(factory, scale=args.notary_scale)
        classifier = PresenceClassifier(stores.mozilla, stores.ios7, notary)
    auditor = StoreAuditor(
        stores.aosp[args.android_version],
        classifier=classifier,
        notary=notary,
    )
    report = auditor.audit(store)
    print(report.render(min_severity=Severity[args.min_severity.upper()]))
    return 0 if report.max_severity < Severity.HIGH else 2


def cmd_show_cert(args: argparse.Namespace) -> int:
    """Render a PEM certificate as text (or as a raw DER dump)."""
    import pathlib

    from repro.asn1.dump import dump_der
    from repro.x509 import Certificate
    from repro.x509.pem import pem_decode
    from repro.x509.text import certificate_text

    der = pem_decode(pathlib.Path(args.path).read_text())
    if args.asn1:
        print(dump_der(der))
    else:
        print(certificate_text(Certificate.from_der(der)))
    return 0


def _fault_injector(args: argparse.Namespace):
    """The fault injector for --fault-rate, or None when disabled."""
    rate = getattr(args, "fault_rate", 0.0)
    if not rate:
        return None
    from repro.faults import FaultInjector

    return FaultInjector(
        rate=rate, seed=getattr(args, "fault_seed", "") or args.seed
    )


def _scenario_specs(args: argparse.Namespace):
    """The --scenarios spec tuple, or None after printing an error."""
    path = getattr(args, "scenarios", None)
    if not path:
        return ()
    from repro.scenarios import ScenarioError, load_specs

    try:
        return load_specs(path)
    except (ScenarioError, OSError) as exc:
        print(f"error: cannot load scenarios {path}: {exc}", file=sys.stderr)
        return None


def _print_ingest_health(dataset) -> None:
    """One ingest-health block for collect/analyze output."""
    print("ingest health:")
    print(dataset.health.render(dataset.quarantine))


def cmd_collect(args: argparse.Namespace) -> int:
    """Generate a population, run Netalyzr over it, save the dataset."""
    from repro.android.population import PopulationConfig, PopulationGenerator
    from repro.netalyzr import collect_dataset
    from repro.netalyzr.serialization import save_dataset

    factory = CertificateFactory(seed=args.seed)
    population = PopulationGenerator(
        PopulationConfig(seed=args.seed, scale=args.scale), factory
    ).generate()
    dataset = collect_dataset(population, factory, injector=_fault_injector(args))
    path = save_dataset(dataset, args.output)
    print(
        f"collected {dataset.session_count:,} sessions "
        f"({len(dataset.unique_certificates())} unique roots) -> {path}"
    )
    _print_ingest_health(dataset)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Run the analysis pipeline over a saved dataset file."""
    from repro.analysis.study import StudyConfig, StudyResult, analyze
    from repro.android.population import Population
    from repro.netalyzr.serialization import DatasetError, load_dataset
    from repro.parallel import ParallelExecutor, resolve_workers

    try:
        dataset = load_dataset(args.dataset, resilient=not args.strict)
    except (DatasetError, OSError) as exc:
        print(f"error: cannot load dataset {args.dataset}: {exc}", file=sys.stderr)
        return 1
    factory, stores = _stores(args)
    notary = build_notary(factory, scale=args.notary_scale)
    result = StudyResult(
        config=StudyConfig(seed=args.seed, notary_scale=args.notary_scale),
        stores=stores,
        population=Population(),
        dataset=dataset,
        notary=notary,
        diffs=[],
    )
    analyze(result, executor=ParallelExecutor(workers=resolve_workers(args.workers)))
    print(render_study_report(result))
    if len(dataset.quarantine):
        _print_ingest_health(dataset)
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    """Run the full study and print (or write) the report."""
    from repro.parallel import resolve_workers

    build_cache_dir = "" if args.no_build_cache else (args.build_cache or "")
    if args.storage:
        import pathlib

        try:
            pathlib.Path(args.storage).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            print(f"error: cannot open storage {args.storage}: {exc}", file=sys.stderr)
            return 1
    scenarios = _scenario_specs(args)
    if scenarios is None:
        return 1
    result = run_study(
        StudyConfig(
            seed=args.seed,
            population_scale=args.scale,
            notary_scale=args.notary_scale,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
            workers=resolve_workers(args.workers),
            fastpath=not args.no_fastpath,
            build_cache_dir=build_cache_dir,
            storage_dir=args.storage or "",
            scenarios=scenarios,
            scenario_seed=args.scenario_seed,
        )
    )
    if args.html:
        import pathlib

        from repro.analysis.html import render_html_report

        path = pathlib.Path(args.html)
        path.write_text(render_html_report(result))
        print(f"wrote {path}")
    else:
        print(render_study_report(result))
    # File exports go to their own paths and the notices to stderr, so
    # stdout stays byte-identical with or without these flags.
    if args.json:
        import pathlib

        from repro.analysis.report import to_json, to_json_bytes

        pathlib.Path(args.json).write_bytes(to_json_bytes(to_json(result)))
        print(f"wrote structured export to {args.json}", file=sys.stderr)
    if args.trace and result.telemetry is not None:
        result.telemetry.write_trace(args.trace)
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    if args.metrics and result.telemetry is not None:
        result.telemetry.write_metrics(args.metrics)
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)
    if args.telemetry:
        from repro.analysis.report import render_telemetry

        print(render_telemetry(result))
    if args.perf:
        from repro.analysis.report import render_fastpath

        print(render_fastpath(result))
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Run the study live: ingest the session/leaf event stream
    continuously, republishing snapshots on a cadence; with --port the
    growing study is served by a worker fleet while it fills. Once the
    stream runs dry the final report (byte-identical to `repro study`
    at the same scales) is printed to stdout."""
    import pathlib

    from repro.parallel import resolve_workers
    from repro.stream import (
        Republisher,
        StreamConfig,
        StreamEngine,
        drain,
        placeholder_snapshot,
    )

    if args.storage:
        try:
            pathlib.Path(args.storage).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            print(f"error: cannot open storage {args.storage}: {exc}", file=sys.stderr)
            return 1
    scenarios = _scenario_specs(args)
    if scenarios is None:
        return 1
    config = StreamConfig(
        seed=args.seed,
        population_scale=args.scale,
        notary_scale=args.notary_scale,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        workers=resolve_workers(args.workers),
        storage_dir=args.storage or "",
        scenarios=scenarios,
        scenario_seed=args.scenario_seed,
        index_sessions=not args.no_session_index,
    )
    engine = StreamEngine(config)
    print(
        f"repro-stream {__version__}: {engine.total_sessions:,} sessions "
        f"planned (seed={config.seed!r}, scale={config.population_scale}, "
        f"notary-scale={config.notary_scale})",
        file=sys.stderr,
    )
    sys.stderr.flush()

    def finish(republisher: Republisher) -> None:
        result = engine.result()
        print(render_study_report(result))
        sys.stdout.flush()
        if args.json:
            from repro.analysis.report import to_json, to_json_bytes

            pathlib.Path(args.json).write_bytes(to_json_bytes(to_json(result)))
            print(f"wrote structured export to {args.json}", file=sys.stderr)
        print(
            f"repro-stream: ingested {engine.ingested_sessions:,} sessions "
            f"+ {engine.ingested_leaves:,} leaves across "
            f"{republisher.generation} generation(s); "
            f"freshness {republisher.freshness()}",
            file=sys.stderr,
        )
        sys.stderr.flush()

    if args.port is None:
        republisher = Republisher(
            engine,
            every_sessions=args.cadence_sessions,
            every_seconds=args.cadence,
        )
        drain(engine, republisher, batch=args.batch)
        finish(republisher)
        return 0

    from repro.serve.app import ServeApp
    from repro.serve.snapshot import SnapshotHolder
    from repro.serve.supervisor import Supervisor

    holder = SnapshotHolder(placeholder_snapshot(config))
    app = ServeApp(
        holder,
        cache_capacity=args.cache_size,
        capacity=args.capacity + args.backlog,
    )

    def announce(host: str, port: int) -> None:
        print(
            f"streaming on http://{host}:{port}/v1/health "
            f"(transport={args.transport}, processes={args.processes}, "
            f"cadence={args.cadence}s/{args.cadence_sessions} sessions)",
            file=sys.stderr,
        )
        sys.stderr.flush()

    supervisor = Supervisor(
        app,
        host=args.host,
        port=args.port,
        processes=args.processes,
        transport=args.transport,
        ready=announce,
        tick_interval=0.02,
    )
    republisher = Republisher(
        engine,
        supervisor.broadcast_snapshot,
        every_sessions=args.cadence_sessions,
        every_seconds=args.cadence,
    )
    # A worker-forwarded POST /admin/reload forces the next generation
    # out immediately; the supervisor broadcasts whatever this returns.
    app.reloader = republisher.build
    finished = {"reported": False}

    def tick() -> None:
        if finished["reported"]:
            return
        if engine.pump(args.batch):
            republisher.note_ingest()
            republisher.maybe_publish()
        if engine.exhausted:
            if republisher.pending_events:
                republisher.publish()
            finish(republisher)
            finished["reported"] = True

    supervisor.tick = tick
    return supervisor.run_forever()


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the study once (warm from the build cache when configured),
    then serve it as the HTTP/JSON query API until SIGTERM/SIGINT."""
    from repro.serve import ServeConfig, run_server

    scenarios = _scenario_specs(args)
    if scenarios is None:
        return 1
    return run_server(
        ServeConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            backlog=args.backlog,
            cache_capacity=args.cache_size,
            seed=args.seed,
            population_scale=args.scale,
            notary_scale=args.notary_scale,
            build_cache_dir="" if args.no_build_cache else (args.build_cache or ""),
            build_workers=args.build_workers,
            transport=args.transport,
            processes=args.processes,
            scenarios=scenarios,
            scenario_seed=args.scenario_seed,
        )
    )


def cmd_fleet_audit(args: argparse.Namespace) -> int:
    """Generate a population and audit every device in it."""
    from repro.analysis.classify import PresenceClassifier
    from repro.android.population import PopulationConfig, PopulationGenerator
    from repro.audit import audit_population, build_fleet_auditors

    factory, stores = _stores(args)
    notary = build_notary(factory, scale=args.notary_scale)
    classifier = PresenceClassifier(stores.mozilla, stores.ios7, notary)
    population = PopulationGenerator(
        PopulationConfig(seed=args.seed, scale=args.scale), factory
    ).generate()
    auditors = build_fleet_auditors(stores, classifier=classifier)
    summary = audit_population(population, auditors)
    print(summary.render())
    return 0 if summary.critical_fraction == 0 else 2


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument("--seed", default="tangled-mass", help="PKI universe seed")
    parser.add_argument(
        "--universe",
        help="path to a PKI-universe cache file; created if absent, "
        "re-used by later invocations to skip key generation",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    dump = commands.add_parser("dump-store", help=cmd_dump_store.__doc__)
    dump.add_argument(
        "store",
        choices=["aosp-4.1", "aosp-4.2", "aosp-4.3", "aosp-4.4", "mozilla", "ios7"],
    )
    dump.add_argument("output", help="output path (.pem or .json)")
    dump.set_defaults(func=cmd_dump_store)

    diff = commands.add_parser("diff-store", help=cmd_diff_store.__doc__)
    diff.add_argument("store", help="store file under test (.pem/.json)")
    diff.add_argument("reference", help="reference store file (.pem/.json)")
    diff.set_defaults(func=cmd_diff_store)

    audit = commands.add_parser("audit-store", help=cmd_audit_store.__doc__)
    audit.add_argument("store", help="store file to audit (.pem/.json)")
    audit.add_argument(
        "--android-version", default="4.4", choices=["4.1", "4.2", "4.3", "4.4"]
    )
    audit.add_argument("--with-notary", action="store_true",
                       help="classify additions against simulated traffic")
    audit.add_argument("--notary-scale", type=float, default=0.2)
    audit.add_argument("--min-severity", default="info",
                       choices=["info", "low", "medium", "high", "critical"])
    audit.set_defaults(func=cmd_audit_store)

    show = commands.add_parser("show-cert", help=cmd_show_cert.__doc__)
    show.add_argument("path", help="PEM file holding one certificate")
    show.add_argument("--asn1", action="store_true",
                      help="dump the raw DER structure instead")
    show.set_defaults(func=cmd_show_cert)

    def fault_rate(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(f"not a number: {text!r}") from None
        if not 0.0 <= value <= 1.0:
            raise argparse.ArgumentTypeError(f"must be in [0, 1], got {value}")
        return value

    def add_workers_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workers", type=int, default=1,
            help="worker processes for the analysis queries "
            "(0 = one per CPU; the report is identical at any count)",
        )

    def add_fault_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--fault-rate", type=fault_rate, default=0.0,
            help="inject wild-data faults into this fraction of records",
        )
        sub.add_argument(
            "--fault-seed", default="",
            help="fault-injection RNG seed (defaults to --seed)",
        )

    def add_scenario_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scenarios", metavar="SPEC.json",
            help="inject the abuse campaigns described by this scenario "
            "spec file into the generated population (omit for the stock "
            "paper universe; the report gains an 'Abuse scenarios' "
            "section with attribution + ground-truth scoring)",
        )
        sub.add_argument(
            "--scenario-seed", default="",
            help="scenario RNG seed (defaults to --seed); same seed, "
            "same campaigns, byte for byte, at any worker count",
        )

    collect = commands.add_parser("collect", help=cmd_collect.__doc__)
    collect.add_argument("output", help="dataset output path (.json)")
    collect.add_argument("--scale", type=float, default=0.1)
    add_fault_options(collect)
    collect.set_defaults(func=cmd_collect)

    analyze = commands.add_parser("analyze", help=cmd_analyze.__doc__)
    analyze.add_argument("dataset", help="dataset file from 'collect'")
    analyze.add_argument("--notary-scale", type=float, default=0.2)
    analyze.add_argument(
        "--strict", action="store_true",
        help="abort on any damaged record instead of quarantining it",
    )
    add_workers_option(analyze)
    analyze.set_defaults(func=cmd_analyze)

    study = commands.add_parser("study", help=cmd_study.__doc__)
    study.add_argument("--scale", type=float, default=0.25)
    study.add_argument("--notary-scale", type=float, default=0.5)
    study.add_argument("--html", help="write an HTML report to this path")
    add_workers_option(study)
    study.add_argument(
        "--no-fastpath", action="store_true",
        help="bypass the verification cache and Notary indexes "
        "(first-principles mode; same report, much slower)",
    )
    study.add_argument(
        "--perf", action="store_true",
        help="append fast-path statistics (cache hit rates, memo sizes)",
    )
    study.add_argument(
        "--trace", metavar="FILE",
        help="write the run's trace-span tree to FILE as JSON "
        "(the report itself is byte-identical either way)",
    )
    study.add_argument(
        "--metrics", metavar="FILE",
        help="write the run's metrics registry (counters, gauges, "
        "histograms) to FILE as JSON",
    )
    study.add_argument(
        "--telemetry", action="store_true",
        help="append the pipeline-telemetry section "
        "(span tree, counters, histograms)",
    )
    study.add_argument(
        "--json", metavar="FILE",
        help="also write the structured JSON export (the schema the "
        "serve API speaks) to FILE; stdout is unchanged",
    )
    study.add_argument(
        "--build-cache", metavar="DIR",
        help="persistent build-artifact cache directory; a warm entry "
        "skips the whole universe build (report is identical either way)",
    )
    study.add_argument(
        "--no-build-cache", action="store_true",
        help="ignore --build-cache and always build cold",
    )
    study.add_argument(
        "--storage", metavar="DIR",
        help="sharded persistent storage backend directory; certificates "
        "and observed leaves live on disk behind bounded caches, cutting "
        "peak-memory growth ~4x as --notary-scale grows (report is "
        "identical either way; disables --build-cache)",
    )
    add_fault_options(study)
    add_scenario_options(study)
    study.set_defaults(func=cmd_study)

    stream = commands.add_parser("stream", help=cmd_stream.__doc__)
    stream.add_argument("--scale", type=float, default=0.25,
                        help="population scale of the streamed study")
    stream.add_argument("--notary-scale", type=float, default=0.5)
    add_workers_option(stream)
    add_fault_options(stream)
    add_scenario_options(stream)
    stream.add_argument(
        "--storage", metavar="DIR",
        help="sharded persistent storage backend directory (bounded "
        "resident memory; report identical either way)",
    )
    stream.add_argument(
        "--batch", type=int, default=256,
        help="ingest events consumed per engine pump",
    )
    stream.add_argument(
        "--cadence", type=float, default=2.0,
        help="republish a snapshot at most every SECONDS (0 disables "
        "the wall-clock cadence)",
    )
    stream.add_argument(
        "--cadence-sessions", type=int, default=0,
        help="republish every N ingested sessions (0 disables)",
    )
    stream.add_argument(
        "--no-session-index", action="store_true",
        help="skip the per-session diff index (million-session corpora: "
        "/v1/sessions/{id}/diff 404s, snapshot builds stay O(tables))",
    )
    stream.add_argument(
        "--json", metavar="FILE",
        help="write the final structured JSON export to FILE",
    )
    stream.add_argument(
        "--port", type=int, default=None,
        help="serve the growing study on this port while it fills "
        "(omit for a headless ingest-to-report run)",
    )
    stream.add_argument("--host", default="127.0.0.1")
    stream.add_argument(
        "--transport", choices=("threaded", "evloop"), default="evloop",
    )
    stream.add_argument(
        "--processes", type=int, default=1,
        help="serving worker processes; every republish is broadcast "
        "to the whole fleet at once",
    )
    stream.add_argument(
        "--capacity", type=int, default=8,
        help="max requests served concurrently per worker",
    )
    stream.add_argument("--backlog", type=int, default=16)
    stream.add_argument("--cache-size", type=int, default=256,
                        help="LRU response-cache entries")
    stream.set_defaults(func=cmd_stream)

    serve = commands.add_parser("serve", help=cmd_serve.__doc__)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8008)
    serve.add_argument(
        "--transport", choices=("threaded", "evloop"), default="threaded",
        help="HTTP transport: 'threaded' (one thread per connection) or "
        "'evloop' (single-threaded selectors event loop — the "
        "read-heavy fast lane)",
    )
    serve.add_argument(
        "--processes", type=int, default=1,
        help="serving processes; > 1 forks SO_REUSEPORT workers after "
        "the study snapshot is built (pages shared copy-on-write), with "
        "crash restarts and a coordinated SIGTERM drain",
    )
    serve.add_argument(
        "--workers", type=int, default=8,
        help="max requests served concurrently; beyond workers+backlog "
        "the server sheds load with 503 + Retry-After",
    )
    serve.add_argument(
        "--backlog", type=int, default=16,
        help="admitted-but-waiting headroom on top of --workers",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="LRU response-cache entries",
    )
    serve.add_argument("--scale", type=float, default=0.25,
                       help="population scale of the served study")
    serve.add_argument("--notary-scale", type=float, default=0.5)
    serve.add_argument(
        "--build-cache", metavar="DIR",
        help="persistent build-artifact cache; a warm entry makes both "
        "startup and POST /admin/reload near-instant",
    )
    serve.add_argument(
        "--no-build-cache", action="store_true",
        help="ignore --build-cache and always build cold",
    )
    serve.add_argument(
        "--build-workers", type=int, default=1,
        help="worker processes for the study (re)build itself",
    )
    add_scenario_options(serve)
    serve.set_defaults(func=cmd_serve)

    fleet = commands.add_parser("fleet-audit", help=cmd_fleet_audit.__doc__)
    fleet.add_argument("--scale", type=float, default=0.1)
    fleet.add_argument("--notary-scale", type=float, default=0.2)
    fleet.set_defaults(func=cmd_fleet_audit)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
