"""One Netalyzr measurement session.

Privacy model (§4.1): no IMEI or other hard identifier is collected.
Device identity is estimated from the tuple of recorded WiFi/cellular
networks, public IP, handset model and OS version — so two sessions of
one device usually (not always) share a tuple, and the dataset's device
count is a lower-bound estimate, just as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.device import AndroidDevice
from repro.x509.certificate import Certificate
from repro.x509.chain import ValidationResult


@dataclass(frozen=True, slots=True)
class DeviceTuple:
    """The privacy-preserving proxy for device identity (§4.1)."""

    network: str  # operator name or WiFi SSID
    public_ip: str
    model: str
    os_version: str

    @classmethod
    def of(cls, device: AndroidDevice) -> "DeviceTuple":
        """The tuple a session records for a device."""
        return cls(
            network=device.wifi_ssid or device.spec.operator,
            public_ip=device.public_ip,
            model=device.spec.model,
            os_version=device.spec.os_version,
        )


@dataclass(frozen=True, slots=True)
class DomainProbe:
    """The observed trust chain for one popular-domain connection."""

    hostport: str
    chain: tuple[Certificate, ...]
    validation: ValidationResult
    pin_ok: bool

    @property
    def chain_root_subject(self) -> str:
        """Subject of the chain's top certificate (for interception
        analysis)."""
        if not self.chain:
            return ""
        return str(self.chain[-1].subject)


@dataclass(slots=True)
class MeasurementSession:
    """Everything one Netalyzr execution uploads."""

    session_id: int
    device_tuple: DeviceTuple
    manufacturer: str
    model: str
    os_version: str
    operator: str  # subscription operator (firmware provenance)
    country: str
    rooted: bool
    root_certificates: tuple[Certificate, ...]
    probes: tuple[DomainProbe, ...] = ()
    app_names: tuple[str, ...] = ()
    #: network actually attached during the session; equals ``operator``
    #: unless the user is roaming (§5.2).
    attached_operator: str = ""
    attached_country: str = ""
    #: True when resilient ingestion quarantined part of this session's
    #: upload (some root certificates were lost in transit). Degraded
    #: sessions keep their good records but are excluded from analyses
    #: that would read the *absence* of a certificate as evidence.
    degraded: bool = False

    @property
    def store_size(self) -> int:
        """Number of root certificates collected."""
        return len(self.root_certificates)
