"""Netalyzr for Android, simulated.

One execution of the client on a device produces a
:class:`~repro.netalyzr.session.MeasurementSession`: the device's root
certificates, a privacy-preserving device-identity tuple, and the full
trust chain observed when probing each popular domain. The collector
runs the client over a population and assembles the study dataset.
"""

from repro.netalyzr.session import DeviceTuple, DomainProbe, MeasurementSession
from repro.netalyzr.collector import NetalyzrClient, collect_dataset
from repro.netalyzr.dataset import NetalyzrDataset, SessionUpload

__all__ = [
    "DeviceTuple",
    "DomainProbe",
    "MeasurementSession",
    "NetalyzrClient",
    "SessionUpload",
    "collect_dataset",
    "NetalyzrDataset",
]
