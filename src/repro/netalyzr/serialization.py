"""Netalyzr dataset import/export (JSON).

A collected dataset serializes to a single JSON document with a
deduplicated certificate table — the ~16k sessions reference ~314
distinct certificates, so the encoded corpus stays small. Round-trips
preserve everything the analysis pipeline consumes, including the
quarantine records and ingest-health counters of a fault-injected run.

Loading is strict about the envelope and, by default, about the
records: invalid JSON, an unknown ``SCHEMA_VERSION`` or a malformed
document raise the typed :class:`DatasetError` family with a one-line
diagnostic. With ``resilient=True`` per-record damage (a tampered
certificate-table entry, a mangled session object) is dead-lettered
into the loaded dataset's quarantine instead of aborting the load.
"""

from __future__ import annotations

import json
import pathlib

from repro.faults.ingest import CertificateUpload, ingest_certificate
from repro.faults.quarantine import (
    ErrorCategory,
    IngestHealth,
    QuarantineRecord,
)
from repro.netalyzr.dataset import NetalyzrDataset
from repro.netalyzr.session import DeviceTuple, DomainProbe, MeasurementSession
from repro.x509.certificate import Certificate
from repro.x509.chain import ValidationFailure, ValidationResult
from repro.x509.fingerprint import fingerprint
from repro.x509.pem import pem_encode

#: Schema version of the export format. Version 2 added quarantine
#: metadata, ingest-health counters and the per-session degraded flag.
SCHEMA_VERSION = 2

#: Schema versions this codec can read.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


class DatasetError(ValueError):
    """Base class for dataset-file load failures."""


class SchemaVersionError(DatasetError):
    """The document declares a schema version this codec cannot read."""


class DatasetFormatError(DatasetError):
    """The document is not valid JSON or violates the schema."""


def dataset_to_json(dataset: NetalyzrDataset) -> str:
    """Serialize a dataset to JSON."""
    cert_table: dict[str, str] = {}

    def ref(certificate: Certificate) -> str:
        digest = fingerprint(certificate)
        if digest not in cert_table:
            cert_table[digest] = pem_encode(certificate.encoded)
        return digest

    sessions = []
    for session in dataset.sessions:
        probes = [
            {
                "hostport": probe.hostport,
                "chain": [ref(c) for c in probe.chain],
                "trusted": probe.validation.trusted,
                "failure": probe.validation.failure.value
                if probe.validation.failure
                else None,
                "pin_ok": probe.pin_ok,
            }
            for probe in session.probes
        ]
        sessions.append(
            {
                "id": session.session_id,
                "tuple": [
                    session.device_tuple.network,
                    session.device_tuple.public_ip,
                    session.device_tuple.model,
                    session.device_tuple.os_version,
                ],
                "manufacturer": session.manufacturer,
                "model": session.model,
                "os_version": session.os_version,
                "operator": session.operator,
                "country": session.country,
                "rooted": session.rooted,
                "attached_operator": session.attached_operator,
                "attached_country": session.attached_country,
                "degraded": session.degraded,
                "roots": [ref(c) for c in session.root_certificates],
                "probes": probes,
                "apps": list(session.app_names),
            }
        )
    return json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "certificates": cert_table,
            "sessions": sessions,
            "quarantine": [record.to_dict() for record in dataset.quarantine],
            "health": dataset.health.to_dict(),
        }
    )


def _parse_session(
    item: dict, certificates: dict[str, Certificate]
) -> MeasurementSession:
    probes = tuple(
        DomainProbe(
            hostport=probe["hostport"],
            chain=tuple(certificates[d] for d in probe["chain"]),
            validation=ValidationResult(
                trusted=probe["trusted"],
                failure=ValidationFailure(probe["failure"])
                if probe["failure"]
                else None,
            ),
            pin_ok=probe["pin_ok"],
        )
        for probe in item["probes"]
    )
    return MeasurementSession(
        session_id=item["id"],
        device_tuple=DeviceTuple(*item["tuple"]),
        manufacturer=item["manufacturer"],
        model=item["model"],
        os_version=item["os_version"],
        operator=item["operator"],
        country=item["country"],
        rooted=item["rooted"],
        root_certificates=tuple(certificates[d] for d in item["roots"]),
        probes=probes,
        app_names=tuple(item["apps"]),
        attached_operator=item.get("attached_operator", ""),
        attached_country=item.get("attached_country", ""),
        degraded=bool(item.get("degraded", False)),
    )


def dataset_from_json(text: str, *, resilient: bool = False) -> NetalyzrDataset:
    """Parse a serialized dataset, verifying certificate fingerprints.

    Envelope damage (invalid JSON, unknown schema version, a document
    that is not a dataset at all) always raises a :class:`DatasetError`.
    Record damage raises too by default; with ``resilient=True`` it is
    quarantined instead — a tampered certificate-table entry drops the
    certificate (sessions referencing it are kept, degraded), a mangled
    session object is dead-lettered whole, and the load returns every
    record that survived.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DatasetFormatError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise DatasetFormatError(
            f"expected a dataset object, found {type(payload).__name__}"
        )
    version = payload.get("schema")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
        raise SchemaVersionError(
            f"unsupported dataset schema version {version!r}"
            f" (this codec reads versions {supported})"
        )

    dataset = NetalyzrDataset()
    try:
        cert_items = list(payload["certificates"].items())
        session_items = list(payload["sessions"])
    except (KeyError, AttributeError, TypeError) as exc:
        raise DatasetFormatError(f"malformed dataset document: {exc}") from exc

    certificates: dict[str, Certificate] = {}
    for digest, pem in cert_items:
        if resilient:
            certificate = ingest_certificate(
                CertificateUpload(payload=pem, claimed_fingerprint=digest),
                dataset.quarantine,
                f"certificate-table:{digest[:16]}",
            )
            if certificate is not None:
                certificates[digest] = certificate
            continue
        try:
            certificate = Certificate.from_der(_pem_to_der(pem))
        except ValueError as exc:
            raise DatasetFormatError(
                f"certificate table entry {digest[:16]}… is invalid: {exc}"
            ) from exc
        if fingerprint(certificate) != digest:
            raise DatasetFormatError(
                f"certificate table fingerprint mismatch: {digest}"
            )
        certificates[digest] = certificate

    for item in session_items:
        if not resilient:
            try:
                dataset.add(_parse_session(item, certificates))
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                raise DatasetFormatError(
                    f"malformed session record: {exc!r}"
                ) from exc
            continue
        session_id = item.get("id", "?") if isinstance(item, dict) else "?"
        try:
            session = _parse_session(_strip_missing_refs(item, certificates),
                                     certificates)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            dataset.quarantine.add(
                ErrorCategory.MALFORMED_RECORD,
                f"session:{session_id}",
                repr(exc),
                payload=repr(item),
            )
            continue
        dataset.add(session)

    # Restore the original run's counters and quarantine on top of
    # whatever this load itself dead-lettered.
    for record in payload.get("quarantine", ()):
        try:
            dataset.quarantine.records.append(QuarantineRecord.from_dict(record))
        except (KeyError, TypeError, ValueError) as exc:
            if not resilient:
                raise DatasetFormatError(
                    f"malformed quarantine record: {exc!r}"
                ) from exc
    if "health" in payload and isinstance(payload["health"], dict):
        restored = IngestHealth.from_dict(payload["health"])
        if resilient:
            # keep this load's own dead-letter counts visible
            restored.quarantined_certificates += (
                dataset.health.quarantined_certificates
            )
            restored.degraded_sessions = max(
                restored.degraded_sessions, dataset.health.degraded_sessions
            )
        dataset.health = restored
    return dataset


def _pem_to_der(pem: object) -> bytes:
    from repro.x509.pem import pem_decode

    if not isinstance(pem, str):
        raise DatasetFormatError(
            f"certificate table value must be PEM text, found {type(pem).__name__}"
        )
    return pem_decode(pem)


def _strip_missing_refs(item: dict, certificates: dict[str, Certificate]) -> dict:
    """Drop references to quarantined table entries, degrading the session.

    Both the uploaded root store and the probe chains can reference a
    dead-lettered certificate; the session keeps its good roots and
    good probes rather than being dropped whole.
    """
    if not isinstance(item, dict):
        return item
    roots = item.get("roots")
    if isinstance(roots, list) and any(d not in certificates for d in roots):
        item = dict(item)
        item["roots"] = [d for d in roots if d in certificates]
        item["degraded"] = True
    probes = item.get("probes")
    if isinstance(probes, list):
        kept = [
            probe
            for probe in probes
            if not (
                isinstance(probe, dict)
                and isinstance(probe.get("chain"), list)
                and any(d not in certificates for d in probe["chain"])
            )
        ]
        if len(kept) != len(probes):
            item = dict(item)
            item["probes"] = kept
            item["degraded"] = True
    return item


def save_dataset(dataset: NetalyzrDataset, path: str | pathlib.Path) -> pathlib.Path:
    """Write a dataset to a JSON file."""
    path = pathlib.Path(path)
    path.write_text(dataset_to_json(dataset))
    return path


def load_dataset(
    path: str | pathlib.Path, *, resilient: bool = False
) -> NetalyzrDataset:
    """Read a dataset from a JSON file."""
    return dataset_from_json(
        pathlib.Path(path).read_text(), resilient=resilient
    )
