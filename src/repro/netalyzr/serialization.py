"""Netalyzr dataset import/export (JSON).

A collected dataset serializes to a single JSON document with a
deduplicated certificate table — the ~16k sessions reference ~314
distinct certificates, so the encoded corpus stays small. Round-trips
preserve everything the analysis pipeline consumes.
"""

from __future__ import annotations

import json
import pathlib

from repro.netalyzr.dataset import NetalyzrDataset
from repro.netalyzr.session import DeviceTuple, DomainProbe, MeasurementSession
from repro.x509.certificate import Certificate
from repro.x509.chain import ValidationFailure, ValidationResult
from repro.x509.fingerprint import fingerprint
from repro.x509.pem import pem_decode, pem_encode

#: Schema version of the export format.
SCHEMA_VERSION = 1


def dataset_to_json(dataset: NetalyzrDataset) -> str:
    """Serialize a dataset to JSON."""
    cert_table: dict[str, str] = {}

    def ref(certificate: Certificate) -> str:
        digest = fingerprint(certificate)
        if digest not in cert_table:
            cert_table[digest] = pem_encode(certificate.encoded)
        return digest

    sessions = []
    for session in dataset.sessions:
        probes = [
            {
                "hostport": probe.hostport,
                "chain": [ref(c) for c in probe.chain],
                "trusted": probe.validation.trusted,
                "failure": probe.validation.failure.value
                if probe.validation.failure
                else None,
                "pin_ok": probe.pin_ok,
            }
            for probe in session.probes
        ]
        sessions.append(
            {
                "id": session.session_id,
                "tuple": [
                    session.device_tuple.network,
                    session.device_tuple.public_ip,
                    session.device_tuple.model,
                    session.device_tuple.os_version,
                ],
                "manufacturer": session.manufacturer,
                "model": session.model,
                "os_version": session.os_version,
                "operator": session.operator,
                "country": session.country,
                "rooted": session.rooted,
                "attached_operator": session.attached_operator,
                "attached_country": session.attached_country,
                "roots": [ref(c) for c in session.root_certificates],
                "probes": probes,
                "apps": list(session.app_names),
            }
        )
    return json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "certificates": cert_table,
            "sessions": sessions,
        }
    )


def dataset_from_json(text: str) -> NetalyzrDataset:
    """Parse a serialized dataset, verifying certificate fingerprints."""
    payload = json.loads(text)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported dataset schema {payload.get('schema')!r}")
    certificates: dict[str, Certificate] = {}
    for digest, pem in payload["certificates"].items():
        certificate = Certificate.from_der(pem_decode(pem))
        if fingerprint(certificate) != digest:
            raise ValueError(f"certificate table fingerprint mismatch: {digest}")
        certificates[digest] = certificate

    dataset = NetalyzrDataset()
    for item in payload["sessions"]:
        probes = tuple(
            DomainProbe(
                hostport=probe["hostport"],
                chain=tuple(certificates[d] for d in probe["chain"]),
                validation=ValidationResult(
                    trusted=probe["trusted"],
                    failure=ValidationFailure(probe["failure"])
                    if probe["failure"]
                    else None,
                ),
                pin_ok=probe["pin_ok"],
            )
            for probe in item["probes"]
        )
        dataset.add(
            MeasurementSession(
                session_id=item["id"],
                device_tuple=DeviceTuple(*item["tuple"]),
                manufacturer=item["manufacturer"],
                model=item["model"],
                os_version=item["os_version"],
                operator=item["operator"],
                country=item["country"],
                rooted=item["rooted"],
                root_certificates=tuple(certificates[d] for d in item["roots"]),
                probes=probes,
                app_names=tuple(item["apps"]),
                attached_operator=item.get("attached_operator", ""),
                attached_country=item.get("attached_country", ""),
            )
        )
    return dataset


def save_dataset(dataset: NetalyzrDataset, path: str | pathlib.Path) -> pathlib.Path:
    """Write a dataset to a JSON file."""
    path = pathlib.Path(path)
    path.write_text(dataset_to_json(dataset))
    return path


def load_dataset(path: str | pathlib.Path) -> NetalyzrDataset:
    """Read a dataset from a JSON file."""
    return dataset_from_json(pathlib.Path(path).read_text())
