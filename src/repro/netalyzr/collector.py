"""Running the Netalyzr client over a device population."""

from __future__ import annotations

from repro import obs
from repro.android.device import AndroidDevice
from repro.android.population import Population
from repro.faults.injector import FaultInjector
from repro.faults.quarantine import ErrorCategory, IngestHealth, Quarantine
from repro.faults.retry import RetryExhausted, RetryPolicy, retry_call
from repro.netalyzr.dataset import NetalyzrDataset, SessionUpload
from repro.netalyzr.session import DeviceTuple, DomainProbe, MeasurementSession
from repro.parallel.executor import ParallelExecutor
from repro.rootstore.catalog import CaCatalog, default_catalog
from repro.rootstore.factory import CertificateFactory
from repro.storage.backend import StorageBackend
from repro.tlssim.endpoints import PROBE_TARGETS, Endpoint
from repro.tlssim.handshake import TlsClient, TlsServer, TransientProbeError
from repro.tlssim.pinning import PinStore
from repro.tlssim.traffic import TlsTrafficGenerator

#: Default retry budget for flaky domain probes.
DEFAULT_RETRY_POLICY = RetryPolicy(attempts=3, base_delay=0.05, multiplier=2.0)


class NetalyzrClient:
    """The measurement client; one instance serves a whole collection run.

    Probe-target server identities and the pin store are built once and
    reused across sessions — the real servers don't change between
    sessions either.
    """

    def __init__(
        self,
        factory: CertificateFactory | None = None,
        catalog: CaCatalog | None = None,
        *,
        probe_domains: bool = True,
    ):
        self.factory = factory or CertificateFactory()
        self.catalog = catalog or default_catalog()
        self.probe_domains = probe_domains
        self._traffic = TlsTrafficGenerator(self.factory, self.catalog)
        self._servers: dict[str, TlsServer] = {}
        self._pins: PinStore | None = None

    def _server_for(self, endpoint: Endpoint) -> TlsServer:
        if endpoint.hostport not in self._servers:
            identity = self._traffic.server_identity(endpoint.host, endpoint.issuer_ca)
            self._servers[endpoint.hostport] = TlsServer(
                endpoint.host, endpoint.port, identity
            )
        return self._servers[endpoint.hostport]

    def _pin_store(self) -> PinStore:
        if self._pins is None:
            pins = PinStore()
            for endpoint in PROBE_TARGETS:
                if endpoint.pinned:
                    identity = self._server_for(endpoint).identity
                    pins.pin(endpoint.host, identity.chain[-1])
            self._pins = pins
        return self._pins

    def run_session(
        self,
        device: AndroidDevice,
        session_id: int,
        *,
        injector: FaultInjector | None = None,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        quarantine: Quarantine | None = None,
        health: IngestHealth | None = None,
    ) -> MeasurementSession:
        """Execute the client once on a device.

        When a fault injector is active, each probe may suffer transient
        handshake failures: the client retries with the policy's
        deterministic backoff, and a probe that exhausts its retry
        budget is dropped — quarantined, with the rest of the session
        kept intact.
        """
        probes: list[DomainProbe] = []
        if self.probe_domains:
            client = TlsClient(
                device.store,
                pins=self._pin_store(),
                proxy=device.proxy,
                # getattr: devices unpickled from a pre-profile build
                # cache lack the attribute.
                trust_profile=getattr(device, "trust_profile", None),
            )
            for endpoint in PROBE_TARGETS:
                server = self._server_for(endpoint)
                planned_failures = (
                    injector.transient_failures(
                        session_id, endpoint.hostport,
                        attempts=retry_policy.attempts,
                    )
                    if injector is not None
                    else 0
                )
                try:
                    outcome = retry_call(
                        lambda attempt: client.connect(
                            server,
                            attempt=attempt,
                            fail_transiently=attempt < planned_failures,
                        ),
                        retry_policy,
                        retryable=(TransientProbeError,),
                    )
                except RetryExhausted as exc:
                    if health is not None:
                        health.retried_probes += retry_policy.attempts - 1
                        health.dropped_probes += 1
                    if quarantine is not None:
                        quarantine.add(
                            ErrorCategory.PROBE_FAILURE,
                            f"session:{session_id}/probe:{endpoint.hostport}",
                            str(exc),
                        )
                    continue
                if health is not None and outcome.recovered:
                    health.retried_probes += outcome.attempts_used - 1
                    health.recovered_probes += 1
                result = outcome.result
                probes.append(
                    DomainProbe(
                        hostport=endpoint.hostport,
                        chain=result.presented_chain,
                        validation=result.validation,
                        pin_ok=result.pin_ok,
                    )
                )
        return MeasurementSession(
            session_id=session_id,
            device_tuple=DeviceTuple.of(device),
            manufacturer=device.spec.manufacturer,
            model=device.spec.model,
            os_version=device.spec.os_version,
            operator=device.spec.operator,
            country=device.spec.country,
            rooted=device.rooted,
            attached_operator=device.attached_operator,
            attached_country=device.attached_country,
            root_certificates=tuple(device.store.certificates()),
            probes=tuple(probes),
            app_names=tuple(device.app_names),
        )


def ingest_sessions(
    population: Population,
    client: NetalyzrClient,
    dataset: NetalyzrDataset,
    *,
    probe_stock_devices: bool = False,
    injector: FaultInjector | None = None,
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
):
    """Run and ingest the population's planned sessions one at a time.

    The generator behind both collection modes: each step executes one
    client session and lands its upload in *dataset* (through the
    resilient ingest path when an ``injector`` is active), then yields
    the session id. :func:`collect_dataset` drains it in one go; the
    stream engine (:mod:`repro.stream`) pulls it incrementally, so
    sessions arrive continuously instead of as one batch. Consuming the
    whole generator leaves ``dataset`` byte-for-byte identical to a
    batch collection.

    ``client.probe_domains`` is treated as the run-wide probing switch;
    it is toggled per session (the probe-dedup logic below) and
    restored when the generator finishes or is closed.
    """
    probe_domains = client.probe_domains
    session_id = 0
    probed_firmwares: set[tuple[str, str, str, int]] = set()
    try:
        for record in population.records:
            device = record.device
            for _ in range(record.session_count):
                session_id += 1
                must_probe = probe_domains and (
                    probe_stock_devices
                    or device.proxy is not None
                    or bool(device.apps)
                )
                if probe_domains and not must_probe:
                    firmware_key = (
                        device.spec.manufacturer,
                        device.spec.os_version,
                        device.spec.operator,
                        len(device.store),
                    )
                    if firmware_key not in probed_firmwares:
                        probed_firmwares.add(firmware_key)
                        must_probe = True
                client.probe_domains = must_probe
                session = client.run_session(
                    device,
                    session_id,
                    injector=injector,
                    retry_policy=retry_policy,
                    quarantine=dataset.quarantine,
                    health=dataset.health,
                )
                if injector is None:
                    dataset.add(session)
                else:
                    upload = SessionUpload.of(session)
                    upload = SessionUpload(
                        session=upload.session,
                        roots=tuple(
                            injector.corrupt_roots(
                                session_id, list(upload.roots)
                            )
                        ),
                    )
                    dataset.ingest(upload)
                    if injector.should_duplicate(session_id):
                        dataset.ingest(upload)
                yield session_id
    finally:
        client.probe_domains = probe_domains


def collect_dataset(
    population: Population,
    factory: CertificateFactory | None = None,
    catalog: CaCatalog | None = None,
    *,
    probe_domains: bool = True,
    probe_stock_devices: bool = False,
    injector: FaultInjector | None = None,
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    executor: ParallelExecutor | None = None,
    backend: StorageBackend | None = None,
) -> NetalyzrDataset:
    """Run the client over every planned session of a population.

    Domain probing dominates collection cost; since a stock device's
    probes are identical to every other stock device's on the same OS
    version, ``probe_stock_devices=False`` (the default) probes only
    devices whose state could change the outcome (proxied devices and
    devices with installed apps) plus one representative per firmware.
    Set it to True for full-fidelity collection.

    With a fault ``injector``, collection exercises the resilient
    ingest path: session uploads may arrive corrupted or duplicated and
    probes may fail transiently; everything invalid lands in
    ``dataset.quarantine`` and collection itself never raises.
    """
    client = NetalyzrClient(factory, catalog, probe_domains=probe_domains)
    with obs.span(
        "netalyzr.collect",
        workers=0 if executor is None else executor.workers,
        faults=injector is not None,
    ) as span:
        if executor is not None and executor.parallel and probe_domains:
            # Pre-generate the probe-target server keys (and any missing CA
            # keys) in parallel; identical keys, just sooner.
            client.factory.warm(
                (endpoint.issuer_ca for endpoint in PROBE_TARGETS), executor
            )
            client._traffic.warm_server_keys(
                [endpoint.host for endpoint in PROBE_TARGETS], executor
            )
        dataset = NetalyzrDataset(backend=backend)
        for _ in ingest_sessions(
            population,
            client,
            dataset,
            probe_stock_devices=probe_stock_devices,
            injector=injector,
            retry_policy=retry_policy,
        ):
            pass
        span.set("sessions", dataset.session_count)
        span.set("quarantined", len(dataset.quarantine))
        span.set("dropped_probes", dataset.health.dropped_probes)
    return dataset
